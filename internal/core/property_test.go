package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"rdfcube/internal/gen"
	"rdfcube/internal/hierarchy"
	"rdfcube/internal/qb"
	"rdfcube/internal/rdf"
)

// randomCorpus builds a small random corpus: a random tree per dimension,
// a few datasets with random dimension subsets and one of two measures,
// and observations with random values.
func randomCorpus(seed int64) *qb.Corpus {
	r := rand.New(rand.NewSource(seed))
	nDims := 2 + r.Intn(3)
	reg := hierarchy.NewRegistry()
	var dims []rdf.Term
	for d := 0; d < nDims; d++ {
		dim := rdf.NewIRI(fmt.Sprintf("http://r/dim/%d", d))
		dims = append(dims, dim)
		root := rdf.NewIRI(fmt.Sprintf("http://r/code/%d/root", d))
		cl := hierarchy.New(dim, root)
		nodes := []rdf.Term{root}
		for c := 0; c < 3+r.Intn(10); c++ {
			code := rdf.NewIRI(fmt.Sprintf("http://r/code/%d/c%d", d, c))
			cl.Add(code, nodes[r.Intn(len(nodes))])
			nodes = append(nodes, code)
		}
		reg.Register(cl.MustSeal())
	}
	measures := []rdf.Term{rdf.NewIRI("http://r/m/a"), rdf.NewIRI("http://r/m/b")}

	corpus := qb.NewCorpus(reg)
	nDatasets := 1 + r.Intn(3)
	for ds := 0; ds < nDatasets; ds++ {
		// Random non-empty dimension subset.
		var schemaDims []rdf.Term
		for _, d := range dims {
			if r.Intn(3) > 0 {
				schemaDims = append(schemaDims, d)
			}
		}
		if len(schemaDims) == 0 {
			schemaDims = dims[:1]
		}
		m := measures[r.Intn(2)]
		dataset := &qb.Dataset{
			URI:    rdf.NewIRI(fmt.Sprintf("http://r/ds/%d", ds)),
			Schema: qb.NewSchema(schemaDims, []rdf.Term{m}),
		}
		n := 5 + r.Intn(25)
		for i := 0; i < n; i++ {
			vals := make([]rdf.Term, len(dataset.Schema.Dimensions))
			for vi, dim := range dataset.Schema.Dimensions {
				codes := reg.Get(dim).Codes()
				vals[vi] = codes[r.Intn(len(codes))]
			}
			uri := rdf.NewIRI(fmt.Sprintf("http://r/obs/%d/%d", ds, i))
			if _, err := dataset.AddObservation(uri, vals, []rdf.Term{rdf.NewInteger(int64(i))}); err != nil {
				panic(err)
			}
		}
		corpus.AddDataset(dataset)
	}
	return corpus
}

// TestQuickAlgorithmsAgree is the central equivalence property: on random
// corpora, every exact algorithm produces identical sorted relationship
// sets.
func TestQuickAlgorithmsAgree(t *testing.T) {
	f := func(seed int64) bool {
		c := randomCorpus(seed)
		s, err := NewSpace(c)
		if err != nil {
			return false
		}
		truth := NewResult()
		Baseline(s, TaskAll, truth)
		truth.Sort()
		for _, alg := range []Algorithm{AlgorithmCubeMasking, AlgorithmCubeMaskingPrefetch, AlgorithmParallel} {
			res := NewResult()
			if err := Compute(s, alg, Options{}, res); err != nil {
				return false
			}
			res.Sort()
			if !samePairs(truth.FullSet, res.FullSet) ||
				!samePairs(truth.PartialSet, res.PartialSet) ||
				!samePairs(truth.ComplSet, res.ComplSet) {
				return false
			}
			for p, d := range truth.PartialDegree {
				if res.PartialDegree[p] != d {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func samePairs(a, b []Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestParityRandomSpacesAcrossWorkers is the differential oracle over
// random corpora: for every seed × worker count, the parallel baseline and
// parallel cubeMasking must reproduce the serial baseline's relationship
// sets exactly, and clustering (serial or parallel — itself pairwise
// identical) must emit a subset of the baseline's sets with its recall
// measured and reported. Run it under -race to also exercise the tape pool
// and counter flushes: go test -race ./internal/core -run Parity
func TestParityRandomSpacesAcrossWorkers(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		c := randomCorpus(seed)
		s, err := NewSpace(c)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		truth := NewResult()
		Baseline(s, TaskAll, truth)
		truth.Sort()
		tf, tp, tc := pairSet(truth.FullSet), pairSet(truth.PartialSet), pairSet(truth.ComplSet)

		for _, workers := range []int{1, 2, 8} {
			// Exact algorithms: identical sorted sets and degrees.
			for name, run := range map[string]func(Sink){
				"parallel-baseline":    func(sink Sink) { ParallelBaseline(s, TaskAll, sink, workers) },
				"parallel-cubemasking": func(sink Sink) { ParallelCubeMasking(s, TaskAll, sink, workers) },
			} {
				res := NewResult()
				run(res)
				res.Sort()
				if !samePairs(truth.FullSet, res.FullSet) ||
					!samePairs(truth.PartialSet, res.PartialSet) ||
					!samePairs(truth.ComplSet, res.ComplSet) {
					t.Errorf("seed %d workers %d: %s diverged from baseline", seed, workers, name)
				}
				for p, d := range truth.PartialDegree {
					if res.PartialDegree[p] != d {
						t.Errorf("seed %d workers %d: %s degree(%v) = %v, want %v",
							seed, workers, name, p, res.PartialDegree[p], d)
					}
				}
			}

			// Clustering: lossy, so assert subset + measure recall. The
			// pinned seed keeps the assignment (and hence the recall)
			// deterministic across worker counts.
			opts := ClusteringOptions{}
			opts.Config.Seed = 11
			cres := NewResult()
			if workers > 1 {
				_, err = ParallelClustering(s, TaskAll, cres, opts, workers)
			} else {
				_, err = Clustering(s, TaskAll, cres, opts)
			}
			if err != nil {
				t.Fatalf("seed %d workers %d: clustering: %v", seed, workers, err)
			}
			cres.Sort()
			for _, p := range cres.FullSet {
				if !tf[p] {
					t.Errorf("seed %d workers %d: clustering invented full pair %v", seed, workers, p)
				}
			}
			for _, p := range cres.PartialSet {
				if !tp[p] {
					t.Errorf("seed %d workers %d: clustering invented partial pair %v", seed, workers, p)
				}
			}
			for _, p := range cres.ComplSet {
				if !tc[p] {
					t.Errorf("seed %d workers %d: clustering invented compl pair %v", seed, workers, p)
				}
			}
			_, _, _, overall := Recall(truth, cres)
			if overall < 0 || overall > 1 {
				t.Errorf("seed %d workers %d: recall %v out of range", seed, workers, overall)
			}
			if workers == 1 {
				t.Logf("seed %d: clustering recall %.3f (n=%d)", seed, overall, s.N())
			}
		}
	}
}

// TestQuickEmissionsMatchDefinitions checks every emitted pair against the
// definitional checkers, and that no definitional pair is missed — i.e.
// the baseline is sound and complete w.r.t. the canonical semantics.
func TestQuickEmissionsMatchDefinitions(t *testing.T) {
	f := func(seed int64) bool {
		c := randomCorpus(seed)
		s, err := NewSpace(c)
		if err != nil {
			return false
		}
		res := NewResult()
		Baseline(s, TaskAll, res)
		full := pairSet(res.FullSet)
		partial := pairSet(res.PartialSet)
		compl := pairSet(res.ComplSet)
		for i := 0; i < s.N(); i++ {
			for j := 0; j < s.N(); j++ {
				if i == j {
					continue
				}
				if full[Pair{i, j}] != s.FullContains(i, j) {
					return false
				}
				if partial[Pair{i, j}] != s.PartialContains(i, j) {
					return false
				}
				a, b := i, j
				if a > b {
					a, b = b, a
				}
				if i < j && compl[Pair{a, b}] != s.Complementary(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestQuickBitvecMatchesDirect cross-checks the occurrence-matrix sf test
// against direct parent-chain ancestry on random corpora.
func TestQuickBitvecMatchesDirect(t *testing.T) {
	f := func(seed int64) bool {
		c := randomCorpus(seed)
		s, err := NewSpace(c)
		if err != nil {
			return false
		}
		om := BuildOccurrenceMatrix(s)
		r := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 50; trial++ {
			i, j := r.Intn(s.N()), r.Intn(s.N())
			d := r.Intn(s.NumDims())
			if om.ContainsDim(i, j, d) != s.DimContains(i, j, d) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestQuickContainmentDegreeSymmetry: deg(i,j) == |P| and deg(j,i) == |P|
// together imply identical value vectors (the complementarity criterion).
func TestQuickMutualFullImpliesEqual(t *testing.T) {
	f := func(seed int64) bool {
		c := randomCorpus(seed)
		s, err := NewSpace(c)
		if err != nil {
			return false
		}
		p := s.NumDims()
		for i := 0; i < s.N(); i++ {
			for j := i + 1; j < s.N(); j++ {
				mutual := s.ContainDegree(i, j) == p && s.ContainDegree(j, i) == p
				if mutual != s.Complementary(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestIncrementalMatchesBatch inserts observations one by one and compares
// the maintained sets against a batch recomputation.
func TestIncrementalMatchesBatch(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		c := randomCorpus(seed)
		all := c.Observations()
		if len(all) < 4 {
			continue
		}
		split := len(all) / 2

		// Base corpus: first half of each dataset (rebuild by index).
		baseCorpus := qb.NewCorpus(c.Hierarchies)
		idx := 0
		var tail []*qb.Observation
		for _, ds := range c.Datasets {
			nds := &qb.Dataset{URI: ds.URI, Schema: ds.Schema}
			for _, o := range ds.Observations {
				if idx < split {
					no := *o
					no.Dataset = nds
					nds.Observations = append(nds.Observations, &no)
				} else {
					no := *o
					no.Dataset = nds
					tail = append(tail, &no)
				}
				idx++
			}
			baseCorpus.AddDataset(nds)
		}

		s, err := NewSpace(baseCorpus)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		inc := NewIncremental(s, TaskAll)
		for _, o := range tail {
			if _, err := inc.Insert(o); err != nil {
				t.Fatalf("seed %d: insert: %v", seed, err)
			}
		}
		inc.Res.Sort()

		// Batch over the same final space (the incremental space already
		// contains everything, in its insertion order).
		batch := NewResult()
		Baseline(inc.S, TaskAll, batch)
		batch.Sort()

		if !samePairs(batch.FullSet, inc.Res.FullSet) {
			t.Errorf("seed %d: S_F differs: batch %d vs incremental %d",
				seed, len(batch.FullSet), len(inc.Res.FullSet))
		}
		if !samePairs(batch.PartialSet, inc.Res.PartialSet) {
			t.Errorf("seed %d: S_P differs: batch %d vs incremental %d",
				seed, len(batch.PartialSet), len(inc.Res.PartialSet))
		}
		if !samePairs(batch.ComplSet, inc.Res.ComplSet) {
			t.Errorf("seed %d: S_C differs: batch %d vs incremental %d",
				seed, len(batch.ComplSet), len(inc.Res.ComplSet))
		}
	}
}

// TestSkylineInvariant: no skyline point is fully contained by any other
// observation, and every non-skyline point is.
func TestSkylineInvariant(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		c := randomCorpus(seed)
		s, err := NewSpace(c)
		if err != nil {
			t.Fatal(err)
		}
		sky := Skyline(s)
		inSky := map[int]bool{}
		for _, i := range sky {
			inSky[i] = true
		}
		for j := 0; j < s.N(); j++ {
			contained := false
			for i := 0; i < s.N() && !contained; i++ {
				if i != j && s.FullContains(i, j) {
					contained = true
				}
			}
			if contained == inSky[j] {
				t.Errorf("seed %d: obs %d: contained=%v but skyline=%v", seed, j, contained, inSky[j])
			}
		}
	}
}

// TestKDominanceMonotone: the k-dominant skyline shrinks (or stays equal)
// as k decreases, per Chan et al.'s containment lattice.
func TestKDominanceMonotone(t *testing.T) {
	c := gen.RealWorld(gen.RealWorldConfig{TotalObs: 200, Seed: 5})
	s, err := NewSpace(c)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1
	for k := s.NumDims(); k >= 1; k-- {
		n := len(KDominantSkyline(s, k))
		if prev >= 0 && n > prev {
			t.Errorf("k=%d: skyline grew from %d to %d", k, prev, n)
		}
		prev = n
	}
}

// TestHybridSubsetOfExact: the hybrid algorithm is exact outside oversized
// cubes, so its output is always a subset of cubeMasking's.
func TestHybridSubsetOfExact(t *testing.T) {
	c := gen.RealWorld(gen.RealWorldConfig{TotalObs: 500, Seed: 13})
	s, err := NewSpace(c)
	if err != nil {
		t.Fatal(err)
	}
	truth := NewResult()
	CubeMasking(s, TaskAll, truth, CubeMaskOptions{})

	res := NewResult()
	opts := Options{Hybrid: HybridOptions{MaxCubeSize: 8}}
	opts.Hybrid.Clustering.Config.Seed = 1
	if err := Compute(s, AlgorithmHybrid, opts, res); err != nil {
		t.Fatal(err)
	}
	tf, tp, tc := pairSet(truth.FullSet), pairSet(truth.PartialSet), pairSet(truth.ComplSet)
	for _, p := range res.FullSet {
		if !tf[p] {
			t.Errorf("hybrid invented full pair %v", p)
		}
	}
	for _, p := range res.PartialSet {
		if !tp[p] {
			t.Errorf("hybrid invented partial pair %v", p)
		}
	}
	for _, p := range res.ComplSet {
		if !tc[p] {
			t.Errorf("hybrid invented compl pair %v", p)
		}
	}
}

// TestAppendObservationErrors exercises the incremental error paths.
func TestAppendObservationErrors(t *testing.T) {
	c := gen.PaperExample()
	s, err := NewSpace(c)
	if err != nil {
		t.Fatal(err)
	}
	ds := c.Datasets[0]
	// Foreign code.
	bad := &qb.Observation{
		URI:     rdf.NewIRI("http://x/bad"),
		Dataset: ds,
		DimValues: []rdf.Term{
			rdf.NewIRI("http://x/not-a-code"), gen.Time2001, gen.SexTotal,
		},
		MeasureValues: []rdf.Term{rdf.NewInteger(1)},
	}
	if _, err := s.AppendObservation(bad); err == nil {
		t.Errorf("foreign code must fail")
	}
	// Foreign measure.
	foreignDS := &qb.Dataset{
		URI:    rdf.NewIRI("http://x/ds"),
		Schema: qb.NewSchema(ds.Schema.Dimensions, []rdf.Term{rdf.NewIRI("http://x/m")}),
	}
	bad2 := &qb.Observation{
		URI:           rdf.NewIRI("http://x/bad2"),
		Dataset:       foreignDS,
		DimValues:     []rdf.Term{gen.GeoAthens, gen.Time2001, gen.SexTotal},
		MeasureValues: []rdf.Term{rdf.NewInteger(1)},
	}
	if _, err := s.AppendObservation(bad2); err == nil {
		t.Errorf("foreign measure must fail")
	}
}

// TestMeasureLimit checks the 64-measure cap of the packed measure masks.
func TestMeasureLimit(t *testing.T) {
	reg := hierarchy.NewRegistry()
	dim := rdf.NewIRI("http://x/dim")
	cl := hierarchy.New(dim, rdf.NewIRI("http://x/root"))
	reg.Register(cl.MustSeal())
	measures := make([]rdf.Term, MaxMeasures+1)
	for i := range measures {
		measures[i] = rdf.NewIRI(fmt.Sprintf("http://x/m/%d", i))
	}
	c := qb.NewCorpus(reg)
	c.AddDataset(&qb.Dataset{
		URI:    rdf.NewIRI("http://x/ds"),
		Schema: qb.NewSchema([]rdf.Term{dim}, measures),
	})
	if _, err := NewSpace(c); err == nil {
		t.Errorf("more than %d measures must fail", MaxMeasures)
	}
}

// TestQuickPrefetchPathEquivalence exercises the prefetched sweep (which
// only engages without the partial task) against the baseline on random
// corpora for full containment and complementarity.
func TestQuickPrefetchPathEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		c := randomCorpus(seed)
		s, err := NewSpace(c)
		if err != nil {
			return false
		}
		tasks := TaskFull | TaskCompl
		truth := NewResult()
		Baseline(s, tasks, truth)
		truth.Sort()
		res := NewResult()
		CubeMasking(s, tasks, res, CubeMaskOptions{PrefetchChildren: true})
		res.Sort()
		return samePairs(truth.FullSet, res.FullSet) && samePairs(truth.ComplSet, res.ComplSet)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickHybridIdenticalWhenCubesSmall: with MaxCubeSize larger than any
// cube, hybrid degenerates to exact cubeMasking.
func TestQuickHybridIdenticalWhenCubesSmall(t *testing.T) {
	f := func(seed int64) bool {
		c := randomCorpus(seed)
		s, err := NewSpace(c)
		if err != nil {
			return false
		}
		truth := NewResult()
		Baseline(s, TaskAll, truth)
		truth.Sort()
		res := NewResult()
		if err := Hybrid(s, TaskAll, res, HybridOptions{MaxCubeSize: s.N() + 1}); err != nil {
			return false
		}
		res.Sort()
		return samePairs(truth.FullSet, res.FullSet) &&
			samePairs(truth.PartialSet, res.PartialSet) &&
			samePairs(truth.ComplSet, res.ComplSet)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestKDominantFromResultMatchesDirect checks the materialized k-dominant
// skyline against the direct computation for every k.
func TestKDominantFromResultMatchesDirect(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		c := randomCorpus(seed)
		s, err := NewSpace(c)
		if err != nil {
			t.Fatal(err)
		}
		res := NewResult()
		Baseline(s, TaskAll, res)
		for k := 1; k <= s.NumDims(); k++ {
			direct := KDominantSkyline(s, k)
			fromRes := KDominantSkylineFromResult(s, res, k)
			if len(direct) != len(fromRes) {
				t.Fatalf("seed %d k=%d: %d vs %d points", seed, k, len(direct), len(fromRes))
			}
			for i := range direct {
				if direct[i] != fromRes[i] {
					t.Fatalf("seed %d k=%d: point %d differs", seed, k, i)
				}
			}
		}
	}
}
