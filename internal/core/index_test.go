package core

import (
	"testing"

	"rdfcube/internal/gen"
	"rdfcube/internal/rdf"
)

func buildExampleIndex(t *testing.T) (*Index, map[string]int) {
	t.Helper()
	s, idx := exampleSpace(t)
	ix, err := BuildIndex(s, AlgorithmCubeMasking, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return ix, idx
}

func TestIndexNeighborhoods(t *testing.T) {
	ix, idx := buildExampleIndex(t)
	name := func(i int) string { return ix.Space().Obs[i].URI.Local() }

	got := map[string]bool{}
	for _, j := range ix.Contains(idx["o21"]) {
		got[name(j)] = true
	}
	if !got["o32"] || !got["o34"] || len(got) != 2 {
		t.Errorf("Contains(o21) = %v", got)
	}

	cb := ix.ContainedBy(idx["o32"])
	if len(cb) != 1 || name(cb[0]) != "o21" {
		t.Errorf("ContainedBy(o32) = %v", cb)
	}

	comp := ix.Complements(idx["o11"])
	if len(comp) != 1 || name(comp[0]) != "o31" {
		t.Errorf("Complements(o11) = %v", comp)
	}
	// Symmetric view.
	comp = ix.Complements(idx["o31"])
	if len(comp) != 1 || name(comp[0]) != "o11" {
		t.Errorf("Complements(o31) = %v", comp)
	}

	if d := ix.Degree(idx["o21"], idx["o31"]); d < 0.66 || d > 0.67 {
		t.Errorf("Degree(o21, o31) = %v", d)
	}
}

func TestIndexTopLevelMatchesSkyline(t *testing.T) {
	c := gen.RealWorld(gen.RealWorldConfig{TotalObs: 400, Seed: 21})
	s, err := NewSpace(c)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildIndex(s, AlgorithmCubeMasking, Options{Tasks: TaskFull})
	if err != nil {
		t.Fatal(err)
	}
	top := ix.TopLevel()
	sky := Skyline(s)
	if len(top) != len(sky) {
		t.Fatalf("TopLevel %d vs Skyline %d", len(top), len(sky))
	}
	for i := range top {
		if top[i] != sky[i] {
			t.Errorf("index %d: %d vs %d", i, top[i], sky[i])
		}
	}
}

func TestIndexDrillDownRollUp(t *testing.T) {
	ix, idx := buildExampleIndex(t)
	name := func(i int) string { return ix.Space().Obs[i].URI.Local() }

	// o21 directly contains o32 and o34 (no intermediate observation).
	dd := ix.DrillDown(idx["o21"])
	got := map[string]bool{}
	for _, j := range dd {
		got[name(j)] = true
	}
	if len(got) != 2 || !got["o32"] || !got["o34"] {
		t.Errorf("DrillDown(o21) = %v", got)
	}
	ru := ix.RollUp(idx["o32"])
	if len(ru) != 1 || name(ru[0]) != "o21" {
		t.Errorf("RollUp(o32) = %v", ru)
	}
}

func TestIndexTransitiveReduction(t *testing.T) {
	// Build a three-level containment chain Europe ⊃ Greece ⊃ Athens over
	// one measure: DrillDown(Europe) must return only the Greece-level
	// observation, not the transitively contained Athens one.
	c := gen.PaperExample()
	d3 := c.Datasets[2] // unemployment over (refArea, refPeriod)
	add := func(name string, area rdf.Term) int {
		vals := make([]rdf.Term, len(d3.Schema.Dimensions))
		for i, p := range d3.Schema.Dimensions {
			switch p {
			case gen.DimRefArea:
				vals[i] = area
			case gen.DimRefPeriod:
				vals[i] = gen.Time2011
			}
		}
		o, err := d3.AddObservation(rdf.NewIRI("http://x/chain/"+name), vals,
			[]rdf.Term{rdf.NewDecimal(0.1)})
		if err != nil {
			t.Fatal(err)
		}
		_ = o
		return 0
	}
	add("europe", gen.GeoEurope)
	add("greece", gen.GeoGreece)
	add("athens", gen.GeoAthens)

	s, err := NewSpace(c)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildIndex(s, AlgorithmCubeMasking, Options{Tasks: TaskFull})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]int{}
	for i, o := range s.Obs {
		byName[o.URI.Local()] = i
	}
	dd := ix.DrillDown(byName["europe"])
	names := map[string]bool{}
	for _, j := range dd {
		names[s.Obs[j].URI.Local()] = true
	}
	if names["athens"] {
		t.Errorf("DrillDown(europe) must skip transitively contained athens: %v", names)
	}
	if !names["greece"] {
		t.Errorf("DrillDown(europe) must include greece: %v", names)
	}
	ru := ix.RollUp(byName["athens"])
	ruNames := map[string]bool{}
	for _, j := range ru {
		ruNames[s.Obs[j].URI.Local()] = true
	}
	if ruNames["europe"] || !ruNames["greece"] {
		t.Errorf("RollUp(athens) = %v, want greece only among the chain", ruNames)
	}
}

func TestIndexStats(t *testing.T) {
	ix, _ := buildExampleIndex(t)
	st := ix.Stats()
	if st.Observations != 10 {
		t.Errorf("Observations = %d", st.Observations)
	}
	if st.FullPairs != 4 || st.ComplPairs != 2 {
		t.Errorf("pairs: %+v", st)
	}
	if st.PartialPairs != 43 {
		t.Errorf("partial pairs = %d, want 43", st.PartialPairs)
	}
	if st.SkylineSize == 0 || st.SkylineSize > 10 {
		t.Errorf("skyline size = %d", st.SkylineSize)
	}
}
