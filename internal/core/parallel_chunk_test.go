package core

import (
	"fmt"
	"sync"
	"testing"

	"rdfcube/internal/gen"
	"rdfcube/internal/leakcheck"
)

// countSink records every emission with a per-pair count, behind its own
// mutex so the test can peek at it from inside a running scan.
type countSink struct {
	mu sync.Mutex
	m  map[[2]int]int
}

func (s *countSink) add(a, b int) {
	s.mu.Lock()
	s.m[[2]int{a, b}]++
	s.mu.Unlock()
}

func (s *countSink) Full(a, b int)                 { s.add(a, b) }
func (s *countSink) Compl(a, b int)                { s.add(a, b) }
func (s *countSink) Partial(a, b int, deg float64) { s.add(a, b) }
func (s *countSink) shardEvents(shard, total int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for k, c := range s.m {
		if k[0]/1000 == shard {
			n += c
		}
	}
	return n
}

// TestDirectEmitChunkedRetryExactlyOnce pins the hardest direct-emit
// invariant: a shard that panics AFTER some of its chunks were already
// flushed into the shared sink must, once retried, contribute every event
// exactly once — the retry's flushTail skips precisely the bytes the first
// attempt flushed. The chunk size is shrunk so the flushes really happen
// mid-scan, and the test asserts the panicking shard had flushed chunks
// before its panic (otherwise it would not exercise the skip path at all).
func TestDirectEmitChunkedRetryExactlyOnce(t *testing.T) {
	leakcheck.Check(t)
	defer func(old int) { tapeChunkSize = old }(tapeChunkSize)
	tapeChunkSize = 64 // a handful of events per chunk

	s, err := NewSpace(gen.RealWorld(gen.RealWorldConfig{TotalObs: 80, Seed: 1}))
	if err != nil {
		t.Fatal(err)
	}

	const nShards, perShard, panicShard, panicAfter = 4, 100, 2, 60
	sink := &countSink{m: map[[2]int]int{}}
	merge := newTapeMerge(s, sink)
	var attempts [nShards]int
	var attemptsMu sync.Mutex
	flushedAtPanic := -1

	sp := shardPool{
		kind:     "chunks",
		totalCtr: "test.chunks.total",
		weight:   func(int) int64 { return 1 },
		scan: func(shard int, local Sink, _ any) error {
			attemptsMu.Lock()
			attempts[shard]++
			first := attempts[shard] == 1
			attemptsMu.Unlock()
			for i := 0; i < perShard; i++ {
				if shard == panicShard && first && i == panicAfter {
					flushedAtPanic = sink.shardEvents(panicShard, perShard)
					panic("injected mid-scan panic")
				}
				local.Full(shard*1000+i, shard)
			}
			return nil
		},
		fingerprint: func(shard int) string { return fmt.Sprintf("chunk-test-%d", shard) },
	}

	tapes, err := runShardPool(s, sp, nShards, 2, false, merge, nil, nil)
	if err != nil {
		t.Fatalf("runShardPool: %v", err)
	}
	if tapes != nil {
		t.Fatalf("direct-emit run returned %d tapes to replay, want none", len(tapes))
	}
	if attempts[panicShard] != 2 {
		t.Fatalf("panicked shard ran %d times, want 2 (scan + retry)", attempts[panicShard])
	}
	if flushedAtPanic <= 0 {
		t.Fatalf("panic landed before any chunk flush (%d events in sink): the test did not exercise the skip path", flushedAtPanic)
	}
	total := 0
	for k, c := range sink.m {
		if c != 1 {
			t.Errorf("event %v emitted %d times, want exactly once", k, c)
		}
		total += c
	}
	if want := nShards * perShard; total != want {
		t.Errorf("sink holds %d events, want %d", total, want)
	}
}
