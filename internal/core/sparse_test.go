package core

import (
	"testing"
	"testing/quick"

	"rdfcube/internal/gen"
)

// TestSparseRowMatchesPacked cross-checks the sparse rows against the
// packed bit vectors column by column.
func TestSparseRowMatchesPacked(t *testing.T) {
	s, _ := exampleSpace(t)
	om := BuildOccurrenceMatrix(s)
	som := BuildSparseOM(s)
	for i := 0; i < s.N(); i++ {
		set := map[int32]bool{}
		for _, c := range som.Rows[i] {
			set[c] = true
		}
		for col := 0; col < s.NumCols(); col++ {
			if om.Rows[i].Get(col) != set[int32(col)] {
				t.Fatalf("row %d col %d: packed %v sparse %v", i, col, om.Rows[i].Get(col), set[int32(col)])
			}
		}
		// Rows must be sorted for the merge tests.
		for k := 1; k < len(som.Rows[i]); k++ {
			if som.Rows[i][k-1] >= som.Rows[i][k] {
				t.Fatalf("row %d not strictly ascending: %v", i, som.Rows[i])
			}
		}
	}
}

// TestQuickSparseBaselineEquivalence checks that the sparse baseline
// produces exactly the packed baseline's sets on random corpora.
func TestQuickSparseBaselineEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		c := randomCorpus(seed)
		s, err := NewSpace(c)
		if err != nil {
			return false
		}
		a := NewResult()
		Baseline(s, TaskAll, a)
		a.Sort()
		b := NewResult()
		BaselineSparse(s, TaskAll, b)
		b.Sort()
		if !samePairs(a.FullSet, b.FullSet) || !samePairs(a.PartialSet, b.PartialSet) || !samePairs(a.ComplSet, b.ComplSet) {
			return false
		}
		for p, d := range a.PartialDegree {
			if b.PartialDegree[p] != d {
				return false
			}
		}
		for p, dims := range a.PartialDims {
			bd := b.PartialDims[p]
			if len(bd) != len(dims) {
				return false
			}
			for i := range dims {
				if bd[i] != dims[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestSparseMemoryAdvantage asserts the space saving the paper predicts:
// on the real-world replica (≈2.5 k columns), the sparse rows take well
// under half the packed rows' memory.
func TestSparseMemoryAdvantage(t *testing.T) {
	c := gen.RealWorld(gen.RealWorldConfig{TotalObs: 500, Seed: 2})
	s, err := NewSpace(c)
	if err != nil {
		t.Fatal(err)
	}
	som := BuildSparseOM(s)
	sparseBytes := som.MemoryBytes()
	packedBytes := s.N() * ((s.NumCols() + 63) / 64) * 8
	if sparseBytes*2 >= packedBytes {
		t.Errorf("sparse %d B vs packed %d B: expected >2x saving", sparseBytes, packedBytes)
	}
}

func TestSparseViaCompute(t *testing.T) {
	s, _ := exampleSpace(t)
	res := NewResult()
	if err := Compute(s, AlgorithmBaselineSparse, Options{}, res); err != nil {
		t.Fatal(err)
	}
	if f, p, cc := res.Counts(); f != 4 || p != 43 || cc != 2 {
		t.Errorf("counts (%d, %d, %d), want (4, 43, 2)", f, p, cc)
	}
}
