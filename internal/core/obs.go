package core

import "rdfcube/internal/obsv"

// Observability. The algorithms consult an optional obsv.Recorder attached
// to the Space (via Options.Obs or SetRecorder). The hot loops batch their
// increments in local integers and flush per outer iteration, so with no
// recorder attached the only cost is a nil check per flush point — the
// instrumentation is invisible when Options.Obs == nil.
//
// Counter names. All counters are monotonic within one run:
//
//   - CtrObsPairsCompared: ordered observation-pair comparisons actually
//     performed. The baseline resolves both directions per unordered-pair
//     visit, so a full baseline run reports exactly n·(n−1).
//   - CtrCubePairsConsidered / Pruned / Compared: ordered cube pairs seen
//     by the lattice sweep, discarded at the schema level, and handed to
//     the member-comparison loop. Pruned + Compared = Considered always —
//     the pruned ratio is the paper's Fig. 5 cubeMasking speedup argument.
//   - CtrCandidateDimTests: cube-signature candidate-dimension tests.
//   - CtrDimTests: per-dimension containment tests on observation values.
//   - CtrBitAndTests: word-parallel bit-AND subset tests (packed OM rows).
//   - CtrSparseSubsetTests: merge-style subset tests (sparse OM rows).
//   - CtrPrefetchHits: cube pairs served from the prefetched child lists
//     (Fig. 5(g)).
//   - CtrEmitFull / Partial / Compl: relationships emitted into the sink.
//   - CtrClusterPairsSkipped: ordered observation pairs never compared
//     because the pair straddles two clusters — the recall trade-off of
//     Fig. 5(d), counted instead of guessed.
//   - CtrHybridCubesClustered: oversized cubes the hybrid handed to the
//     intra-cube clustering fallback.
//   - CtrIncInserts: incremental insertions applied.
//   - CtrParallelCubes: outer cubes processed by the worker pool; the
//     per-worker split is reported as parallel.worker.<id>.cubes.
//   - CtrParallelRows: outer occurrence-matrix rows processed by the
//     parallel baseline's row-block shards; per-worker throughput is
//     parallel.worker.<id>.rows.
//   - CtrParallelClusters: clusters scanned by the parallel clustering
//     pool; per-worker throughput is parallel.worker.<id>.clusters.
//   - CtrRunCanceled: runs that ended in cooperative cancellation (context,
//     deadline, pair budget or stall watchdog).
//   - CtrShardPanics: parallel shards whose worker panicked (each is
//     retried serially once).
//   - CtrShardRetries: serial retries of panicked shards that were
//     attempted (equal to CtrShardPanics; a second panic fails the run).
const (
	CtrObsPairsCompared     = "obs.pairs.compared"
	CtrCubePairsConsidered  = "cubes.pairs.considered"
	CtrCubePairsPruned      = "cubes.pairs.pruned"
	CtrCubePairsCompared    = "cubes.pairs.compared"
	CtrCandidateDimTests    = "lattice.candidate.tests"
	CtrDimTests             = "dim.tests"
	CtrBitAndTests          = "bitand.tests"
	CtrSparseSubsetTests    = "sparse.subset.tests"
	CtrPrefetchHits         = "prefetch.hits"
	CtrEmitFull             = "emit.full"
	CtrEmitPartial          = "emit.partial"
	CtrEmitCompl            = "emit.compl"
	CtrClusterPairsSkipped  = "cluster.pairs.skipped"
	CtrHybridCubesClustered = "hybrid.cubes.clustered"
	CtrIncInserts           = "incremental.inserts"
	CtrParallelCubes        = "parallel.cubes"
	CtrParallelRows         = "parallel.rows"
	CtrParallelClusters     = "parallel.clusters"
	CtrRunCanceled          = "run.canceled"
	CtrShardPanics          = "run.shard.panics"
	CtrShardRetries         = "run.shard.retries"
)

// Span (phase) names, forming the run's phase tree: compile (with om.build
// / sparse.build / lattice.build sub-phases where applicable) → compare →
// emit. The parallel variant adds a replay phase.
const (
	SpanCompile      = "compile"
	SpanOMBuild      = "om.build"
	SpanSparseBuild  = "sparse.build"
	SpanLatticeBuild = "lattice.build"
	SpanCluster      = "cluster.assign"
	SpanCompare      = "compare"
	SpanReplay       = "replay"
	SpanEmit         = "emit"
)

// Gauge names.
const (
	GaugeObservations = "space.observations"
	GaugeDimensions   = "space.dimensions"
	GaugeColumns      = "space.columns"
	GaugeCubes        = "lattice.cubes"
	GaugeClusters     = "cluster.clusters"
	GaugeWorkers      = "parallel.workers"
)

// SetRecorder attaches an instrumentation recorder to the space; every
// subsequent algorithm run over the space reports into it. A nil recorder
// detaches. Attach before a run, not during one: algorithms read the
// recorder concurrently from worker goroutines.
func (s *Space) SetRecorder(r obsv.Recorder) { s.rec = r }

// Recorder returns the attached recorder, or nil.
func (s *Space) Recorder() obsv.Recorder { return s.rec }

// count flushes a batched counter increment; no-op without a recorder.
func (s *Space) count(name string, delta int64) {
	if s.rec != nil && delta != 0 {
		s.rec.Count(name, delta)
	}
}

// gauge sets a gauge; no-op without a recorder.
func (s *Space) gauge(name string, v float64) {
	if s.rec != nil {
		s.rec.Gauge(name, v)
	}
}

var nopEnd = func() {}

// span opens a phase span; the returned closer is nopEnd without a
// recorder.
func (s *Space) span(name string) func() {
	if s.rec == nil {
		return nopEnd
	}
	return s.rec.Start(name)
}

// countingSink wraps a Sink, counting emissions per relationship type.
type countingSink struct {
	sink Sink
	rec  obsv.Recorder
}

// Full implements Sink.
func (c countingSink) Full(a, b int) {
	c.rec.Count(CtrEmitFull, 1)
	c.sink.Full(a, b)
}

// Partial implements Sink.
func (c countingSink) Partial(a, b int, degree float64) {
	c.rec.Count(CtrEmitPartial, 1)
	c.sink.Partial(a, b, degree)
}

// Compl implements Sink.
func (c countingSink) Compl(a, b int) {
	c.rec.Count(CtrEmitCompl, 1)
	c.sink.Compl(a, b)
}

// countingDimsSink additionally forwards the DimsRecorder extension, so
// wrapping does not hide map_P recording from the algorithms.
type countingDimsSink struct {
	countingSink
	dims DimsRecorder
}

// RecordPartialDims implements DimsRecorder.
func (c countingDimsSink) RecordPartialDims(a, b int, dims []int) {
	c.dims.RecordPartialDims(a, b, dims)
}

// instrumentSink wraps sink with emission counting when the space has a
// recorder; otherwise it returns sink unchanged. The wrapper preserves the
// optional DimsRecorder extension.
func instrumentSink(s *Space, sink Sink) Sink {
	if s.rec == nil {
		return sink
	}
	cs := countingSink{sink: sink, rec: s.rec}
	if dr, ok := sink.(DimsRecorder); ok {
		return countingDimsSink{countingSink: cs, dims: dr}
	}
	return cs
}
