package core

import (
	"testing"

	"rdfcube/internal/gen"
	"rdfcube/internal/rdf"
)

// matrixSpace compiles the paper's seven-observation Table 2/3 corpus and
// returns the space plus a name→index map.
func matrixSpace(t *testing.T) (*Space, map[string]int) {
	t.Helper()
	c := gen.PaperMatrixExample()
	s, err := NewSpace(c)
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	idx := map[string]int{}
	for i, o := range s.Obs {
		idx[o.URI.Local()] = i
	}
	if len(idx) != 7 {
		t.Fatalf("want 7 observations, got %d", len(idx))
	}
	return s, idx
}

func exampleSpace(t *testing.T) (*Space, map[string]int) {
	t.Helper()
	c := gen.PaperExample()
	s, err := NewSpace(c)
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	idx := map[string]int{}
	for i, o := range s.Obs {
		idx[o.URI.Local()] = i
	}
	if len(idx) != 10 {
		t.Fatalf("want 10 observations, got %d", len(idx))
	}
	return s, idx
}

func dimIndex(t *testing.T, s *Space, dim rdf.Term) int {
	t.Helper()
	for d, p := range s.Dims {
		if p == dim {
			return d
		}
	}
	t.Fatalf("dimension %s not in space", dim)
	return -1
}

// TestOccurrenceMatrixTable2 is the golden test for the paper's Table 2:
// the OM rows of the worked example, bit by bit. The expectations are the
// ancestor-closure encoding of §3.1 applied to the Figure 1 hierarchies;
// two cells of the printed table (obs12's refPeriod Jan11 — printed for
// obs22 — and obs22's Jan11 flag) are typos in the paper and are asserted
// per the definition here.
func TestOccurrenceMatrixTable2(t *testing.T) {
	s, idx := matrixSpace(t)
	om := BuildOccurrenceMatrix(s)

	// expected set bits per observation, named by code term.
	expect := map[string][]rdf.Term{
		"o11": {gen.GeoWorld, gen.GeoEurope, gen.GeoGreece, gen.GeoAthens,
			gen.TimeAll, gen.Time2001, gen.SexTotal},
		"o12": {gen.GeoWorld, gen.GeoAmerica, gen.GeoUS, gen.GeoTexas, gen.GeoAustin,
			gen.TimeAll, gen.Time2011, gen.SexTotal, gen.SexMale},
		"o21": {gen.GeoWorld, gen.GeoEurope, gen.GeoGreece,
			gen.TimeAll, gen.Time2011, gen.SexTotal},
		"o22": {gen.GeoWorld, gen.GeoEurope, gen.GeoItaly,
			gen.TimeAll, gen.Time2011, gen.SexTotal},
		"o31": {gen.GeoWorld, gen.GeoEurope, gen.GeoGreece, gen.GeoAthens,
			gen.TimeAll, gen.Time2001, gen.SexTotal},
		"o32": {gen.GeoWorld, gen.GeoEurope, gen.GeoGreece, gen.GeoAthens,
			gen.TimeAll, gen.Time2011, gen.TimeJan, gen.SexTotal},
		"o33": {gen.GeoWorld, gen.GeoEurope, gen.GeoItaly, gen.GeoRome,
			gen.TimeAll, gen.Time2011, gen.TimeFeb, gen.SexTotal},
	}

	// Resolve every example code to its global column.
	colOf := func(code rdf.Term) int {
		for d := range s.Dims {
			if c := om.Column(d, code); c >= 0 {
				return c
			}
		}
		t.Fatalf("code %s not found in any dimension", code)
		return -1
	}

	for name, codes := range expect {
		i := idx[name]
		row := om.Rows[i]
		want := map[int]bool{}
		for _, code := range codes {
			want[colOf(code)] = true
		}
		for col := 0; col < om.NumCols(); col++ {
			if row.Get(col) != want[col] {
				t.Errorf("%s: column %d: got bit %v, want %v", name, col, row.Get(col), want[col])
			}
		}
		if row.Count() != len(codes) {
			t.Errorf("%s: %d bits set, want %d", name, row.Count(), len(codes))
		}
	}
}

// TestRowMatchesDirectChecks cross-validates the bit-vector sf test against
// the direct parent-chain ancestry checks for every pair and dimension.
func TestRowMatchesDirectChecks(t *testing.T) {
	s, _ := exampleSpace(t)
	om := BuildOccurrenceMatrix(s)
	for i := 0; i < s.N(); i++ {
		for j := 0; j < s.N(); j++ {
			for d := 0; d < s.NumDims(); d++ {
				bit := om.ContainsDim(i, j, d)
				direct := s.DimContains(i, j, d)
				if bit != direct {
					t.Fatalf("pair (%d,%d) dim %d: bitvec=%v direct=%v", i, j, d, bit, direct)
				}
			}
		}
	}
}
