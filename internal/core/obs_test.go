package core

import (
	"strings"
	"testing"

	"rdfcube/internal/gen"
	"rdfcube/internal/obsv"
)

func obsTestSpace(t testing.TB, n int) *Space {
	t.Helper()
	c := gen.RealWorld(gen.RealWorldConfig{TotalObs: n, Seed: 1})
	s, err := NewSpace(c)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestCubeMaskingPruningAccounting is the acceptance check of the pruning
// counters: over the real generator at n = 5000, pruned + compared cube
// pairs must equal the unpruned pair total #cubes², in every task mode.
func TestCubeMaskingPruningAccounting(t *testing.T) {
	s := obsTestSpace(t, 5000)
	for _, tasks := range []Tasks{TaskAll, TaskFull, TaskCompl} {
		col := obsv.NewCollector()
		s.SetRecorder(col)
		l := CubeMasking(s, tasks, &Counter{}, CubeMaskOptions{})
		s.SetRecorder(nil)

		snap := col.Snapshot()
		nc := int64(l.Len())
		considered := snap[CtrCubePairsConsidered]
		pruned := snap[CtrCubePairsPruned]
		compared := snap[CtrCubePairsCompared]
		if considered != nc*nc {
			t.Errorf("tasks %b: considered = %d, want #cubes² = %d", tasks, considered, nc*nc)
		}
		if pruned+compared != considered {
			t.Errorf("tasks %b: pruned (%d) + compared (%d) != considered (%d)",
				tasks, pruned, compared, considered)
		}
		if compared == 0 {
			t.Errorf("tasks %b: degenerate accounting: no cube pair compared", tasks)
		}
		// With the partial task active any shared candidate dimension
		// forces a comparison, so pruning may legitimately be zero; for
		// full/compl-only runs the lattice must actually prune.
		if !tasks.Has(TaskPartial) && pruned == 0 {
			t.Errorf("tasks %b: lattice pruned nothing", tasks)
		}
	}
}

// TestPrefetchPruningAccounting checks the invariant holds on the
// prefetched sweep too, and that cache hits equal compared pairs.
func TestPrefetchPruningAccounting(t *testing.T) {
	s := obsTestSpace(t, 2000)
	col := obsv.NewCollector()
	s.SetRecorder(col)
	l := CubeMasking(s, TaskFull, &Counter{}, CubeMaskOptions{PrefetchChildren: true})
	s.SetRecorder(nil)
	snap := col.Snapshot()
	nc := int64(l.Len())
	if snap[CtrCubePairsConsidered] != nc*nc {
		t.Errorf("considered = %d, want %d", snap[CtrCubePairsConsidered], nc*nc)
	}
	if snap[CtrCubePairsPruned]+snap[CtrCubePairsCompared] != snap[CtrCubePairsConsidered] {
		t.Errorf("pruned (%d) + compared (%d) != considered (%d)",
			snap[CtrCubePairsPruned], snap[CtrCubePairsCompared], snap[CtrCubePairsConsidered])
	}
	if snap[CtrPrefetchHits] != snap[CtrCubePairsCompared] {
		t.Errorf("prefetch.hits = %d, want compared = %d", snap[CtrPrefetchHits], snap[CtrCubePairsCompared])
	}
}

// TestBaselineComparisonCount is the acceptance check of the baseline
// counter: a full baseline run performs exactly n·(n−1) ordered
// observation comparisons (each unordered pair visit resolves both
// directions), for both the packed and the sparse occurrence matrix.
func TestBaselineComparisonCount(t *testing.T) {
	s := obsTestSpace(t, 5000)
	n := int64(s.N())
	want := n * (n - 1)

	for name, run := range map[string]func(*Space, Tasks, Sink){
		"baseline":        Baseline,
		"baseline-sparse": BaselineSparse,
	} {
		col := obsv.NewCollector()
		s.SetRecorder(col)
		run(s, TaskFull, &Counter{})
		s.SetRecorder(nil)
		if got := col.Snapshot()[CtrObsPairsCompared]; got != want {
			t.Errorf("%s: obs.pairs.compared = %d, want n(n-1) = %d", name, got, want)
		}
	}
}

// TestEmitCountersMatchSink checks the instrumented sink counts exactly
// the relationships the sink receives, and that counts agree across
// algorithms.
func TestEmitCountersMatchSink(t *testing.T) {
	s := obsTestSpace(t, 1500)
	var ref [3]int
	for i, alg := range []Algorithm{AlgorithmBaseline, AlgorithmCubeMasking, AlgorithmParallel} {
		col := obsv.NewCollector()
		cnt := &Counter{}
		opts := Options{Obs: col}
		if alg == AlgorithmParallel {
			opts.Workers = 4
		}
		if err := Compute(s, alg, opts, cnt); err != nil {
			t.Fatal(err)
		}
		s.SetRecorder(nil)
		snap := col.Snapshot()
		if snap[CtrEmitFull] != int64(cnt.NFull) ||
			snap[CtrEmitPartial] != int64(cnt.NPartial) ||
			snap[CtrEmitCompl] != int64(cnt.NCompl) {
			t.Errorf("%s: emit counters (%d,%d,%d) != sink counts (%d,%d,%d)", alg,
				snap[CtrEmitFull], snap[CtrEmitPartial], snap[CtrEmitCompl],
				cnt.NFull, cnt.NPartial, cnt.NCompl)
		}
		if i == 0 {
			ref = [3]int{cnt.NFull, cnt.NPartial, cnt.NCompl}
		} else if got := [3]int{cnt.NFull, cnt.NPartial, cnt.NCompl}; got != ref {
			t.Errorf("%s: counts %v differ from baseline %v", alg, got, ref)
		}
	}
}

// TestPhaseTree checks the recorded span tree of a full ComputeCorpus run:
// compile → lattice.build → compare → emit.
func TestPhaseTree(t *testing.T) {
	c := gen.RealWorld(gen.RealWorldConfig{TotalObs: 500, Seed: 1})
	col := obsv.NewCollector()
	_, _, err := ComputeCorpus(c, AlgorithmCubeMasking, Options{Obs: col})
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, sp := range col.Spans() {
		names = append(names, sp.Name)
	}
	joined := strings.Join(names, " ")
	for _, want := range []string{SpanCompile, SpanLatticeBuild, SpanCompare, SpanEmit} {
		if !strings.Contains(joined, want) {
			t.Errorf("phase tree %q missing %q", joined, want)
		}
	}
	// compile must come before compare, compare before emit.
	if idx(names, SpanCompile) > idx(names, SpanCompare) || idx(names, SpanCompare) > idx(names, SpanEmit) {
		t.Errorf("phase order wrong: %v", names)
	}
}

func idx(names []string, want string) int {
	for i, n := range names {
		if n == want {
			return i
		}
	}
	return -1
}

// TestIncrementalCounters checks insert instrumentation.
func TestIncrementalCounters(t *testing.T) {
	c := gen.RealWorld(gen.RealWorldConfig{TotalObs: 300, Seed: 1})
	obs := c.Observations()
	grow := gen.RealWorld(gen.RealWorldConfig{TotalObs: 320, Seed: 1}).Observations()
	s, err := NewSpace(c)
	if err != nil {
		t.Fatal(err)
	}
	col := obsv.NewCollector()
	s.SetRecorder(col)
	inc := NewIncremental(s, TaskAll)
	inserted := 0
	for _, o := range grow[len(obs):] {
		if _, err := inc.Insert(o); err != nil {
			continue // schema outside the initial space — not under test
		}
		inserted++
	}
	if inserted == 0 {
		t.Skip("no compatible growth observations")
	}
	if got := col.Snapshot()[CtrIncInserts]; got != int64(inserted) {
		t.Errorf("incremental.inserts = %d, want %d", got, inserted)
	}
}

// TestOptionsValidate covers the Strict/Validate satellite: ignored
// non-zero fields are reported, consumed fields pass.
func TestOptionsValidate(t *testing.T) {
	var opts Options
	opts.Workers = 4
	// Since the parallel-baseline PR, Workers is consumed (not "ignored")
	// by baseline, clustering AND parallel.
	for _, alg := range []Algorithm{AlgorithmBaseline, AlgorithmClustering, AlgorithmParallel} {
		if err := opts.Validate(alg); err != nil {
			t.Errorf("%s consumes Workers: %v", alg, err)
		}
	}
	if err := opts.Validate(AlgorithmBaselineSparse); err == nil {
		t.Errorf("baseline-sparse must reject Workers")
	} else if !strings.Contains(err.Error(), "Workers") {
		t.Errorf("error must name the field: %v", err)
	}
	if err := opts.Validate(AlgorithmCubeMasking); err == nil {
		t.Errorf("cubemasking must reject Workers (use AlgorithmParallel)")
	}

	opts = Options{}
	opts.Clustering.Config.Seed = 7
	if err := opts.Validate(AlgorithmCubeMasking); err == nil {
		t.Errorf("cubemasking must reject Clustering")
	}
	if err := opts.Validate(AlgorithmClustering); err != nil {
		t.Errorf("clustering consumes Clustering: %v", err)
	}

	opts = Options{CubeMask: CubeMaskOptions{PrefetchChildren: true}}
	if err := opts.Validate(AlgorithmBaselineSparse); err == nil {
		t.Errorf("baseline-sparse must reject CubeMask")
	}
	for _, alg := range []Algorithm{AlgorithmCubeMasking, AlgorithmCubeMaskingPrefetch} {
		if err := opts.Validate(alg); err != nil {
			t.Errorf("%s consumes CubeMask: %v", alg, err)
		}
	}

	opts = Options{Hybrid: HybridOptions{MaxCubeSize: 9}}
	if err := opts.Validate(AlgorithmCubeMasking); err == nil {
		t.Errorf("cubemasking must reject Hybrid")
	}
	if err := opts.Validate(AlgorithmHybrid); err != nil {
		t.Errorf("hybrid consumes Hybrid: %v", err)
	}

	if err := (Options{}).Validate(Algorithm("nope")); err == nil {
		t.Errorf("unknown algorithm must fail")
	}

	// Strict threads through Compute.
	s := obsTestSpace(t, 100)
	bad := Options{CubeMask: CubeMaskOptions{PrefetchChildren: true}, Strict: true}
	if err := Compute(s, AlgorithmBaseline, bad, &Counter{}); err == nil {
		t.Errorf("strict Compute must reject ignored CubeMask")
	}
	bad.Strict = false
	if err := Compute(s, AlgorithmBaseline, bad, &Counter{}); err != nil {
		t.Errorf("lenient Compute must ignore CubeMask: %v", err)
	}
	// Workers is consumed by the baseline now: Strict must accept it, and
	// the parallel run must succeed.
	ok := Options{Workers: 2, Strict: true}
	if err := Compute(s, AlgorithmBaseline, ok, &Counter{}); err != nil {
		t.Errorf("strict Compute must accept Workers for baseline: %v", err)
	}
	if err := Compute(s, AlgorithmClustering, ok, &Counter{}); err != nil {
		t.Errorf("strict Compute must accept Workers for clustering: %v", err)
	}
}

// TestComputeUsesCubeMaskOptions guards the fixed bug where Compute
// dropped Options.CubeMask on the floor: the prefetch flag must reach the
// algorithm (observable through the prefetch.hits counter).
func TestComputeUsesCubeMaskOptions(t *testing.T) {
	s := obsTestSpace(t, 500)
	col := obsv.NewCollector()
	opts := Options{
		Tasks:    TaskFull,
		CubeMask: CubeMaskOptions{PrefetchChildren: true},
		Obs:      col,
	}
	if err := Compute(s, AlgorithmCubeMasking, opts, &Counter{}); err != nil {
		t.Fatal(err)
	}
	s.SetRecorder(nil)
	if col.Snapshot()[CtrPrefetchHits] == 0 {
		t.Errorf("Options.CubeMask.PrefetchChildren was dropped by Compute")
	}
}

// TestNoRecorderNoWrap checks the zero-overhead contract: without a
// recorder, instrumentSink must return the sink unchanged.
func TestNoRecorderNoWrap(t *testing.T) {
	s := obsTestSpace(t, 100)
	sink := NewResult()
	if got := instrumentSink(s, sink); got != Sink(sink) {
		t.Errorf("instrumentSink without recorder must be the identity")
	}
	s.SetRecorder(obsv.NewCollector())
	wrapped := instrumentSink(s, sink)
	if _, ok := wrapped.(DimsRecorder); !ok {
		t.Errorf("wrapping must preserve the DimsRecorder extension")
	}
	if _, ok := instrumentSink(s, &Counter{}).(DimsRecorder); ok {
		t.Errorf("wrapping must not invent a DimsRecorder")
	}
}
