package core

import (
	"context"
	"runtime"

	"rdfcube/internal/cluster"
)

// This file extends the paper's §6 "distributed and parallel contexts"
// future-work item beyond cubeMasking (parallel.go) to the other two
// published algorithms:
//
//   - ParallelBaseline shards the §3.1 quadratic pair scan — the reference
//     point of every experiment in Figs. 7–9 — over contiguous row blocks
//     of the occurrence matrix. Each block runs the per-dimension CM_i
//     bit-AND sweep for its outer rows against all later rows.
//   - ParallelClustering runs the §3.2 intra-cluster baseline scans as
//     independent work items (one cluster each), stolen from a shared
//     channel.
//
// Both reuse the deterministic private-sink + ordered-replay merge of
// parallel.go: workers record emissions onto pooled private tapes, and the
// replay walks the tapes in shard-index order. Because a tape preserves
// its shard's exact call sequence — the serial algorithm's emission order
// restricted to that shard — and shards are replayed in serial iteration
// order, the merged stream is bit-identical to a serial run, not merely
// equal after Result.Sort. The parity tests assert exactly that.

// minParallelRows is the input size below which the parallel baseline
// falls back to the serial scan: goroutine + replay overhead dominates on
// tiny inputs, and the serial path already satisfies the parity contract.
const minParallelRows = 64

// rowBlocks splits the outer-row index range [0, n) of an upper-triangle
// pair scan into contiguous blocks with approximately equal pair counts.
// Early rows pair with nearly n partners and late rows with few, so equal
// row counts would starve the workers that drew late blocks; equal pair
// counts keep them busy. The block list only depends on n and the target
// count, so the shard layout — and with it the replay order — is
// deterministic for a given input and worker count.
func rowBlocks(n, targetBlocks int) [][2]int {
	if targetBlocks < 1 {
		targetBlocks = 1
	}
	if targetBlocks > n {
		targetBlocks = n
	}
	totalPairs := float64(n) * float64(n-1) / 2
	perBlock := totalPairs / float64(targetBlocks)
	var blocks [][2]int
	lo := 0
	acc := 0.0
	for x := 0; x < n; x++ {
		acc += float64(n - 1 - x)
		if acc >= perBlock || x == n-1 {
			blocks = append(blocks, [2]int{lo, x + 1})
			lo = x + 1
			acc = 0
		}
	}
	if lo < n {
		blocks = append(blocks, [2]int{lo, n})
	}
	return blocks
}

// ParallelBaseline is the §3.1 baseline with the pair scan spread over a
// worker pool: workers claim row blocks from a shared channel
// (work-stealing), scan them with the same allocation-free inner loop as
// the serial baseline, and the ordered replay merges the private results
// into the caller's sink in block order. Output — including emission
// order — is bit-identical to Baseline's; only wall-clock differs.
// workers <= 0 means GOMAXPROCS.
//
// Instrumentation matches the serial baseline (obs.pairs.compared totals
// exactly n·(n−1), bitand.tests counts every word-level subset test) plus
// the pool's own counters: parallel.rows, and per-worker
// parallel.worker.<id>.rows throughput.
func ParallelBaseline(s *Space, tasks Tasks, sink Sink, workers int) {
	if err := parallelBaselineG(s, tasks, sink, workers, true, nil, nil); err != nil {
		// Without a guard the only possible error is a twice-panicked
		// shard; preserve the historical crash semantics of the void API.
		panic(err)
	}
}

// ParallelBaselineCtx is ParallelBaseline with cooperative cancellation;
// see the runShardPool contract for the canceled sink's prefix guarantee.
func ParallelBaselineCtx(ctx context.Context, s *Space, tasks Tasks, sink Sink, workers int) error {
	return parallelBaselineG(s, tasks, sink, workers, true, newGuard(ctx, 0, 0), nil)
}

func parallelBaselineG(s *Space, tasks Tasks, sink Sink, workers int, strong bool, g *guard, fault func(int)) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	om := BuildOccurrenceMatrix(s)
	n := s.N()
	if workers == 1 || n < minParallelRows {
		sink = instrumentSink(s, sink)
		endCompare := s.span(SpanCompare)
		err := baselineOverG(om, nil, tasks, sink, g)
		endCompare()
		return err
	}
	s.gauge(GaugeWorkers, float64(workers))
	_, wantDims := sink.(DimsRecorder)

	// Several blocks per worker so work-stealing can absorb skew from the
	// pair-count balancing being approximate.
	blocks := rowBlocks(n, workers*4)

	endCompare := s.span(SpanCompare)
	sp := shardPool{
		kind:     "rows",
		totalCtr: CtrParallelRows,
		weight:   func(bi int) int64 { return int64(blocks[bi][1] - blocks[bi][0]) },
		scan: func(bi int, local Sink, _ any) error {
			b := blocks[bi]
			return baselineBlockG(om, nil, b[0], b[1], tasks, local, g)
		},
		fingerprint: func(bi int) string {
			b := blocks[bi]
			return shardFingerprint("baseline", bi, b[0], b[1], nil)
		},
	}
	var merge *tapeMerge
	if !strong {
		merge = newTapeMerge(s, sink)
	}
	tapes, err := runShardPool(s, sp, len(blocks), workers, wantDims, merge, g, fault)
	endCompare()
	if tapes != nil {
		replayTapes(s, sink, tapes)
	}
	return err
}

// ParallelClustering is the §3.2 clustering algorithm with the
// intra-cluster baseline runs spread over a worker pool: the cluster
// assignment itself is unchanged (and stays deterministic under a fixed
// seed), then each cluster becomes one work item on a shared channel and
// workers steal them. Private results are replayed in cluster order, so
// output — including emission order — is bit-identical to Clustering's
// for the same options. workers <= 0 means GOMAXPROCS.
//
// The method keeps its published recall trade-off: cross-cluster pairs
// are still skipped and still counted under cluster.pairs.skipped. The
// pool adds parallel.clusters and per-worker
// parallel.worker.<id>.clusters counters.
func ParallelClustering(s *Space, tasks Tasks, sink Sink, opts ClusteringOptions, workers int) (cluster.Clustering, error) {
	return parallelClusteringG(s, tasks, sink, opts, workers, true, nil, nil)
}

// ParallelClusteringCtx is ParallelClustering with cooperative
// cancellation; see the runShardPool contract for the canceled sink's
// prefix guarantee. The cluster-assignment phase polls ctx as well.
func ParallelClusteringCtx(ctx context.Context, s *Space, tasks Tasks, sink Sink, opts ClusteringOptions, workers int) (cluster.Clustering, error) {
	return parallelClusteringG(s, tasks, sink, opts, workers, true, newGuard(ctx, 0, 0), nil)
}

func parallelClusteringG(s *Space, tasks Tasks, sink Sink, opts ClusteringOptions, workers int, strong bool, g *guard, fault func(int)) (cluster.Clustering, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	om := BuildOccurrenceMatrix(s)
	cfg := opts.Config
	if cfg.Poll == nil {
		cfg.Poll = g.pollFunc()
	}
	endAssign := s.span(SpanCluster)
	cl, err := cluster.Cluster(om.Rows, cfg)
	endAssign()
	if err != nil {
		return cluster.Clustering{}, err
	}
	members := cl.Members()
	s.gauge(GaugeClusters, float64(len(members)))
	countSkippedPairs(s, members)

	// Only clusters with at least one pair produce work.
	var work []int
	for ci, m := range members {
		if len(m) >= 2 {
			work = append(work, ci)
		}
	}

	if workers == 1 || len(work) < 2 {
		// Serial path: instrument here; the parallel path leaves the sink
		// raw because replayTapes instruments it at replay time.
		instrumented := instrumentSink(s, sink)
		endCompare := s.span(SpanCompare)
		defer endCompare()
		for _, ci := range work {
			if err := baselineOverG(om, members[ci], tasks, instrumented, g); err != nil {
				return cl, err
			}
		}
		return cl, nil
	}
	s.gauge(GaugeWorkers, float64(workers))
	_, wantDims := sink.(DimsRecorder)

	endCompare := s.span(SpanCompare)
	sp := shardPool{
		kind:     "clusters",
		totalCtr: CtrParallelClusters,
		weight:   func(int) int64 { return 1 },
		scan: func(wi int, local Sink, _ any) error {
			return baselineOverG(om, members[work[wi]], tasks, local, g)
		},
		fingerprint: func(wi int) string {
			return shardFingerprint("clustering", wi, 0, 0, members[work[wi]])
		},
	}
	var merge *tapeMerge
	if !strong {
		merge = newTapeMerge(s, sink)
	}
	tapes, perr := runShardPool(s, sp, len(work), workers, wantDims, merge, g, fault)
	endCompare()
	if tapes != nil {
		replayTapes(s, sink, tapes)
	}
	return cl, perr
}

// countSkippedPairs reports the ordered pairs clustering will never
// compare — all ordered pairs minus intra-cluster ordered pairs, the
// source of the method's recall loss (Fig. 5(d)).
func countSkippedPairs(s *Space, members [][]int) {
	n := int64(s.N())
	intra := int64(0)
	for _, m := range members {
		intra += int64(len(m)) * int64(len(m)-1)
	}
	s.count(CtrClusterPairsSkipped, n*(n-1)-intra)
}
