package core

import "fmt"

// OCM is the materialized Overall Containment Matrix of Algorithm 1
// (computeOCM), kept as integer dimension counts to make the "== 1" test
// exact; Degree normalizes on read. Materializing OCM is Θ(n²) memory and
// is intended for small inputs, tests and the paper's worked examples — the
// production algorithms stream pairs instead (see Baseline).
type OCM struct {
	// N is the number of observations (rows = columns).
	N int
	// P is the number of dimensions used for normalization.
	P int
	// Counts[i][j] is the number of dimensions on which i contains j.
	Counts [][]uint16
	// CMs[d][i][j] records the per-dimension containment matrices CM_d.
	CMs [][][]bool
}

// ComputeOCM runs Algorithm 1 over a materialized occurrence matrix:
// one containment matrix CM_d per dimension via the conditional function
// sf, summed and (logically) normalized into the OCM.
func ComputeOCM(om *OccurrenceMatrix) *OCM {
	n := om.Space.N()
	p := om.Space.NumDims()
	ocm := &OCM{N: n, P: p}
	ocm.Counts = make([][]uint16, n)
	for i := range ocm.Counts {
		ocm.Counts[i] = make([]uint16, n)
	}
	ocm.CMs = make([][][]bool, p)
	for d := 0; d < p; d++ {
		cm := make([][]bool, n)
		lo, hi := om.Space.ColRange(d)
		for i := 0; i < n; i++ {
			cm[i] = make([]bool, n)
			for j := 0; j < n; j++ {
				if om.Rows[i].AndEqualsRange(om.Rows[j], lo, hi) {
					cm[i][j] = true
					ocm.Counts[i][j]++
				}
			}
		}
		ocm.CMs[d] = cm
	}
	return ocm
}

// Degree returns the normalized OCM cell for the ordered pair (i, j):
// the fraction of dimensions on which i contains j, in [0, 1].
func (m *OCM) Degree(i, j int) float64 { return float64(m.Counts[i][j]) / float64(m.P) }

// CM reports the per-dimension containment cell CM_d[i][j].
func (m *OCM) CM(d, i, j int) bool { return m.CMs[d][i][j] }

// String renders the normalized matrix with two decimals, row per line —
// the shape of the paper's Table 3(b).
func (m *OCM) String() string {
	out := ""
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.N; j++ {
			if j > 0 {
				out += " "
			}
			out += fmt.Sprintf("%.2f", m.Degree(i, j))
		}
		out += "\n"
	}
	return out
}
