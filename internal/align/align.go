// Package align is the reproduction's stand-in for LIMES, the link-
// discovery framework the paper uses to reconcile dimension values across
// datasets before relationship computation. Like the paper's
// configuration, it matches code-list URIs as literals — "based on the
// identifiers usually found in the suffix part of a URI" — with a cosine
// distance over character trigrams, optionally combined with a normalized
// Levenshtein distance.
//
// Alignment is orthogonal to the relationship algorithms (the paper
// assumes its output is perfect); the package exists so the federation
// example and the preprocessing pipeline are runnable end to end.
package align

import (
	"math"
	"sort"
	"strings"

	"rdfcube/internal/rdf"
)

// Metric selects the string distance used for matching.
type Metric string

// Supported metrics.
const (
	// Cosine is cosine similarity over character trigram multisets.
	Cosine Metric = "cosine"
	// Levenshtein is 1 − edit distance / max length.
	Levenshtein Metric = "levenshtein"
	// MaxCosineLevenshtein is max(cosine, levenshtein) — the combined
	// configuration the paper describes for LIMES.
	MaxCosineLevenshtein Metric = "max"
)

// Config parameterizes a matching run.
type Config struct {
	// Metric is the similarity function; default MaxCosineLevenshtein.
	Metric Metric
	// Threshold is the minimum similarity for a link; default 0.8.
	Threshold float64
	// CaseFold lowercases identifiers before comparison; default true
	// behaviour is applied unless DisableCaseFold is set.
	DisableCaseFold bool
}

func (c Config) withDefaults() Config {
	if c.Metric == "" {
		c.Metric = MaxCosineLevenshtein
	}
	if c.Threshold == 0 {
		c.Threshold = 0.8
	}
	return c
}

// Link is one discovered correspondence.
type Link struct {
	// Source and Target are the linked terms.
	Source, Target rdf.Term
	// Score is the similarity in [0, 1].
	Score float64
}

// Match links every source term to its best-scoring target term at or
// above the threshold. Results are sorted by source, then descending
// score. Each source yields at most one link (the LIMES "best match"
// acceptance condition).
func Match(source, target []rdf.Term, cfg Config) []Link {
	cfg = cfg.withDefaults()
	tNames := make([]string, len(target))
	tGrams := make([]map[string]int, len(target))
	for i, t := range target {
		tNames[i] = normalize(t, cfg)
		tGrams[i] = trigrams(tNames[i])
	}
	var out []Link
	for _, s := range source {
		sn := normalize(s, cfg)
		sg := trigrams(sn)
		best, bestScore := -1, 0.0
		for i := range target {
			var score float64
			switch cfg.Metric {
			case Cosine:
				score = cosineSim(sg, tGrams[i])
			case Levenshtein:
				score = levenshteinSim(sn, tNames[i])
			default:
				c := cosineSim(sg, tGrams[i])
				l := levenshteinSim(sn, tNames[i])
				if c > l {
					score = c
				} else {
					score = l
				}
			}
			if score > bestScore {
				best, bestScore = i, score
			}
		}
		if best >= 0 && bestScore >= cfg.Threshold {
			out = append(out, Link{Source: s, Target: target[best], Score: bestScore})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if c := out[i].Source.Compare(out[j].Source); c != 0 {
			return c < 0
		}
		return out[i].Score > out[j].Score
	})
	return out
}

// Mapping is a source→target term substitution.
type Mapping map[rdf.Term]rdf.Term

// ToMapping converts links to a substitution map.
func ToMapping(links []Link) Mapping {
	m := make(Mapping, len(links))
	for _, l := range links {
		m[l.Source] = l.Target
	}
	return m
}

// Rewrite returns t's image under the mapping (t itself when unmapped).
func (m Mapping) Rewrite(t rdf.Term) rdf.Term {
	if r, ok := m[t]; ok {
		return r
	}
	return t
}

// RewriteGraph applies the mapping to every subject and object of src,
// producing a new graph (predicates are left alone: dimension property
// alignment is a schema-level decision made separately).
func RewriteGraph(src *rdf.Graph, m Mapping) *rdf.Graph {
	out := rdf.NewGraph()
	src.Match(rdf.Term{}, rdf.Term{}, rdf.Term{}, func(t rdf.Triple) bool {
		out.Add(m.Rewrite(t.S), t.P, m.Rewrite(t.O))
		return true
	})
	return out
}

func normalize(t rdf.Term, cfg Config) string {
	s := t.Local()
	if !cfg.DisableCaseFold {
		s = strings.ToLower(s)
	}
	return s
}

// trigrams returns the character-trigram multiset of s, padded so short
// identifiers still produce features.
func trigrams(s string) map[string]int {
	padded := "^^" + s + "$$"
	out := map[string]int{}
	for i := 0; i+3 <= len(padded); i++ {
		out[padded[i:i+3]]++
	}
	return out
}

func cosineSim(a, b map[string]int) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	dot, na, nb := 0, 0, 0
	for g, ca := range a {
		na += ca * ca
		if cb, ok := b[g]; ok {
			dot += ca * cb
		}
	}
	for _, cb := range b {
		nb += cb * cb
	}
	if dot == 0 {
		return 0
	}
	return float64(dot) / (math.Sqrt(float64(na)) * math.Sqrt(float64(nb)))
}

// levenshteinSim is 1 − dist/maxLen, with two-row dynamic programming.
func levenshteinSim(a, b string) float64 {
	if a == b {
		return 1
	}
	la, lb := len(a), len(b)
	if la == 0 || lb == 0 {
		return 0
	}
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j] + 1
			if cur[j-1]+1 < m {
				m = cur[j-1] + 1
			}
			if prev[j-1]+cost < m {
				m = prev[j-1] + cost
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	dist := prev[lb]
	maxLen := la
	if lb > maxLen {
		maxLen = lb
	}
	return 1 - float64(dist)/float64(maxLen)
}
