package align

import (
	"testing"

	"rdfcube/internal/rdf"
)

func iri(ns, s string) rdf.Term { return rdf.NewIRI("http://" + ns + ".example/" + s) }

func TestLevenshteinSim(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"abc", "abc", 1},
		{"", "abc", 0},
		{"abc", "", 0},
		{"kitten", "sitting", 1 - 3.0/7.0},
		{"abcd", "abce", 0.75},
	}
	for _, c := range cases {
		if got := levenshteinSim(c.a, c.b); got < c.want-1e-9 || got > c.want+1e-9 {
			t.Errorf("levenshteinSim(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestCosineOnTrigrams(t *testing.T) {
	a := trigrams("athens")
	if cosineSim(a, a) < 0.999 {
		t.Errorf("self-similarity must be 1")
	}
	b := trigrams("xyzb")
	if cosineSim(a, b) > 0.3 {
		t.Errorf("unrelated strings must score low: %v", cosineSim(a, b))
	}
	if cosineSim(map[string]int{}, a) != 0 {
		t.Errorf("empty gram set")
	}
}

func TestMatchIdenticalLocals(t *testing.T) {
	source := []rdf.Term{iri("a", "Athens"), iri("a", "Rome")}
	target := []rdf.Term{iri("b", "Rome"), iri("b", "Athens"), iri("b", "Paris")}
	links := Match(source, target, Config{})
	if len(links) != 2 {
		t.Fatalf("links: %v", links)
	}
	for _, l := range links {
		if l.Source.Local() != l.Target.Local() {
			t.Errorf("mismatched link %v", l)
		}
		if l.Score < 0.999 {
			t.Errorf("identical locals must score 1: %v", l)
		}
	}
}

func TestMatchCaseFoldingAndVariants(t *testing.T) {
	source := []rdf.Term{iri("a", "ATHENS"), iri("a", "greece")}
	target := []rdf.Term{iri("b", "Athens"), iri("b", "Greece")}
	links := Match(source, target, Config{Threshold: 0.9})
	if len(links) != 2 {
		t.Fatalf("case-folded match failed: %v", links)
	}
	// With case folding disabled the cosine/levenshtein scores drop.
	links = Match(source, target, Config{Threshold: 0.9, DisableCaseFold: true})
	if len(links) != 0 {
		t.Errorf("unfolded exact threshold should reject: %v", links)
	}
}

func TestMatchThreshold(t *testing.T) {
	source := []rdf.Term{iri("a", "Athens")}
	target := []rdf.Term{iri("b", "Rome")}
	if links := Match(source, target, Config{Threshold: 0.8}); len(links) != 0 {
		t.Errorf("dissimilar pair matched: %v", links)
	}
	// A permissive threshold links the best available candidate.
	if links := Match(source, target, Config{Threshold: 0.01, Metric: Levenshtein}); len(links) != 1 {
		t.Errorf("permissive threshold must link: %v", links)
	}
}

func TestMatchMetrics(t *testing.T) {
	source := []rdf.Term{iri("a", "Rome_IT")}
	target := []rdf.Term{iri("b", "Rome"), iri("b", "Italy")}
	for _, metric := range []Metric{Cosine, Levenshtein, MaxCosineLevenshtein} {
		links := Match(source, target, Config{Metric: metric, Threshold: 0.3})
		if len(links) != 1 || links[0].Target.Local() != "Rome" {
			t.Errorf("%s: %v", metric, links)
		}
	}
}

func TestMappingRewrite(t *testing.T) {
	m := ToMapping([]Link{{Source: iri("a", "x"), Target: iri("ref", "X"), Score: 1}})
	if m.Rewrite(iri("a", "x")) != iri("ref", "X") {
		t.Errorf("Rewrite mapped term")
	}
	if m.Rewrite(iri("a", "y")) != iri("a", "y") {
		t.Errorf("Rewrite unmapped term must be identity")
	}
}

func TestRewriteGraph(t *testing.T) {
	g := rdf.NewGraph()
	g.Add(iri("a", "s"), iri("a", "p"), iri("a", "x"))
	g.Add(iri("a", "x"), iri("a", "p"), rdf.NewLiteral("lit"))
	m := Mapping{iri("a", "x"): iri("ref", "X")}
	out := RewriteGraph(g, m)
	if !out.Has(iri("a", "s"), iri("a", "p"), iri("ref", "X")) {
		t.Errorf("object not rewritten")
	}
	if !out.Has(iri("ref", "X"), iri("a", "p"), rdf.NewLiteral("lit")) {
		t.Errorf("subject not rewritten")
	}
	if out.Len() != 2 {
		t.Errorf("triple count changed: %d", out.Len())
	}
}

func TestBestMatchIsUnique(t *testing.T) {
	// Each source yields at most one link even with several candidates
	// above threshold.
	source := []rdf.Term{iri("a", "Athens")}
	target := []rdf.Term{iri("b", "Athens"), iri("c", "Athens")}
	links := Match(source, target, Config{})
	if len(links) != 1 {
		t.Errorf("best-match must yield one link: %v", links)
	}
}
