package serve

import (
	"testing"
	"time"
)

// TestBackoffDoublesCapsAndResets pins the shared backoff policy: the
// first delay is a jitter of Base, each following delay doubles the
// nominal value, nothing exceeds Max, and Reset starts the ladder over.
func TestBackoffDoublesCapsAndResets(t *testing.T) {
	bo := Backoff{Base: 100 * time.Millisecond, Max: 400 * time.Millisecond}
	nominal := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond,
		400 * time.Millisecond, 400 * time.Millisecond, // capped
	}
	for round := 0; round < 2; round++ { // second round proves Reset
		for i, want := range nominal {
			got := bo.Next()
			if got < want/2 || got >= want {
				t.Fatalf("round %d step %d: Next() = %v, want jittered in [%v, %v)", round, i, got, want/2, want)
			}
			if cur := bo.Current(); cur != want {
				t.Fatalf("round %d step %d: Current() = %v, want %v", round, i, cur, want)
			}
		}
		bo.Reset()
	}
}

// TestBackoffZeroValueDefaults: the zero value is usable and never
// returns a zero delay.
func TestBackoffZeroValueDefaults(t *testing.T) {
	var bo Backoff
	d := bo.Next()
	if d <= 0 {
		t.Fatalf("zero-value Next() = %v", d)
	}
	for i := 0; i < 20; i++ {
		if d = bo.Next(); d <= 0 {
			t.Fatalf("step %d: Next() = %v", i, d)
		}
	}
}
