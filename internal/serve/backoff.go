package serve

import (
	"math/rand/v2"
	"time"
)

// Backoff is the doubling, capped, jittered retry policy the recompute
// circuit breaker uses, extracted so every reconnect loop in the tree
// (the breaker's open interval, the replica follower's reconnect) shares
// one implementation instead of growing ad-hoc sleep loops.
//
// Next returns the delay to wait before the attempt it is called for:
// the first call returns a jittered Base, each later call doubles the
// un-jittered interval up to Max. Reset rearms it after a success.
// A Backoff is not goroutine-safe; each retry loop owns its own.
type Backoff struct {
	// Base is the initial interval; zero means 100ms.
	Base time.Duration
	// Max caps the un-jittered interval; zero means 16× Base.
	Max time.Duration

	cur time.Duration
}

func (b *Backoff) base() time.Duration {
	if b.Base <= 0 {
		return 100 * time.Millisecond
	}
	return b.Base
}

func (b *Backoff) max() time.Duration {
	if b.Max <= 0 {
		return 16 * b.base()
	}
	return b.Max
}

// Next advances the schedule and returns the jittered delay before the
// next attempt.
func (b *Backoff) Next() time.Duration {
	if b.cur <= 0 {
		b.cur = b.base()
	} else {
		b.cur *= 2
	}
	if b.cur > b.max() {
		b.cur = b.max()
	}
	return Jittered(b.cur)
}

// Current reports the un-jittered interval the schedule has reached
// (zero before the first Next).
func (b *Backoff) Current() time.Duration { return b.cur }

// Reset rearms the schedule after a success: the next Next returns the
// jittered Base again.
func (b *Backoff) Reset() { b.cur = 0 }

// Jittered spreads d over [d/2, d) so clients that failed together do
// not all retry together (the synchronized-retry stampede).
func Jittered(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := d / 2
	return half + time.Duration(rand.Int64N(int64(half)))
}
