// Dataset registration: POST /v1/datasets admits a new, empty dataset
// into a running server — the primitive live shard rebalancing needs,
// because a migration target must learn the migrating dataset's schema
// before the source's observations can be replayed into it.
//
// Durability is the interesting part. The WAL format has exactly one
// record kind (an insert); an unknown kind decodes as a torn tail and
// is truncated on replay, so a registration cannot ride the log. The
// snapshot is the only durable carrier, which forces this order:
//
//  1. register the dataset in the in-memory space (under the write
//     lock) — it is NOT yet insertable,
//  2. run one synchronous checkpoint (Config.CheckpointNow): the
//     snapshot now contains the empty dataset,
//  3. publish the dataset to dsIdx — only now do inserts route to it.
//
// A crash before step 2 loses an unacknowledged registration (fine); a
// crash after it replays a snapshot that already carries the dataset,
// and because dataset indices are append-only, every WAL record written
// after step 3 still points at the right schema. Registrations are
// serialized by regMu across the whole cycle; the endpoint is
// idempotent (re-POSTing an identical schema answers 200).
package serve

import (
	"encoding/json"
	"net/http"
	"sort"
	"time"

	"rdfcube/internal/qb"
	"rdfcube/internal/rdf"
)

// CtrDatasetsCreated counts datasets registered at runtime.
const CtrDatasetsCreated = "serve.datasets.created"

// datasetRequest is the POST /v1/datasets body.
type datasetRequest struct {
	URI        string   `json:"uri"`
	Dimensions []string `json:"dimensions"`
	Measures   []string `json:"measures"`
}

func (s *Server) handleCreateDataset(w http.ResponseWriter, r *http.Request) {
	if s.follower != nil {
		s.rejectWrite(w, r)
		return
	}
	if s.dsCreateOff {
		s.error(w, r, http.StatusNotImplemented, "dataset creation is disabled on this server")
		return
	}
	if s.wlog != nil && s.ckptNow == nil {
		s.error(w, r, http.StatusNotImplemented,
			"dataset creation needs a checkpoint hook on WAL-backed servers (registration cannot ride the WAL)")
		return
	}
	if s.Degraded() {
		s.error(w, r, http.StatusServiceUnavailable, "degraded read-only mode: dataset creation refused")
		return
	}
	var req datasetRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxInsertBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.error(w, r, http.StatusBadRequest, "bad dataset body: %v", err)
		return
	}
	if req.URI == "" {
		s.error(w, r, http.StatusBadRequest, "missing dataset uri")
		return
	}
	dims := make([]rdf.Term, 0, len(req.Dimensions))
	for _, d := range req.Dimensions {
		dims = append(dims, rdf.NewIRI(d))
	}
	measures := make([]rdf.Term, 0, len(req.Measures))
	for _, m := range req.Measures {
		measures = append(measures, rdf.NewIRI(m))
	}
	schema := qb.NewSchema(dims, measures)

	// regMu serializes whole cycles; it is never taken under mu.
	s.regMu.Lock()
	defer s.regMu.Unlock()

	s.mu.Lock()
	if di, ok := s.dsIdx[req.URI]; ok {
		same := schemaEqual(s.inc.S.Corpus.Datasets[di].Schema, schema)
		s.mu.Unlock()
		if !same {
			s.error(w, r, http.StatusConflict, "dataset %q already exists with a different schema", req.URI)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"dataset": req.URI, "index": di, "created": false})
		return
	}
	// Registered but unpublished: a previous attempt's checkpoint failed
	// after the in-memory registration. Reuse it instead of re-registering.
	di := -1
	for i, d := range s.inc.S.Corpus.Datasets {
		if d.URI.Value == req.URI {
			di = i
			break
		}
	}
	if di < 0 {
		ds := &qb.Dataset{URI: rdf.NewIRI(req.URI), Schema: schema}
		if err := s.inc.S.RegisterDataset(ds); err != nil {
			s.mu.Unlock()
			s.error(w, r, http.StatusBadRequest, "%v", err)
			return
		}
		di = len(s.inc.S.Corpus.Datasets) - 1
	} else if !schemaEqual(s.inc.S.Corpus.Datasets[di].Schema, schema) {
		s.mu.Unlock()
		s.error(w, r, http.StatusConflict, "dataset %q already registered with a different schema", req.URI)
		return
	}
	s.mu.Unlock()

	// Durability point: the checkpoint carries the empty dataset to disk
	// before any insert can target it.
	if s.ckptNow != nil {
		if err := s.ckptNow(); err != nil {
			s.log("dataset registration checkpoint for %s failed: %v", req.URI, err)
			s.setRetryAfter(w, 2*time.Second)
			s.error(w, r, http.StatusServiceUnavailable, "registration checkpoint failed: %v; retry", err)
			return
		}
	}

	s.mu.Lock()
	s.dsIdx[req.URI] = di
	s.mu.Unlock()
	s.count(CtrDatasetsCreated, 1)
	s.log("dataset %s registered at index %d (%d dims, %d measures)", req.URI, di, len(dims), len(measures))
	writeJSON(w, http.StatusCreated, map[string]any{"dataset": req.URI, "index": di, "created": true})
}

// schemaEqual compares the sorted dimension and measure lists of two
// schemas (attributes are not part of the registration surface).
func schemaEqual(a, b *qb.Schema) bool {
	if len(a.Dimensions) != len(b.Dimensions) || len(a.Measures) != len(b.Measures) {
		return false
	}
	for i := range a.Dimensions {
		if a.Dimensions[i] != b.Dimensions[i] {
			return false
		}
	}
	for i := range a.Measures {
		if a.Measures[i] != b.Measures[i] {
			return false
		}
	}
	return true
}

// sortedIRIStrings renders terms as their IRI strings, sorted — the wire
// shape migration clients send back into datasetRequest.
func sortedIRIStrings(ts []rdf.Term) []string {
	out := make([]string, 0, len(ts))
	for _, t := range ts {
		out = append(out, t.Value)
	}
	sort.Strings(out)
	return out
}
