package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"rdfcube/internal/core"
	"rdfcube/internal/obsv"
	"rdfcube/internal/qb"
	"rdfcube/internal/rdf"
	"rdfcube/internal/wal"
)

// maxInsertBody bounds a POST /v1/observations body.
const maxInsertBody = 1 << 20

// obsRef is one neighbor in a fan-out response.
type obsRef struct {
	Obs int    `json:"obs"`
	URI string `json:"uri"`
}

// partialRef is a neighbor with its OCM containment degree.
type partialRef struct {
	Obs    int     `json:"obs"`
	URI    string  `json:"uri"`
	Degree float64 `json:"degree"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// error writes a JSON error body carrying the request's trace ID, so a
// 4xx/5xx response is correlatable with the /debug/traces ring, the
// slow-query log and the panic log line. Handlers use this instead of
// bare writeError whenever a request is in scope.
func (s *Server) error(w http.ResponseWriter, r *http.Request, status int, format string, args ...any) {
	payload := map[string]string{"error": fmt.Sprintf(format, args...)}
	if id := TraceID(r.Context()); id != "" {
		payload["traceId"] = id
	}
	writeJSON(w, status, payload)
}

// statusClientClosedRequest is nginx's convention for a request whose
// client went away before the response was written.
const statusClientClosedRequest = 499

// cancelStatus maps a request context error to the abandonment status:
// 504 when the handler overran the deadline, 499 when the client hung up.
func cancelStatus(err error) int {
	if errors.Is(err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout
	}
	return statusClientClosedRequest
}

// ctxAbort checks the request context and, when it is already done,
// counts and reports the abandonment. Handlers call it after any wait
// (lock acquisition, per-observation fan-out batches) so work for a
// vanished client stops early — in particular, an insert whose client
// hung up before the durable log append never reaches the WAL.
func (s *Server) ctxAbort(w http.ResponseWriter, r *http.Request) bool {
	err := r.Context().Err()
	if err == nil {
		return false
	}
	s.count(CtrCanceled, 1)
	s.error(w, r, cancelStatus(err), "request abandoned: %v", err)
	return true
}

// resolveObs resolves the ?obs= parameter (index or full URI) to an
// observation index. Callers must hold at least the read lock.
func (s *Server) resolveObs(r *http.Request) (int, error) {
	q := r.URL.Query().Get("obs")
	if q == "" {
		return 0, fmt.Errorf("missing ?obs= parameter (observation index or URI)")
	}
	if i, err := strconv.Atoi(q); err == nil {
		if i < 0 || i >= s.inc.S.N() {
			return 0, fmt.Errorf("observation index %d out of range [0, %d)", i, s.inc.S.N())
		}
		return i, nil
	}
	if i, ok := s.uriIdx[q]; ok {
		return i, nil
	}
	return 0, fmt.Errorf("unknown observation %q", q)
}

func (s *Server) refs(ids []int32) []obsRef {
	out := make([]obsRef, len(ids))
	for k, j := range ids {
		out[k] = obsRef{Obs: int(j), URI: s.inc.S.Obs[j].URI.Value}
	}
	return out
}

// partialRefs resolves partial-containment neighbors with their degrees
// for the ordered direction (a contains b ⇒ degree of Pair{a,b}).
func (s *Server) partialRefs(from int, ids []int32, fromIsSource bool) []partialRef {
	out := make([]partialRef, len(ids))
	for k, j := range ids {
		p := core.Pair{A: from, B: int(j)}
		if !fromIsSource {
			p = core.Pair{A: int(j), B: from}
		}
		out[k] = partialRef{Obs: int(j), URI: s.inc.S.Obs[j].URI.Value, Degree: s.inc.Res.PartialDegree[p]}
	}
	return out
}

// state names the server's lifecycle phase for the health endpoints:
// "loading" until the state is adopted, "degraded" while in read-only
// mode (WAL failure), "stale" on a follower whose replication lag
// exceeded its staleness bound, "ready" otherwise.
func (s *Server) state() string {
	switch {
	case !s.ready.Load():
		return "loading"
	case s.Degraded():
		return "degraded"
	case s.follower != nil && s.follower.Stale():
		return "stale"
	default:
		return "ready"
	}
}

// replicationFields describes the follower's replication posture for
// /readyz and /v1/stats.
func (s *Server) replicationFields() map[string]any {
	f := s.follower
	stale := f.Staleness()
	fields := map[string]any{
		"role":             "follower",
		"leader":           f.Leader,
		"connected":        f.Connected(),
		"walOffset":        f.Offset(),
		"lagRecords":       f.LagRecords(),
		"stalenessSeconds": stale.Seconds(),
		"bootstraps":       f.Bootstraps(),
	}
	if f.MaxStaleness > 0 {
		fields["maxStalenessSeconds"] = f.MaxStaleness.Seconds()
	}
	return fields
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Liveness: the process is up. The state field lets an operator see
	// the phase without a second probe.
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "state": s.state()})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	st := s.state()
	if s.follower != nil {
		// A follower's readiness carries its replication posture: load
		// balancers route on the status code, operators read the lag.
		resp := s.replicationFields()
		resp["status"] = st
		switch st {
		case "loading":
			writeJSON(w, http.StatusServiceUnavailable, resp)
		case "stale":
			// Out of the read rotation: answers would exceed the staleness
			// contract. The replica keeps serving /v1 reads for clients that
			// accept stale data; only readiness flips.
			resp["detail"] = "replication lag exceeds -max-staleness"
			writeJSON(w, http.StatusServiceUnavailable, resp)
		default:
			writeJSON(w, http.StatusOK, resp)
		}
		return
	}
	switch st {
	case "loading":
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": st, "error": "state not loaded"})
	case "degraded":
		// Reads still work, so the server stays in rotation — but the
		// status tells operators writes are being refused with 503.
		writeJSON(w, http.StatusOK, map[string]string{"status": st, "detail": "read-only: write-ahead log failed"})
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": st})
	}
}

func (s *Server) handleContains(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.ctxAbort(w, r) {
		return
	}
	i, err := s.resolveObs(r)
	if err != nil {
		s.error(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"obs":         i,
		"uri":         s.inc.S.Obs[i].URI.Value,
		"contains":    s.refs(s.adj.contains[i]),
		"containedBy": s.refs(s.adj.containedBy[i]),
	})
}

func (s *Server) handleComplements(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.ctxAbort(w, r) {
		return
	}
	i, err := s.resolveObs(r)
	if err != nil {
		s.error(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"obs":         i,
		"uri":         s.inc.S.Obs[i].URI.Value,
		"complements": s.refs(s.adj.complements[i]),
	})
}

func (s *Server) handleRelated(w http.ResponseWriter, r *http.Request) {
	tr := traceFrom(r.Context())
	endLock := tr.span("lock.rwait")
	s.mu.RLock()
	endLock()
	defer s.mu.RUnlock()
	if s.ctxAbort(w, r) {
		return
	}
	endResolve := tr.span("resolve")
	i, err := s.resolveObs(r)
	endResolve()
	if err != nil {
		s.error(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	// The fan-out materializes five neighbor lists; check the context
	// between them so a hung-up client stops the work mid-way. Each batch
	// gets its own span so a slow /v1/related trace names the list that
	// ate the budget.
	resp := map[string]any{
		"obs": i,
		"uri": s.inc.S.Obs[i].URI.Value,
	}
	endFull := tr.span("fanout.full")
	resp["contains"] = s.refs(s.adj.contains[i])
	resp["containedBy"] = s.refs(s.adj.containedBy[i])
	endFull()
	if s.ctxAbort(w, r) {
		return
	}
	endPartial := tr.span("fanout.partial")
	resp["partiallyContains"] = s.partialRefs(i, s.adj.partials[i], true)
	resp["partiallyContainedBy"] = s.partialRefs(i, s.adj.partialBy[i], false)
	endPartial()
	if s.ctxAbort(w, r) {
		return
	}
	endCompl := tr.span("fanout.complements")
	resp["complements"] = s.refs(s.adj.complements[i])
	endCompl()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleObs(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	i, err := strconv.Atoi(r.PathValue("i"))
	if err != nil || i < 0 || i >= s.inc.S.N() {
		s.error(w, r, http.StatusNotFound, "no observation %q", r.PathValue("i"))
		return
	}
	o := s.inc.S.Obs[i]
	dims := map[string]string{}
	for k, d := range o.Dataset.Schema.Dimensions {
		dims[d.Value] = o.DimValues[k].Value
	}
	measures := map[string]string{}
	for k, m := range o.Dataset.Schema.Measures {
		measures[m.Value] = o.MeasureValues[k].Value
	}
	sig := s.inc.S.Signature(i)
	levels := make([]int, len(sig))
	for k, l := range sig {
		levels[k] = int(l)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"obs":        i,
		"uri":        o.URI.Value,
		"dataset":    o.Dataset.URI.Value,
		"dimensions": dims,
		"measures":   measures,
		"signature":  levels,
	})
}

// insertRequest is the POST /v1/observations body. Dimension values are
// code IRIs keyed by dimension IRI; omitted dimensions default to the
// code-list root (the paper's c_root convention). Measure values are
// lexical forms keyed by measure IRI.
type insertRequest struct {
	Dataset    string            `json:"dataset"`
	URI        string            `json:"uri"`
	Dimensions map[string]string `json:"dimensions"`
	Measures   map[string]string `json:"measures"`
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	if s.follower != nil {
		s.rejectWrite(w, r)
		return
	}
	if s.Degraded() {
		s.error(w, r, http.StatusServiceUnavailable, "degraded read-only mode: write-ahead log failed; inserts refused")
		return
	}
	var req insertRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxInsertBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.error(w, r, http.StatusBadRequest, "bad insert body: %v", err)
		return
	}
	if req.URI == "" {
		s.error(w, r, http.StatusBadRequest, "missing observation uri")
		return
	}

	tr := traceFrom(r.Context())
	endLock := tr.span("lock.wait")
	s.mu.Lock()
	endLock()
	defer s.mu.Unlock()

	// The write-lock wait can be long; if the client hung up during it,
	// stop before anything durable happens — an abandoned insert must
	// never reach the WAL, or replay would resurrect a write the client
	// never saw acknowledged.
	if s.ctxAbort(w, r) {
		return
	}
	// Re-check under the lock: another insert may have degraded us while
	// we waited.
	if s.Degraded() {
		s.error(w, r, http.StatusServiceUnavailable, "degraded read-only mode: write-ahead log failed; inserts refused")
		return
	}

	di, ok := s.dsIdx[req.Dataset]
	if !ok {
		s.error(w, r, http.StatusBadRequest, "unknown dataset %q", req.Dataset)
		return
	}
	ds := s.inc.S.Corpus.Datasets[di]
	if _, dup := s.uriIdx[req.URI]; dup {
		s.error(w, r, http.StatusConflict, "observation %q already exists", req.URI)
		return
	}

	o := &qb.Observation{
		URI:           rdf.NewIRI(req.URI),
		Dataset:       ds,
		DimValues:     make([]rdf.Term, len(ds.Schema.Dimensions)),
		MeasureValues: make([]rdf.Term, len(ds.Schema.Measures)),
	}
	unknown := func(kind, key string) {
		s.error(w, r, http.StatusBadRequest, "%s %q is not in the schema of %s", kind, key, req.Dataset)
	}
	for key, val := range req.Dimensions {
		k := ds.Schema.DimIndex(rdf.NewIRI(key))
		if k < 0 {
			unknown("dimension", key)
			return
		}
		o.DimValues[k] = rdf.NewIRI(val)
	}
	for key, val := range req.Measures {
		k := ds.Schema.MeasureIndex(rdf.NewIRI(key))
		if k < 0 {
			unknown("measure", key)
			return
		}
		o.MeasureValues[k] = measureLiteral(val)
	}

	// Validate BEFORE the durable log append, so every record that
	// reaches the WAL is guaranteed to apply on replay.
	endValidate := tr.span("validate")
	err := s.inc.S.ValidateObservation(o)
	endValidate()
	if err != nil {
		s.error(w, r, http.StatusBadRequest, "%v", err)
		return
	}

	// Durability point: the record hits the fsynced log before the client
	// sees 201. An append failure flips the server read-only — better to
	// refuse writes than to acknowledge ones a crash would lose.
	if s.wlog != nil {
		rec := wal.Record{
			Dataset:       di,
			URI:           o.URI,
			DimValues:     o.DimValues,
			MeasureValues: o.MeasureValues,
		}
		endWAL := tr.span("wal.append")
		walStart := time.Now()
		err := s.wlog.Append(rec)
		s.observe(HistWALAppend, time.Since(walStart).Microseconds())
		endWAL()
		if err != nil {
			s.markDegraded(fmt.Sprintf("wal append for %s: %v", req.URI, err))
			s.error(w, r, http.StatusServiceUnavailable, "durable log append failed; entering read-only mode")
			return
		}
		s.count(CtrWALAppends, 1)
		s.walSeq++
		s.notifyAppend()
	}

	f0 := len(s.inc.Res.FullSet)
	p0 := len(s.inc.Res.PartialSet)
	c0 := len(s.inc.Res.ComplSet)
	// Route the incremental kernel's counters (candidate sizes, emits)
	// into the request's span tree as well as the global recorder. Safe
	// only because the write lock excludes every other kernel user; the
	// deferred restore runs before the lock is released.
	if tr != nil {
		old := s.inc.S.Recorder()
		s.inc.S.SetRecorder(obsv.Multi(old, tr.tc))
		defer s.inc.S.SetRecorder(old)
	}
	endApply := tr.span("apply")
	err = s.applyInsertLocked(di, o)
	endApply()
	if err != nil {
		// Unreachable after ValidateObservation; if it ever fires the
		// record is already durable, so surface it loudly rather than
		// pretend the insert never happened.
		s.log("insert %s: validated observation failed to apply: %v", req.URI, err)
		s.error(w, r, http.StatusInternalServerError, "%v", err)
		return
	}
	idx := s.uriIdx[req.URI]
	s.inserts.Add(1)
	s.count(CtrInserts, 1)

	writeJSON(w, http.StatusCreated, map[string]any{
		"obs":        idx,
		"uri":        req.URI,
		"newFull":    len(s.inc.Res.FullSet) - f0,
		"newPartial": len(s.inc.Res.PartialSet) - p0,
		"newCompl":   len(s.inc.Res.ComplSet) - c0,
	})
}

// measureLiteral interprets a lexical measure value: integers and
// decimals get their XSD datatype, anything else stays a plain literal.
func measureLiteral(v string) rdf.Term {
	if _, err := strconv.ParseInt(v, 10, 64); err == nil {
		return rdf.NewTypedLiteral(v, rdf.XSDInteger)
	}
	if _, err := strconv.ParseFloat(v, 64); err == nil {
		return rdf.NewTypedLiteral(v, rdf.XSDDecimal)
	}
	return rdf.NewLiteral(v)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, p, c := s.inc.Res.Counts()
	resp := map[string]any{
		"observations":  s.inc.S.N(),
		"dimensions":    s.inc.S.NumDims(),
		"datasets":      len(s.inc.S.Corpus.Datasets),
		"cubes":         s.inc.Lattice().Len(),
		"full":          f,
		"partial":       p,
		"complementary": c,
		"inserts":       s.inserts.Load(),
		"replayed":      s.replayed.Load(),
		"degraded":      s.Degraded(),
		"uptimeSeconds": time.Since(s.started).Seconds(),
	}
	if s.wlog != nil {
		// The replication position triple: followers negotiate a bootstrap
		// from the WAL size + stream + logical window, operators read lag
		// off walEnd vs a follower's walOffset.
		resp["walBytes"] = s.wlog.Size()
		resp["walStream"] = s.streamID
		resp["walStart"] = s.walBase
		resp["walEnd"] = s.walEndLocked()
		resp["walSeq"] = s.walSeq
	}
	if s.snapGen != nil {
		resp["snapshotGeneration"] = s.snapGen()
	}
	if s.follower != nil {
		resp["replication"] = s.replicationFields()
	} else {
		resp["role"] = "primary"
	}
	// Latency distribution, when the recorder keeps histograms. The old
	// serve.latency.us sum counter and .last.us gauge stay in /metrics for
	// compatibility; this is the quantile view (values in µs).
	if h, ok := s.rec.(interface {
		HistSnapshot(string) (*obsv.HistSnapshot, bool)
	}); ok {
		if snap, found := h.HistSnapshot(HistLatency); found {
			resp["latency"] = snap.Summary()
		}
	}
	state, fails := s.breaker.Snapshot()
	resp["recomputeBreaker"] = state
	resp["recomputeFailures"] = fails
	writeJSON(w, http.StatusOK, resp)
}
