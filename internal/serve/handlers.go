package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"rdfcube/internal/core"
	"rdfcube/internal/qb"
	"rdfcube/internal/rdf"
)

// maxInsertBody bounds a POST /v1/observations body.
const maxInsertBody = 1 << 20

// obsRef is one neighbor in a fan-out response.
type obsRef struct {
	Obs int    `json:"obs"`
	URI string `json:"uri"`
}

// partialRef is a neighbor with its OCM containment degree.
type partialRef struct {
	Obs    int     `json:"obs"`
	URI    string  `json:"uri"`
	Degree float64 `json:"degree"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// resolveObs resolves the ?obs= parameter (index or full URI) to an
// observation index. Callers must hold at least the read lock.
func (s *Server) resolveObs(r *http.Request) (int, error) {
	q := r.URL.Query().Get("obs")
	if q == "" {
		return 0, fmt.Errorf("missing ?obs= parameter (observation index or URI)")
	}
	if i, err := strconv.Atoi(q); err == nil {
		if i < 0 || i >= s.inc.S.N() {
			return 0, fmt.Errorf("observation index %d out of range [0, %d)", i, s.inc.S.N())
		}
		return i, nil
	}
	if i, ok := s.uriIdx[q]; ok {
		return i, nil
	}
	return 0, fmt.Errorf("unknown observation %q", q)
}

func (s *Server) refs(ids []int32) []obsRef {
	out := make([]obsRef, len(ids))
	for k, j := range ids {
		out[k] = obsRef{Obs: int(j), URI: s.inc.S.Obs[j].URI.Value}
	}
	return out
}

// partialRefs resolves partial-containment neighbors with their degrees
// for the ordered direction (a contains b ⇒ degree of Pair{a,b}).
func (s *Server) partialRefs(from int, ids []int32, fromIsSource bool) []partialRef {
	out := make([]partialRef, len(ids))
	for k, j := range ids {
		p := core.Pair{A: from, B: int(j)}
		if !fromIsSource {
			p = core.Pair{A: int(j), B: from}
		}
		out[k] = partialRef{Obs: int(j), URI: s.inc.S.Obs[j].URI.Value, Degree: s.inc.Res.PartialDegree[p]}
	}
	return out
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		writeError(w, http.StatusServiceUnavailable, "state not loaded")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func (s *Server) handleContains(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	i, err := s.resolveObs(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"obs":         i,
		"uri":         s.inc.S.Obs[i].URI.Value,
		"contains":    s.refs(s.adj.contains[i]),
		"containedBy": s.refs(s.adj.containedBy[i]),
	})
}

func (s *Server) handleComplements(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	i, err := s.resolveObs(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"obs":         i,
		"uri":         s.inc.S.Obs[i].URI.Value,
		"complements": s.refs(s.adj.complements[i]),
	})
}

func (s *Server) handleRelated(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	i, err := s.resolveObs(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"obs":                  i,
		"uri":                  s.inc.S.Obs[i].URI.Value,
		"contains":             s.refs(s.adj.contains[i]),
		"containedBy":          s.refs(s.adj.containedBy[i]),
		"partiallyContains":    s.partialRefs(i, s.adj.partials[i], true),
		"partiallyContainedBy": s.partialRefs(i, s.adj.partialBy[i], false),
		"complements":          s.refs(s.adj.complements[i]),
	})
}

func (s *Server) handleObs(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	i, err := strconv.Atoi(r.PathValue("i"))
	if err != nil || i < 0 || i >= s.inc.S.N() {
		writeError(w, http.StatusNotFound, "no observation %q", r.PathValue("i"))
		return
	}
	o := s.inc.S.Obs[i]
	dims := map[string]string{}
	for k, d := range o.Dataset.Schema.Dimensions {
		dims[d.Value] = o.DimValues[k].Value
	}
	measures := map[string]string{}
	for k, m := range o.Dataset.Schema.Measures {
		measures[m.Value] = o.MeasureValues[k].Value
	}
	sig := s.inc.S.Signature(i)
	levels := make([]int, len(sig))
	for k, l := range sig {
		levels[k] = int(l)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"obs":        i,
		"uri":        o.URI.Value,
		"dataset":    o.Dataset.URI.Value,
		"dimensions": dims,
		"measures":   measures,
		"signature":  levels,
	})
}

// insertRequest is the POST /v1/observations body. Dimension values are
// code IRIs keyed by dimension IRI; omitted dimensions default to the
// code-list root (the paper's c_root convention). Measure values are
// lexical forms keyed by measure IRI.
type insertRequest struct {
	Dataset    string            `json:"dataset"`
	URI        string            `json:"uri"`
	Dimensions map[string]string `json:"dimensions"`
	Measures   map[string]string `json:"measures"`
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	var req insertRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxInsertBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad insert body: %v", err)
		return
	}
	if req.URI == "" {
		writeError(w, http.StatusBadRequest, "missing observation uri")
		return
	}

	s.mu.Lock()
	defer s.mu.Unlock()

	di, ok := s.dsIdx[req.Dataset]
	if !ok {
		writeError(w, http.StatusBadRequest, "unknown dataset %q", req.Dataset)
		return
	}
	ds := s.inc.S.Corpus.Datasets[di]
	if _, dup := s.uriIdx[req.URI]; dup {
		writeError(w, http.StatusConflict, "observation %q already exists", req.URI)
		return
	}

	o := &qb.Observation{
		URI:           rdf.NewIRI(req.URI),
		Dataset:       ds,
		DimValues:     make([]rdf.Term, len(ds.Schema.Dimensions)),
		MeasureValues: make([]rdf.Term, len(ds.Schema.Measures)),
	}
	unknown := func(kind, key string) {
		writeError(w, http.StatusBadRequest, "%s %q is not in the schema of %s", kind, key, req.Dataset)
	}
	for key, val := range req.Dimensions {
		k := ds.Schema.DimIndex(rdf.NewIRI(key))
		if k < 0 {
			unknown("dimension", key)
			return
		}
		o.DimValues[k] = rdf.NewIRI(val)
	}
	for key, val := range req.Measures {
		k := ds.Schema.MeasureIndex(rdf.NewIRI(key))
		if k < 0 {
			unknown("measure", key)
			return
		}
		o.MeasureValues[k] = measureLiteral(val)
	}

	f0 := len(s.inc.Res.FullSet)
	p0 := len(s.inc.Res.PartialSet)
	c0 := len(s.inc.Res.ComplSet)
	idx, err := s.inc.Insert(o)
	if err != nil {
		// Insert validates before mutating: the space is unchanged here.
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ds.Observations = append(ds.Observations, o)
	s.uriIdx[req.URI] = idx
	s.adj.applyDelta(s.inc.Res, idx, f0, p0, c0)
	s.inserts.Add(1)
	s.count(CtrInserts, 1)

	writeJSON(w, http.StatusCreated, map[string]any{
		"obs":        idx,
		"uri":        req.URI,
		"newFull":    len(s.inc.Res.FullSet) - f0,
		"newPartial": len(s.inc.Res.PartialSet) - p0,
		"newCompl":   len(s.inc.Res.ComplSet) - c0,
	})
}

// measureLiteral interprets a lexical measure value: integers and
// decimals get their XSD datatype, anything else stays a plain literal.
func measureLiteral(v string) rdf.Term {
	if _, err := strconv.ParseInt(v, 10, 64); err == nil {
		return rdf.NewTypedLiteral(v, rdf.XSDInteger)
	}
	if _, err := strconv.ParseFloat(v, 64); err == nil {
		return rdf.NewTypedLiteral(v, rdf.XSDDecimal)
	}
	return rdf.NewLiteral(v)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, p, c := s.inc.Res.Counts()
	writeJSON(w, http.StatusOK, map[string]any{
		"observations":  s.inc.S.N(),
		"dimensions":    s.inc.S.NumDims(),
		"datasets":      len(s.inc.S.Corpus.Datasets),
		"cubes":         s.inc.Lattice().Len(),
		"full":          f,
		"partial":       p,
		"complementary": c,
		"inserts":       s.inserts.Load(),
		"uptimeSeconds": time.Since(s.started).Seconds(),
	})
}
