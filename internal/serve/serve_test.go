package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rdfcube/internal/core"
	"rdfcube/internal/gen"
	"rdfcube/internal/obsv"
	"rdfcube/internal/snapshot"
)

// newPaperServer computes the paper example state and wraps it in a
// Server plus an httptest harness.
func newPaperServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	corpus := gen.PaperExample()
	s, err := core.NewSpace(corpus)
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	res := core.NewResult()
	l := core.CubeMasking(s, core.TaskAll, res, core.CubeMaskOptions{})
	res.Sort()
	srv, err := New(snapshot.New(s, res, l), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decoding body: %v", url, err)
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("POST %s: decoding body: %v", url, err)
	}
	return resp.StatusCode
}

// TestRelatedMatchesFreshCompute cross-checks every observation's
// /v1/related fan-out against an independent recomputation of the
// relationship sets.
func TestRelatedMatchesFreshCompute(t *testing.T) {
	srv, ts := newPaperServer(t, Config{})

	// Independent ground truth.
	s, err := core.NewSpace(gen.PaperExample())
	if err != nil {
		t.Fatal(err)
	}
	want := core.NewResult()
	if err := core.Compute(s, core.AlgorithmBaseline, core.Options{}, want); err != nil {
		t.Fatal(err)
	}
	want.Sort()

	type ref struct {
		Obs int    `json:"obs"`
		URI string `json:"uri"`
	}
	type pref struct {
		Obs    int     `json:"obs"`
		Degree float64 `json:"degree"`
	}
	for i := 0; i < srv.inc.S.N(); i++ {
		var got struct {
			Obs                  int    `json:"obs"`
			URI                  string `json:"uri"`
			Contains             []ref  `json:"contains"`
			ContainedBy          []ref  `json:"containedBy"`
			PartiallyContains    []pref `json:"partiallyContains"`
			PartiallyContainedBy []pref `json:"partiallyContainedBy"`
			Complements          []ref  `json:"complements"`
		}
		if code := getJSON(t, fmt.Sprintf("%s/v1/related?obs=%d", ts.URL, i), &got); code != http.StatusOK {
			t.Fatalf("related obs=%d: status %d", i, code)
		}
		wantContains := map[int]bool{}
		wantContainedBy := map[int]bool{}
		for _, p := range want.FullSet {
			if p.A == i {
				wantContains[p.B] = true
			}
			if p.B == i {
				wantContainedBy[p.A] = true
			}
		}
		wantCompl := map[int]bool{}
		for _, p := range want.ComplSet {
			if p.A == i {
				wantCompl[p.B] = true
			}
			if p.B == i {
				wantCompl[p.A] = true
			}
		}
		checkRefs := func(kind string, got []ref, wantSet map[int]bool) {
			if len(got) != len(wantSet) {
				t.Fatalf("obs %d %s: got %d partners, want %d", i, kind, len(got), len(wantSet))
			}
			for _, r := range got {
				if !wantSet[r.Obs] {
					t.Fatalf("obs %d %s: unexpected partner %d", i, kind, r.Obs)
				}
			}
		}
		checkRefs("contains", got.Contains, wantContains)
		checkRefs("containedBy", got.ContainedBy, wantContainedBy)
		checkRefs("complements", got.Complements, wantCompl)

		for _, pr := range got.PartiallyContains {
			p := core.Pair{A: i, B: pr.Obs}
			deg, ok := want.PartialDegree[p]
			if !ok {
				t.Fatalf("obs %d partiallyContains %d: not in fresh result", i, pr.Obs)
			}
			if deg != pr.Degree {
				t.Fatalf("obs %d partiallyContains %d: degree %v, want %v", i, pr.Obs, pr.Degree, deg)
			}
		}
		nPartial := 0
		for _, p := range want.PartialSet {
			if p.A == i {
				nPartial++
			}
		}
		if len(got.PartiallyContains) != nPartial {
			t.Fatalf("obs %d: %d partial partners, want %d", i, len(got.PartiallyContains), nPartial)
		}
	}
}

// TestResolveByURI exercises the ?obs=<full URI> spelling.
func TestResolveByURI(t *testing.T) {
	_, ts := newPaperServer(t, Config{})
	var got struct {
		Obs int    `json:"obs"`
		URI string `json:"uri"`
	}
	uri := gen.ExNS + "obs/o11"
	if code := getJSON(t, ts.URL+"/v1/contains?obs="+uri, &got); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if got.URI != uri {
		t.Fatalf("got uri %q, want %q", got.URI, uri)
	}
}

// TestInsertVisibleWithoutRestart inserts a clone of o35 into D3 and
// verifies the new observation answers queries immediately.
func TestInsertVisibleWithoutRestart(t *testing.T) {
	srv, ts := newPaperServer(t, Config{})
	n0 := srv.inc.S.N()

	var created struct {
		Obs     int    `json:"obs"`
		URI     string `json:"uri"`
		NewFull int    `json:"newFull"`
	}
	code := postJSON(t, ts.URL+"/v1/observations", map[string]any{
		"dataset": gen.ExNS + "dataset/D3",
		"uri":     gen.ExNS + "obs/o36",
		"dimensions": map[string]string{
			gen.DimRefArea.Value:   gen.GeoAustin.Value,
			gen.DimRefPeriod.Value: gen.Time2011.Value,
		},
		"measures": map[string]string{
			gen.MeasUnemployment.Value: "0.03",
		},
	}, &created)
	if code != http.StatusCreated {
		t.Fatalf("insert status %d", code)
	}
	if created.Obs != n0 {
		t.Fatalf("new observation got index %d, want %d", created.Obs, n0)
	}

	// The clone shares o35's coordinates, so it must fully contain o35 and
	// be fully contained by it (identical signature, same measure).
	var rel struct {
		Contains    []struct{ Obs int }
		ContainedBy []struct{ Obs int }
	}
	if code := getJSON(t, fmt.Sprintf("%s/v1/related?obs=%d", ts.URL, created.Obs), &rel); code != http.StatusOK {
		t.Fatalf("related status %d", code)
	}
	if len(rel.Contains) == 0 || len(rel.ContainedBy) == 0 {
		t.Fatalf("clone of o35 should have containment partners, got contains=%v containedBy=%v", rel.Contains, rel.ContainedBy)
	}

	// It resolves by URI and shows up in stats.
	var stats struct {
		Observations int   `json:"observations"`
		Inserts      int64 `json:"inserts"`
	}
	if code := getJSON(t, ts.URL+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if stats.Observations != n0+1 || stats.Inserts != 1 {
		t.Fatalf("stats after insert: %+v", stats)
	}
}

// TestInsertErrors covers the rejection paths: unknown dataset, unknown
// dimension, duplicate URI, malformed body.
func TestInsertErrors(t *testing.T) {
	_, ts := newPaperServer(t, Config{})
	var e struct {
		Error string `json:"error"`
	}

	if code := postJSON(t, ts.URL+"/v1/observations", map[string]any{
		"dataset": "http://nope/", "uri": gen.ExNS + "obs/x",
	}, &e); code != http.StatusBadRequest {
		t.Fatalf("unknown dataset: status %d", code)
	}

	if code := postJSON(t, ts.URL+"/v1/observations", map[string]any{
		"dataset":    gen.ExNS + "dataset/D3",
		"uri":        gen.ExNS + "obs/x",
		"dimensions": map[string]string{"http://nope/dim": "v"},
	}, &e); code != http.StatusBadRequest {
		t.Fatalf("unknown dimension: status %d", code)
	}

	if code := postJSON(t, ts.URL+"/v1/observations", map[string]any{
		"dataset": gen.ExNS + "dataset/D3",
		"uri":     gen.ExNS + "obs/o31", // already exists
	}, &e); code != http.StatusConflict {
		t.Fatalf("duplicate URI: status %d", code)
	}

	resp, err := http.Post(ts.URL+"/v1/observations", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d", resp.StatusCode)
	}
}

// TestQueryErrors covers the read-side rejection paths.
func TestQueryErrors(t *testing.T) {
	_, ts := newPaperServer(t, Config{})
	for _, tc := range []struct {
		url  string
		want int
	}{
		{"/v1/contains", http.StatusBadRequest},                  // missing obs
		{"/v1/contains?obs=999", http.StatusBadRequest},          // out of range
		{"/v1/contains?obs=http://nope/", http.StatusBadRequest}, /* unknown URI */
		{"/v1/obs/999", http.StatusNotFound},
		{"/v1/obs/abc", http.StatusNotFound},
	} {
		resp, err := http.Get(ts.URL + tc.url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("GET %s: status %d, want %d", tc.url, resp.StatusCode, tc.want)
		}
	}
}

// TestHealthAndObs checks the liveness endpoints and the observation
// detail view.
func TestHealthAndObs(t *testing.T) {
	_, ts := newPaperServer(t, Config{})
	var m map[string]any
	if code := getJSON(t, ts.URL+"/healthz", &m); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	if code := getJSON(t, ts.URL+"/readyz", &m); code != http.StatusOK {
		t.Fatalf("readyz status %d", code)
	}
	var obs struct {
		URI        string            `json:"uri"`
		Dataset    string            `json:"dataset"`
		Dimensions map[string]string `json:"dimensions"`
		Signature  []int             `json:"signature"`
	}
	if code := getJSON(t, ts.URL+"/v1/obs/0", &obs); code != http.StatusOK {
		t.Fatalf("obs status %d", code)
	}
	if obs.URI == "" || obs.Dataset == "" || len(obs.Dimensions) == 0 || len(obs.Signature) == 0 {
		t.Fatalf("obs detail incomplete: %+v", obs)
	}
}

// TestShedding fills the semaphore by hand and checks the 429 path.
func TestShedding(t *testing.T) {
	srv, ts := newPaperServer(t, Config{MaxInFlight: 1})
	srv.sem <- struct{}{} // occupy the only slot
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	<-srv.sem
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after draining: status %d", resp.StatusCode)
	}
}

// TestRecorderCounters verifies the serve.* metric stream reaches the
// shared collector.
func TestRecorderCounters(t *testing.T) {
	col := obsv.NewCollector()
	_, ts := newPaperServer(t, Config{Recorder: col})
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	counters := col.Snapshot()
	if counters[CtrRequests] < 3 {
		t.Fatalf("requests counter %d, want >= 3", counters[CtrRequests])
	}
	if counters[CtrRequests+".stats"] != 3 {
		t.Fatalf("stats route counter %d, want 3", counters[CtrRequests+".stats"])
	}
}

// TestConcurrentReadsAndInserts interleaves live inserts with query
// traffic; run with -race this pins the single-writer/many-readers
// locking contract.
func TestConcurrentReadsAndInserts(t *testing.T) {
	_, ts := newPaperServer(t, Config{MaxInFlight: 256})
	const readers, writes = 8, 20

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			client := &http.Client{Timeout: 5 * time.Second}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				url := fmt.Sprintf("%s/v1/related?obs=%d", ts.URL, i%5)
				if i%3 == 0 {
					url = ts.URL + "/v1/stats"
				}
				resp, err := client.Get(url)
				if err != nil {
					return // server shutting down
				}
				resp.Body.Close()
			}
		}(r)
	}

	for i := 0; i < writes; i++ {
		var created map[string]any
		code := postJSON(t, ts.URL+"/v1/observations", map[string]any{
			"dataset": gen.ExNS + "dataset/D3",
			"uri":     fmt.Sprintf("%sobs/live%d", gen.ExNS, i),
			"dimensions": map[string]string{
				gen.DimRefArea.Value:   gen.GeoAthens.Value,
				gen.DimRefPeriod.Value: gen.TimeJan.Value,
			},
			"measures": map[string]string{gen.MeasUnemployment.Value: "0.11"},
		}, &created)
		if code != http.StatusCreated {
			t.Fatalf("insert %d: status %d (%v)", i, code, created)
		}
	}
	close(stop)
	wg.Wait()

	var stats struct {
		Observations int `json:"observations"`
		Inserts      int `json:"inserts"`
	}
	if code := getJSON(t, ts.URL+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if stats.Inserts != writes {
		t.Fatalf("inserts %d, want %d", stats.Inserts, writes)
	}
}

// TestCheckpointRoundTrip snapshots a live server (after an insert) and
// verifies the bytes decode back to the same state.
func TestCheckpointRoundTrip(t *testing.T) {
	srv, ts := newPaperServer(t, Config{})
	var created map[string]any
	if code := postJSON(t, ts.URL+"/v1/observations", map[string]any{
		"dataset":    gen.ExNS + "dataset/D2",
		"uri":        gen.ExNS + "obs/o23",
		"dimensions": map[string]string{gen.DimRefArea.Value: gen.GeoGreece.Value, gen.DimRefPeriod.Value: gen.Time2001.Value},
		"measures":   map[string]string{gen.MeasUnemployment.Value: "0.18", gen.MeasPoverty.Value: "0.12"},
	}, &created); code != http.StatusCreated {
		t.Fatalf("insert status %d: %v", code, created)
	}

	path := t.TempDir() + "/live.snap"
	if err := srv.Checkpoint(path); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	sn, err := snapshot.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if sn.Space.N() != srv.inc.S.N() {
		t.Fatalf("reloaded %d observations, want %d", sn.Space.N(), srv.inc.S.N())
	}
	if len(sn.Result.FullSet) != len(srv.inc.Res.FullSet) ||
		len(sn.Result.PartialSet) != len(srv.inc.Res.PartialSet) ||
		len(sn.Result.ComplSet) != len(srv.inc.Res.ComplSet) {
		t.Fatal("reloaded result sets differ in size")
	}
	// The reloaded state must serve the inserted observation by URI.
	srv2, err := New(sn, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	var got struct {
		URI string `json:"uri"`
	}
	if code := getJSON(t, ts2.URL+"/v1/contains?obs="+gen.ExNS+"obs/o23", &got); code != http.StatusOK {
		t.Fatalf("reloaded server: status %d", code)
	}
}
