// Package serve exposes a computed relationship state as an HTTP/JSON
// query service — the shape the ROADMAP's production north star needs:
// pay the batch cubeMasking pass once (or load its snapshot), keep the
// sets in memory behind a single-writer/many-readers lock, answer
// per-observation queries from inverted adjacency lists, and route live
// inserts through core.Incremental so new observations are queryable
// without a restart.
//
// Endpoints (all JSON):
//
//	GET  /v1/contains?obs=…     full containment fan-out of one observation
//	GET  /v1/complements?obs=…  complementarity partners
//	GET  /v1/related?obs=…      everything: full both ways, partial both
//	                            ways (with degrees), complements
//	GET  /v1/obs/{i}            observation detail (URI, values, signature)
//	POST /v1/observations       live insert via core.Incremental
//	GET  /v1/stats              corpus, relationship and service counters
//	GET  /healthz               liveness (always 200 once the process is up)
//	GET  /readyz                readiness (503 until the state is loaded)
//
// The ?obs= parameter accepts either an observation index or a full
// observation URI.
//
// Operational behavior: every request runs under a request-scoped timeout
// (Config.RequestTimeout); a semaphore bounds in-flight requests and
// sheds the excess with 429 (Config.MaxInFlight); every handler reports
// request counters and latency through the same obsv.Recorder the
// algorithms use, so the PR-1 /metrics exposition shows serving and
// computation side by side.
package serve

import (
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"rdfcube/internal/core"
	"rdfcube/internal/obsv"
	"rdfcube/internal/snapshot"
)

// Metric names reported through the Recorder.
const (
	CtrRequests     = "serve.requests"        // total requests admitted
	CtrShed         = "serve.shed"            // requests shed with 429
	CtrErrors       = "serve.errors"          // 4xx/5xx responses
	CtrInserts      = "serve.inserts"         // observations inserted
	CtrLatencyMicro = "serve.latency.us"      // summed handler latency (µs)
	GaugeInFlight   = "serve.inflight"        // requests currently executing
	GaugeLastMicro  = "serve.latency.last.us" // last handler latency (µs)
)

// Config tunes a Server. The zero value is serviceable.
type Config struct {
	// Tasks selects the relationship types maintained on insert; zero
	// means all three.
	Tasks core.Tasks
	// Recorder receives request counters, latency gauges and the insert
	// counters core.Incremental reports. Nil disables instrumentation.
	Recorder obsv.Recorder
	// RequestTimeout bounds one request's handling; zero means 5s.
	RequestTimeout time.Duration
	// MaxInFlight bounds concurrently executing requests; beyond it
	// requests are shed with 429. Zero means 128.
	MaxInFlight int
}

func (c Config) timeout() time.Duration {
	if c.RequestTimeout <= 0 {
		return 5 * time.Second
	}
	return c.RequestTimeout
}

func (c Config) maxInFlight() int {
	if c.MaxInFlight <= 0 {
		return 128
	}
	return c.MaxInFlight
}

// Server answers relationship queries over one snapshot's state and
// accepts live inserts. One writer (POST /v1/observations, checkpoints)
// excludes the many readers via an RWMutex; read handlers touch only
// state guarded by it.
type Server struct {
	mu  sync.RWMutex
	inc *core.Incremental
	adj *adjacency
	// uriIdx resolves a full observation URI to its index; maintained
	// under mu alongside the space.
	uriIdx map[string]int
	// dsIdx resolves a dataset URI to its corpus position.
	dsIdx map[string]int

	rec     obsv.Recorder
	timeout time.Duration
	sem     chan struct{}

	ready   atomic.Bool
	inserts atomic.Int64
	started time.Time
}

// New builds a server over the snapshot's state. The snapshot's space,
// result and lattice are adopted (not copied): the server becomes their
// owner and mutates them on insert.
func New(sn *snapshot.Snapshot, cfg Config) (*Server, error) {
	inc := core.NewIncrementalFrom(sn.Space, cfg.Tasks, sn.Result, sn.Lattice)
	if cfg.Recorder != nil {
		sn.Space.SetRecorder(cfg.Recorder)
	}
	s := &Server{
		inc:     inc,
		adj:     newAdjacency(sn.Space.N(), sn.Result),
		uriIdx:  make(map[string]int, sn.Space.N()),
		dsIdx:   make(map[string]int, len(sn.Space.Corpus.Datasets)),
		rec:     cfg.Recorder,
		timeout: cfg.timeout(),
		sem:     make(chan struct{}, cfg.maxInFlight()),
		started: time.Now(),
	}
	for i, o := range sn.Space.Obs {
		if _, dup := s.uriIdx[o.URI.Value]; !dup {
			s.uriIdx[o.URI.Value] = i
		}
	}
	for i, ds := range sn.Space.Corpus.Datasets {
		s.dsIdx[ds.URI.Value] = i
	}
	s.ready.Store(true)
	return s, nil
}

// Incremental exposes the maintained state (for the daemon's checkpoint
// and for tests). Callers must not mutate it concurrently with requests.
func (s *Server) Incremental() *core.Incremental { return s.inc }

// EncodeSnapshot captures a consistent snapshot of the current state as
// encoded bytes. It takes the write lock (the lattice's lazily sorted
// cube order makes even encoding a logical write) but performs no I/O, so
// the pause is bounded by encoding speed, not disk speed.
func (s *Server) EncodeSnapshot() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return snapshot.New(s.inc.S, s.inc.Res, s.inc.Lattice()).Encode()
}

// Checkpoint atomically persists the current state to path: encode under
// the lock, write outside it.
func (s *Server) Checkpoint(path string) error {
	data, err := s.EncodeSnapshot()
	if err != nil {
		return err
	}
	return snapshot.WriteFileBytes(path, data)
}

// Handler returns the service's HTTP handler: the /v1 API plus health
// endpoints, instrumented, concurrency-limited and timeout-bounded.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /healthz", s.wrap("healthz", s.handleHealthz))
	mux.Handle("GET /readyz", s.wrap("readyz", s.handleReadyz))
	mux.Handle("GET /v1/contains", s.wrap("contains", s.handleContains))
	mux.Handle("GET /v1/complements", s.wrap("complements", s.handleComplements))
	mux.Handle("GET /v1/related", s.wrap("related", s.handleRelated))
	mux.Handle("GET /v1/obs/{i}", s.wrap("obs", s.handleObs))
	mux.Handle("POST /v1/observations", s.wrap("insert", s.handleInsert))
	mux.Handle("GET /v1/stats", s.wrap("stats", s.handleStats))
	return http.TimeoutHandler(mux, s.timeout, `{"error":"request timed out"}`)
}

// wrap applies the semaphore, instrumentation and error counting to one
// route's handler.
func (s *Server) wrap(route string, h func(http.ResponseWriter, *http.Request)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
		default:
			s.count(CtrShed, 1)
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"too many in-flight requests"}`, http.StatusTooManyRequests)
			return
		}
		defer func() { <-s.sem }()
		s.count(CtrRequests, 1)
		s.count(CtrRequests+"."+route, 1)
		s.gauge(GaugeInFlight, float64(len(s.sem)))
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		us := time.Since(start).Microseconds()
		s.count(CtrLatencyMicro, us)
		s.gauge(GaugeLastMicro, float64(us))
		if sw.status >= 400 {
			s.count(CtrErrors, 1)
		}
	})
}

// statusWriter remembers the response status for error accounting.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (s *Server) count(name string, delta int64) {
	if s.rec != nil {
		s.rec.Count(name, delta)
	}
}

func (s *Server) gauge(name string, v float64) {
	if s.rec != nil {
		s.rec.Gauge(name, v)
	}
}

// Start listens on addr (port 0 for an ephemeral port) and serves the
// handler until the returned http.Server is shut down. It returns the
// bound address.
func Start(addr string, s *Server) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: s.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}
