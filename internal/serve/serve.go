// Package serve exposes a computed relationship state as an HTTP/JSON
// query service — the shape the ROADMAP's production north star needs:
// pay the batch cubeMasking pass once (or load its snapshot), keep the
// sets in memory behind a single-writer/many-readers lock, answer
// per-observation queries from inverted adjacency lists, and route live
// inserts through core.Incremental so new observations are queryable
// without a restart.
//
// Endpoints (all JSON):
//
//	GET  /v1/contains?obs=…     full containment fan-out of one observation
//	GET  /v1/complements?obs=…  complementarity partners
//	GET  /v1/related?obs=…      everything: full both ways, partial both
//	                            ways (with degrees), complements
//	GET  /v1/obs/{i}            observation detail (URI, values, signature)
//	POST /v1/observations       live insert via core.Incremental
//	GET  /v1/stats              corpus, relationship and service counters
//	GET  /healthz               liveness (always 200 once the process is up)
//	GET  /readyz                readiness: 503 while loading, 200 with
//	                            status "ready" or "degraded" (read-only)
//
// The ?obs= parameter accepts either an observation index or a full
// observation URI.
//
// Operational behavior: every request runs under a request-scoped timeout
// (Config.RequestTimeout); a semaphore bounds in-flight requests and
// sheds the excess with 429 (Config.MaxInFlight); a panic in any handler
// is recovered, logged with its stack and answered with 500; handlers
// observe the request context, so abandoned requests stop early with 499
// (client hung up) or 504 (deadline); every handler reports request
// counters and latency through the same obsv.Recorder the algorithms
// use, so the PR-1 /metrics exposition shows serving and computation
// side by side.
//
// Durability: with Config.WAL set, every accepted insert is appended —
// and fsynced — to the write-ahead log before the 201 acknowledgment,
// so a crash never loses an acknowledged write. At startup the daemon
// replays the WAL suffix through Replay (idempotent: records whose URI
// already exists are skipped). CheckpointWith serializes snapshot
// checkpoints and truncates the WAL only after the checkpoint commit
// succeeds. When the log itself fails, the server degrades to read-only:
// queries keep working, inserts return 503, /readyz reports "degraded".
package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"rdfcube/internal/core"
	"rdfcube/internal/obsv"
	"rdfcube/internal/qb"
	"rdfcube/internal/rdf"
	"rdfcube/internal/snapshot"
	"rdfcube/internal/wal"
)

// Metric names reported through the Recorder.
const (
	CtrRequests     = "serve.requests"        // total requests admitted
	CtrShed         = "serve.shed"            // requests shed with 429
	CtrErrors       = "serve.errors"          // 4xx/5xx responses
	CtrInserts      = "serve.inserts"         // observations inserted
	CtrPanics       = "serve.panics"          // handler panics recovered
	CtrCanceled     = "serve.canceled"        // requests abandoned (499/504)
	CtrWALAppends   = "serve.wal.appends"     // records durably logged
	CtrWALReplayed  = "serve.wal.replayed"    // records replayed at startup
	CtrRetryAfter   = "serve.retry_after"     // responses that told the client when to retry
	CtrRecomputes   = "serve.recomputes"      // successful batch recomputes
	CtrBreakerOpen  = "serve.breaker.open"    // recomputes refused by the open circuit
	CtrLatencyMicro = "serve.latency.us"      // summed handler latency (µs)
	GaugeInFlight   = "serve.inflight"        // requests currently executing
	GaugeLastMicro  = "serve.latency.last.us" // last handler latency (µs)
	GaugeDegraded   = "serve.degraded"        // 1 while in read-only mode
)

// Histogram names reported through the Recorder's Observer extension
// (recorded only when the Recorder supports distributions, e.g.
// obsv.Collector). The sum counter and last-value gauge above stay for
// compatibility; the histograms are what answers "what is p99?".
const (
	// HistLatency is the all-routes handler latency distribution (µs);
	// each route additionally gets "serve.latency.<route>.us".
	HistLatency = "serve.latency.us"
	// HistWALAppend is the WAL append-to-ack latency (µs): the fsync cost
	// every durable insert pays before its 201.
	HistWALAppend = "serve.wal.append.us"
	// HistCheckpointEncode / HistCheckpointWrite split a checkpoint into
	// its encode-under-lock and commit-outside-lock halves (µs).
	HistCheckpointEncode = "serve.checkpoint.encode.us"
	HistCheckpointWrite  = "serve.checkpoint.write.us"
)

// routeHistName returns the per-route latency histogram name.
func routeHistName(route string) string { return "serve.latency." + route + ".us" }

// Config tunes a Server. The zero value is serviceable.
type Config struct {
	// Tasks selects the relationship types maintained on insert; zero
	// means all three.
	Tasks core.Tasks
	// Recorder receives request counters, latency gauges and the insert
	// counters core.Incremental reports. Nil disables instrumentation.
	Recorder obsv.Recorder
	// RequestTimeout bounds one request's handling; zero means 5s.
	RequestTimeout time.Duration
	// MaxInFlight bounds concurrently executing requests; beyond it
	// requests are shed with 429. Zero means 128.
	MaxInFlight int
	// WAL, when non-nil, receives every accepted insert — durably, via
	// fsync — BEFORE the client sees the 201 ack, so a crash never loses
	// an acknowledged write. An append failure flips the server into
	// degraded read-only mode: queries keep working, inserts return 503.
	WAL *wal.Log
	// Logf receives operational log lines (recovered panics, degraded-
	// mode transitions, replay summaries). Nil discards them.
	Logf func(format string, a ...any)
	// Algorithm selects the kernel POST /v1/recompute runs; zero means
	// cubemasking (the exact lattice-pruned method).
	Algorithm core.Algorithm
	// Workers sets the recompute kernel's worker-pool size; zero keeps
	// the serial scan.
	Workers int
	// RecomputeTimeout bounds one batch recompute; zero means 60s. The
	// recompute endpoint is exempt from RequestTimeout and bounded by
	// this instead.
	RecomputeTimeout time.Duration
	// BreakerThreshold is the number of consecutive kernel failures that
	// trip the recompute circuit breaker open; zero means 3.
	BreakerThreshold int
	// BreakerBackoff is the breaker's initial open interval (doubled per
	// failed half-open probe, capped at 16×); zero means 5s.
	BreakerBackoff time.Duration
	// TraceRing bounds the in-memory ring of recent request traces served
	// at /debug/traces; zero means 128. Every request is traced — the
	// per-request cost is one small span-tree allocation, far below the
	// JSON encoding the request pays anyway.
	TraceRing int
	// SlowThreshold gates the structured slow-query log: a request at
	// least this slow is written to SlowLog as one JSON line (trace ID,
	// route, status, span tree). Zero disables the log.
	SlowThreshold time.Duration
	// SlowLog receives the slow-query log lines. Nil disables the log
	// even with SlowThreshold set.
	SlowLog io.Writer
	// SnapshotGen, when set, reports the snapshot generation id backing
	// this server (the daemon wires it to its rotator). Followers read it
	// from /v1/stats and bootstrap responses to see what they negotiated.
	SnapshotGen func() uint64
	// Follower, when non-nil, puts the server in read-only replica mode:
	// writes (inserts, recomputes) are refused with 503 plus a Leader
	// header, and /readyz + /v1/stats report the replication lag and
	// staleness recorded on it (see internal/replica, which maintains it).
	Follower *FollowerState
	// WALPollWait is the default long-poll budget for a /v1/wal request
	// whose offset is at the durable end; zero means 10s, capped at 30s.
	WALPollWait time.Duration
	// CheckpointNow, when set, synchronously runs one full checkpoint
	// cycle through the daemon's snapshot store (typically a closure over
	// CheckpointWith and a snapshot.Rotator). POST /v1/datasets calls it
	// to make a registration durable BEFORE the dataset becomes
	// insertable: a schema change cannot ride the WAL (an unknown record
	// kind reads as a torn tail on replay), so the snapshot is the only
	// durable carrier. Required when WAL is set — a WAL-backed server
	// without it refuses registrations, because a durable insert into a
	// volatile dataset would fail replay after a crash.
	CheckpointNow func() error
	// DisableDatasetCreate turns POST /v1/datasets off (501). Operators
	// who want a frozen schema surface set this.
	DisableDatasetCreate bool
}

func (c Config) timeout() time.Duration {
	if c.RequestTimeout <= 0 {
		return 5 * time.Second
	}
	return c.RequestTimeout
}

func (c Config) maxInFlight() int {
	if c.MaxInFlight <= 0 {
		return 128
	}
	return c.MaxInFlight
}

func (c Config) algorithm() core.Algorithm {
	if c.Algorithm == "" {
		return core.AlgorithmCubeMasking
	}
	return c.Algorithm
}

func (c Config) recomputeTimeout() time.Duration {
	if c.RecomputeTimeout <= 0 {
		return 60 * time.Second
	}
	return c.RecomputeTimeout
}

func (c Config) walPollWait() time.Duration {
	if c.WALPollWait <= 0 {
		return 10 * time.Second
	}
	if c.WALPollWait > maxWALWait {
		return maxWALWait
	}
	return c.WALPollWait
}

// Server answers relationship queries over one snapshot's state and
// accepts live inserts. One writer (POST /v1/observations, checkpoints)
// excludes the many readers via an RWMutex; read handlers touch only
// state guarded by it.
type Server struct {
	mu  sync.RWMutex
	inc *core.Incremental
	adj *adjacency
	// uriIdx resolves a full observation URI to its index; maintained
	// under mu alongside the space.
	uriIdx map[string]int
	// dsIdx resolves a dataset URI to its corpus position.
	dsIdx map[string]int

	rec     obsv.Recorder
	timeout time.Duration
	sem     chan struct{}
	wlog    *wal.Log
	logf    func(format string, a ...any)

	// Request tracing: the bounded recent-trace ring behind /debug/traces
	// and the threshold-gated slow-query log.
	traces     *traceRing
	slowThresh time.Duration
	slowMu     sync.Mutex
	slowLog    io.Writer

	// Recompute machinery: the algorithm and worker count the endpoint
	// runs with, its deadline, the circuit breaker that degrades the
	// endpoint after repeated kernel failures, the one-at-a-time guard,
	// and the server-lifetime context whose cancellation (BeginShutdown)
	// stops in-flight computes.
	tasks            core.Tasks
	alg              core.Algorithm
	workers          int
	recomputeTimeout time.Duration
	breaker          *Breaker
	recomputing      atomic.Bool
	runCtx           context.Context
	stopRuns         context.CancelFunc

	// ckptMu serializes checkpoints: a SIGTERM arriving during a timer
	// checkpoint must not start a second concurrent Checkpoint on the
	// same path (and WAL truncation must pair with exactly one commit).
	ckptMu sync.Mutex

	// Dataset registration: the daemon's synchronous-checkpoint hook and
	// the mutex serializing whole register-then-checkpoint-then-publish
	// cycles (regMu is held across the checkpoint, so it must never be
	// acquired while holding mu).
	ckptNow     func() error
	regMu       sync.Mutex
	dsCreateOff bool

	// Replication (primary side): the per-incarnation stream ID, the
	// logical offset of the physical WAL start (advanced when checkpoints
	// truncate the log), the count of record frames the stream has carried,
	// and the broadcast channel appends close to wake /v1/wal long-pollers.
	// streamID and snapGen are immutable after New; walBase and walSeq are
	// guarded by mu (written under the write lock, read under either).
	streamID  string
	walBase   int64
	walSeq    int64
	notifyMu  sync.Mutex
	walNotify chan struct{}
	snapGen   func() uint64
	pollWait  time.Duration

	// follower is non-nil in read-only replica mode.
	follower *FollowerState

	ready    atomic.Bool
	degraded atomic.Bool
	inserts  atomic.Int64
	replayed atomic.Int64
	started  time.Time
}

// New builds a server over the snapshot's state. The snapshot's space,
// result and lattice are adopted (not copied): the server becomes their
// owner and mutates them on insert.
func New(sn *snapshot.Snapshot, cfg Config) (*Server, error) {
	inc := core.NewIncrementalFrom(sn.Space, cfg.Tasks, sn.Result, sn.Lattice)
	if cfg.Recorder != nil {
		sn.Space.SetRecorder(cfg.Recorder)
	}
	s := &Server{
		inc:     inc,
		adj:     newAdjacency(sn.Space.N(), sn.Result),
		uriIdx:  make(map[string]int, sn.Space.N()),
		dsIdx:   make(map[string]int, len(sn.Space.Corpus.Datasets)),
		rec:     cfg.Recorder,
		timeout: cfg.timeout(),
		sem:     make(chan struct{}, cfg.maxInFlight()),
		wlog:    cfg.WAL,
		logf:    cfg.Logf,
		started: time.Now(),

		traces:     newTraceRing(cfg.TraceRing),
		slowThresh: cfg.SlowThreshold,
		slowLog:    cfg.SlowLog,

		tasks:            cfg.Tasks,
		alg:              cfg.algorithm(),
		workers:          cfg.Workers,
		recomputeTimeout: cfg.recomputeTimeout(),
		breaker:          NewBreaker(cfg.BreakerThreshold, cfg.BreakerBackoff),

		streamID:  newStreamID(),
		walNotify: make(chan struct{}),
		snapGen:   cfg.SnapshotGen,
		pollWait:  cfg.walPollWait(),
		follower:  cfg.Follower,

		ckptNow:     cfg.CheckpointNow,
		dsCreateOff: cfg.DisableDatasetCreate,
	}
	s.runCtx, s.stopRuns = context.WithCancel(context.Background())
	for i, o := range sn.Space.Obs {
		if _, dup := s.uriIdx[o.URI.Value]; !dup {
			s.uriIdx[o.URI.Value] = i
		}
	}
	for i, ds := range sn.Space.Corpus.Datasets {
		s.dsIdx[ds.URI.Value] = i
	}
	s.ready.Store(true)
	return s, nil
}

// Incremental exposes the maintained state (for the daemon's checkpoint
// and for tests). Callers must not mutate it concurrently with requests.
func (s *Server) Incremental() *core.Incremental { return s.inc }

// WAL exposes the configured write-ahead log (nil when durability is
// disabled).
func (s *Server) WAL() *wal.Log { return s.wlog }

// Degraded reports whether the server is in read-only mode (the write
// log failed; reads keep working, writes return 503).
func (s *Server) Degraded() bool { return s.degraded.Load() }

// markDegraded transitions into read-only mode (idempotent).
func (s *Server) markDegraded(reason string) {
	if s.degraded.CompareAndSwap(false, true) {
		s.gauge(GaugeDegraded, 1)
		s.log("entering degraded read-only mode: %s", reason)
	}
}

func (s *Server) log(format string, a ...any) {
	if s.logf != nil {
		s.logf(format, a...)
	}
}

// BeginShutdown cancels the server-lifetime run context, cooperatively
// stopping any in-flight recompute at its next pair-budget poll. Call it
// BEFORE http.Server.Shutdown: Shutdown waits for in-flight requests to
// finish, and a recompute legitimately runs for minutes — without this,
// a SIGTERM would hang behind an Θ(n²) scan. Idempotent.
func (s *Server) BeginShutdown() { s.stopRuns() }

// Replay applies WAL records recovered at startup through the same
// incremental maintenance path live inserts use. Records whose URI is
// already present are skipped — that makes replay idempotent when a
// crash landed between a committed checkpoint and the WAL truncation
// that should have followed it. It returns the number of records
// applied. A record that cannot apply (unknown dataset index, schema
// arity mismatch, validation failure) aborts with an error: the log
// disagrees with the snapshot and silently dropping acknowledged writes
// is not an option.
func (s *Server) Replay(recs []wal.Record) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	applied := 0
	for k, rec := range recs {
		if _, dup := s.uriIdx[rec.URI.Value]; dup {
			continue
		}
		if rec.Dataset < 0 || rec.Dataset >= len(s.inc.S.Corpus.Datasets) {
			return applied, fmt.Errorf("serve: wal record %d: dataset index %d out of range [0, %d)",
				k, rec.Dataset, len(s.inc.S.Corpus.Datasets))
		}
		ds := s.inc.S.Corpus.Datasets[rec.Dataset]
		if len(rec.DimValues) != len(ds.Schema.Dimensions) || len(rec.MeasureValues) != len(ds.Schema.Measures) {
			return applied, fmt.Errorf("serve: wal record %d: value arity (%d dims, %d measures) does not match schema of %s (%d, %d)",
				k, len(rec.DimValues), len(rec.MeasureValues), ds.URI.Value, len(ds.Schema.Dimensions), len(ds.Schema.Measures))
		}
		o := &qb.Observation{
			URI:           rec.URI,
			Dataset:       ds,
			DimValues:     append([]rdf.Term(nil), rec.DimValues...),
			MeasureValues: append([]rdf.Term(nil), rec.MeasureValues...),
		}
		if err := s.applyInsertLocked(rec.Dataset, o); err != nil {
			return applied, fmt.Errorf("serve: wal record %d (%s): %w", k, rec.URI.Value, err)
		}
		applied++
	}
	s.replayed.Add(int64(applied))
	s.count(CtrWALReplayed, int64(applied))
	// Every replayed frame is part of the logical WAL stream whether or not
	// it applied (dup-skips included): followers count frames, not inserts.
	s.walSeq += int64(len(recs))
	return applied, nil
}

// ApplyReplicated applies record frames a follower pulled from its
// primary: exactly Replay (idempotent, under the write lock), named
// separately so the replication path reads as what it is.
func (s *Server) ApplyReplicated(recs []wal.Record) (int, error) {
	return s.Replay(recs)
}

// applyInsertLocked inserts one validated-or-replayed observation into
// the maintained state. Callers hold the write lock.
func (s *Server) applyInsertLocked(dsIndex int, o *qb.Observation) error {
	f0 := len(s.inc.Res.FullSet)
	p0 := len(s.inc.Res.PartialSet)
	c0 := len(s.inc.Res.ComplSet)
	idx, err := s.inc.Insert(o)
	if err != nil {
		return err
	}
	s.inc.S.Corpus.Datasets[dsIndex].Observations = append(s.inc.S.Corpus.Datasets[dsIndex].Observations, o)
	s.uriIdx[o.URI.Value] = idx
	s.adj.applyDelta(s.inc.Res, idx, f0, p0, c0)
	return nil
}

// EncodeSnapshot captures a consistent snapshot of the current state as
// encoded bytes. It takes the write lock (the lattice's lazily sorted
// cube order makes even encoding a logical write) but performs no I/O, so
// the pause is bounded by encoding speed, not disk speed.
func (s *Server) EncodeSnapshot() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.encodeSnapshotLocked()
}

// encodeSnapshotLocked encodes the current state; callers hold the write
// lock (the lattice's lazily sorted cube order makes encoding a logical
// write).
func (s *Server) encodeSnapshotLocked() ([]byte, error) {
	return snapshot.New(s.inc.S, s.inc.Res, s.inc.Lattice()).Encode()
}

// CheckpointWith runs one full checkpoint cycle: encode the state under
// the lock, hand the bytes to commit (which must make them durable —
// e.g. a snapshot.Rotator's Write), and only after commit succeeds
// truncate the WAL, because every record the log held is now covered by
// the committed snapshot. ckptMu serializes whole cycles: the shutdown
// checkpoint a SIGTERM triggers can race the periodic timer checkpoint,
// and running both concurrently would interleave generation writes and
// could truncate the WAL against the wrong snapshot.
//
// The truncation is guarded against a subtler race: an insert landing
// between the encode and the commit is in the WAL but NOT in the
// committed snapshot, so truncating would silently drop an acknowledged
// write. The WAL size is therefore captured at encode time (under the
// same lock inserts append under) and the log is truncated only when it
// is still exactly that size; otherwise truncation is skipped — replay
// is idempotent, so carrying already-checkpointed records to the next
// startup costs duplicate-skips, never correctness.
func (s *Server) CheckpointWith(commit func(data []byte) error) error {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()

	s.mu.Lock()
	encStart := time.Now()
	data, err := s.encodeSnapshotLocked()
	s.observe(HistCheckpointEncode, time.Since(encStart).Microseconds())
	var mark int64 = -1
	if err == nil && s.wlog != nil {
		mark = s.wlog.Size()
	}
	s.mu.Unlock()
	if err != nil {
		return err
	}

	writeStart := time.Now()
	if err := commit(data); err != nil {
		return err
	}
	s.observe(HistCheckpointWrite, time.Since(writeStart).Microseconds())

	if s.wlog != nil {
		s.mu.Lock()
		if s.wlog.Size() == mark {
			if terr := s.wlog.Truncate(); terr != nil {
				// The snapshot is committed; a stale WAL only costs
				// idempotent replay work at next startup. Degrade writes,
				// keep serving.
				s.markDegraded(fmt.Sprintf("wal truncate after checkpoint: %v", terr))
				s.log("checkpoint committed but wal truncate failed: %v", terr)
			} else {
				// Every truncated record byte is covered by the committed
				// snapshot: the logical stream start advances so follower
				// offsets survive the truncation, and anything older answers
				// 410 (the follower re-bootstraps from the snapshot).
				s.walBase += mark - wal.HeaderLen
			}
		} else {
			s.log("skipping wal truncation: %d bytes appended during the checkpoint (covered by the next one)",
				s.wlog.Size()-mark)
		}
		s.mu.Unlock()
	}
	return nil
}

// Checkpoint atomically persists the current state to path: encode under
// the lock, write outside it. It runs through CheckpointWith, so it is
// serialized against concurrent checkpoints and truncates the WAL after
// the commit.
func (s *Server) Checkpoint(path string) error {
	return s.CheckpointWith(func(data []byte) error {
		return snapshot.WriteFileBytes(path, data)
	})
}

// ErrCheckpointTimeout reports that a bounded checkpoint overran its
// deadline and was abandoned.
var ErrCheckpointTimeout = errors.New("serve: checkpoint deadline exceeded")

// CheckpointWithin is CheckpointWith bounded by a wall-clock deadline:
// when the cycle has not completed within d, it returns an error wrapping
// ErrCheckpointTimeout instead of blocking forever. The shutdown path
// needs this because commit funcs end in fsync, and fsync against a hung
// device (a dead NFS mount, a wedged controller) is uninterruptible — no
// context can unstick it. The overrunning cycle is abandoned, not
// canceled: its goroutine keeps holding ckptMu until the device revives,
// which is exactly right — a later checkpoint must not interleave with a
// half-written one. The caller (cubed's shutdown) logs the timeout and
// exits; the WAL still covers every acknowledged write, so nothing is
// lost. d <= 0 means unbounded (plain CheckpointWith).
func (s *Server) CheckpointWithin(d time.Duration, commit func(data []byte) error) error {
	if d <= 0 {
		return s.CheckpointWith(commit)
	}
	done := make(chan error, 1)
	go func() { done <- s.CheckpointWith(commit) }()
	select {
	case err := <-done:
		return err
	case <-time.After(d):
		return fmt.Errorf("%w after %v (checkpoint abandoned; wal still covers acknowledged writes)",
			ErrCheckpointTimeout, d)
	}
}

// Handler returns the service's HTTP handler: the /v1 API plus health
// endpoints, instrumented, concurrency-limited and timeout-bounded. The
// recompute route is registered on the outer mux, OUTSIDE the
// http.TimeoutHandler wrapping everything else: a batch recompute
// legitimately outlives the per-request timeout and is bounded by
// RecomputeTimeout inside its handler instead.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /healthz", s.wrap("healthz", s.handleHealthz))
	mux.Handle("GET /readyz", s.wrap("readyz", s.handleReadyz))
	mux.Handle("GET /v1/contains", s.wrap("contains", s.handleContains))
	mux.Handle("GET /v1/complements", s.wrap("complements", s.handleComplements))
	mux.Handle("GET /v1/related", s.wrap("related", s.handleRelated))
	mux.Handle("GET /v1/obs/{i}", s.wrap("obs", s.handleObs))
	mux.Handle("POST /v1/observations", s.wrap("insert", s.handleInsert))
	mux.Handle("GET /v1/stats", s.wrap("stats", s.handleStats))
	inner := http.TimeoutHandler(mux, s.timeout, `{"error":"request timed out"}`)
	outer := http.NewServeMux()
	outer.Handle("POST /v1/recompute", s.wrap("recompute", s.handleRecompute))
	// Replication endpoints live outside the TimeoutHandler: a snapshot
	// bootstrap legitimately streams for longer than one query's budget,
	// and /v1/wal long-polls at the tail by design.
	outer.Handle("GET /v1/snapshot", s.wrap("snapshot", s.handleSnapshot))
	outer.Handle("GET /v1/wal", s.wrap("waltail", s.handleWALTail))
	// Dataset registration also lives outside the TimeoutHandler: it
	// synchronously checkpoints the snapshot (its durability point),
	// which can legitimately outlast one query's budget.
	outer.Handle("POST /v1/datasets", s.wrap("datasets", s.handleCreateDataset))
	// The trace ring is served unwrapped: reading traces must not charge
	// the semaphore, appear in the ring it is reading, or be shed under
	// the very overload it is diagnosing.
	outer.HandleFunc("GET /debug/traces", s.handleTraces)
	outer.Handle("/", inner)
	return outer
}

// setRetryAfter writes a jittered integer-seconds Retry-After header
// (minimum 1s) and counts it, so clients that were refused together do
// not all come back together.
func (s *Server) setRetryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int64(Jittered(d).Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	s.count(CtrRetryAfter, 1)
}

// wrap applies the semaphore, tracing, instrumentation and error
// counting to one route's handler. Every admitted request gets a trace
// ID (the client's X-Request-Id, or a generated one), echoed on the
// response and carried on the request context so handlers, error bodies
// and the panic log can correlate; the request's span tree lands in the
// /debug/traces ring when it completes.
func (s *Server) wrap(route string, h func(http.ResponseWriter, *http.Request)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
		default:
			s.count(CtrShed, 1)
			// Jitter the retry hint over [1.5s, 3s): a shed burst must not
			// synchronize its retries into the next burst.
			s.setRetryAfter(w, 3*time.Second)
			http.Error(w, `{"error":"too many in-flight requests"}`, http.StatusTooManyRequests)
			return
		}
		defer func() { <-s.sem }()
		s.count(CtrRequests, 1)
		s.count(CtrRequests+"."+route, 1)
		s.gauge(GaugeInFlight, float64(len(s.sem)))

		tid := r.Header.Get(TraceIDHeader)
		if tid == "" || len(tid) > maxTraceIDLen {
			tid = newTraceID()
		}
		w.Header().Set(TraceIDHeader, tid)
		tr := &reqTrace{id: tid, tc: obsv.NewTraceCollector()}
		r = r.WithContext(context.WithValue(r.Context(), traceCtxKey{}, tr))

		start := time.Now()
		endSpan := tr.tc.Start(route)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		func() {
			// Panic recovery: one bad request must not take down the
			// daemon. Log the stack with the trace ID, count it, and
			// answer 500 if the handler had not yet written a response.
			defer func() {
				if rec := recover(); rec != nil {
					s.count(CtrPanics, 1)
					s.log("panic in %s handler (trace %s): %v\n%s", route, tid, rec, debug.Stack())
					if !sw.wrote {
						writeJSON(sw, http.StatusInternalServerError,
							map[string]string{"error": "internal server error", "traceId": tid})
					}
				}
			}()
			h(sw, r)
		}()
		endSpan()
		us := time.Since(start).Microseconds()
		s.count(CtrLatencyMicro, us)
		s.gauge(GaugeLastMicro, float64(us))
		s.observe(HistLatency, us)
		s.observe(routeHistName(route), us)
		if sw.status >= 400 {
			s.count(CtrErrors, 1)
		}

		trace := &Trace{
			ID:         tid,
			Route:      route,
			Method:     r.Method,
			Path:       r.URL.Path,
			Status:     sw.status,
			Start:      start,
			DurationUs: us,
			Spans:      tr.tc.Spans(),
		}
		s.traces.add(trace)
		if s.slowThresh > 0 && s.slowLog != nil && time.Duration(us)*time.Microsecond >= s.slowThresh {
			s.logSlow(trace)
		}
	})
}

// statusWriter remembers the response status for error accounting and
// whether anything was written (so panic recovery knows if a 500 can
// still be sent).
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(p)
}

func (s *Server) count(name string, delta int64) {
	if s.rec != nil {
		s.rec.Count(name, delta)
	}
}

func (s *Server) gauge(name string, v float64) {
	if s.rec != nil {
		s.rec.Gauge(name, v)
	}
}

// observe records a histogram sample when the recorder supports
// distributions (no-op otherwise).
func (s *Server) observe(name string, v int64) {
	if s.rec != nil {
		obsv.Observe(s.rec, name, v)
	}
}

// Start listens on addr (port 0 for an ephemeral port) and serves the
// handler until the returned http.Server is shut down. It returns the
// bound address.
func Start(addr string, s *Server) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: s.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}
