package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"rdfcube/internal/core"
	"rdfcube/internal/faultfs"
	"rdfcube/internal/gen"
	"rdfcube/internal/leakcheck"
	"rdfcube/internal/obsv"
	"rdfcube/internal/snapshot"
)

// newRealServer builds a server over a RealWorld corpus large enough
// that a recompute spans several guard strides — the fixture for
// deadline and cancellation tests.
func newRealServer(t *testing.T, n int, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	corpus := gen.RealWorld(gen.RealWorldConfig{TotalObs: n, Seed: 3})
	s, err := core.NewSpace(corpus)
	if err != nil {
		t.Fatal(err)
	}
	res := core.NewResult()
	l := core.CubeMasking(s, core.TaskAll, res, core.CubeMaskOptions{})
	res.Sort()
	srv, err := New(snapshot.New(s, res, l), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		http.DefaultClient.CloseIdleConnections()
	})
	return srv, ts
}

// TestBreakerStateMachine drives the circuit breaker through its full
// closed → open → half-open → closed cycle, including the doubled
// backoff of a failed probe.
func TestBreakerStateMachine(t *testing.T) {
	b := NewBreaker(2, 100*time.Millisecond)
	now := time.Now()

	if ok, _ := b.Allow(now); !ok {
		t.Fatal("closed breaker must allow")
	}
	b.Failure(now)
	if st, _ := b.Snapshot(); st != "closed" {
		t.Fatalf("one failure below threshold must keep the circuit closed, got %s", st)
	}
	if !b.Failure(now) {
		t.Fatal("the tripping failure must report the transition")
	}
	if st, _ := b.Snapshot(); st != "open" {
		t.Fatalf("want open after threshold failures, got %s", st)
	}
	if ok, wait := b.Allow(now); ok || wait <= 0 {
		t.Fatalf("open breaker must refuse with a positive retry hint, got ok=%v wait=%v", ok, wait)
	}

	// Past the backoff: exactly one half-open probe is admitted.
	later := now.Add(time.Second)
	if ok, _ := b.Allow(later); !ok {
		t.Fatal("expired open interval must admit a probe")
	}
	if ok, _ := b.Allow(later); ok {
		t.Fatal("second caller during the probe must be refused")
	}

	// Probe fails: re-open with doubled backoff.
	b.Failure(later)
	if st, _ := b.Snapshot(); st != "open" {
		t.Fatalf("failed probe must re-open, got %s", st)
	}
	if b.bo.Current() != 200*time.Millisecond {
		t.Fatalf("failed probe must double the backoff, got %v", b.bo.Current())
	}

	// Next probe succeeds: closed, streak reset.
	if ok, _ := b.Allow(later.Add(time.Second)); !ok {
		t.Fatal("second probe must be admitted")
	}
	b.Success()
	if st, fails := b.Snapshot(); st != "closed" || fails != 0 {
		t.Fatalf("successful probe must close and reset, got %s/%d", st, fails)
	}
}

// TestJitteredRange: jitter spreads over [d/2, d) so synchronized
// clients desynchronize.
func TestJitteredRange(t *testing.T) {
	d := 8 * time.Second
	for i := 0; i < 100; i++ {
		j := Jittered(d)
		if j < d/2 || j >= d {
			t.Fatalf("jittered(%v) = %v outside [%v, %v)", d, j, d/2, d)
		}
	}
}

// TestRecomputeSuccess: a recompute returns the fresh counts, swaps the
// state in, and counts serve.recomputes.
func TestRecomputeSuccess(t *testing.T) {
	leakcheck.Check(t)
	col := obsv.NewCollector()
	srv, ts := newRealServer(t, 300, Config{Recorder: col, Algorithm: core.AlgorithmCubeMasking})

	var before struct {
		Full    int `json:"full"`
		Partial int `json:"partial"`
		Compl   int `json:"complementary"`
	}
	getJSON(t, ts.URL+"/v1/stats", &before)

	var out struct {
		Algorithm string  `json:"algorithm"`
		Full      int     `json:"full"`
		Partial   int     `json:"partial"`
		Compl     int     `json:"complementary"`
		Elapsed   float64 `json:"elapsedSeconds"`
	}
	if code := postJSON(t, ts.URL+"/v1/recompute", map[string]any{}, &out); code != http.StatusOK {
		t.Fatalf("recompute: status %d", code)
	}
	if out.Algorithm != "cubemasking" {
		t.Errorf("algorithm = %q", out.Algorithm)
	}
	// A batch recompute over an unchanged space reproduces the loaded
	// state exactly (the incremental state was built by the same kernel).
	if out.Full != before.Full || out.Partial != before.Partial || out.Compl != before.Compl {
		t.Errorf("recompute changed counts: %+v vs %+v", out, before)
	}
	if col.Snapshot()[CtrRecomputes] != 1 {
		t.Errorf("serve.recomputes = %v, want 1", col.Snapshot()[CtrRecomputes])
	}
	if st, _ := srv.breaker.Snapshot(); st != "closed" {
		t.Errorf("breaker after success = %s", st)
	}
}

// TestRecomputeDeadline504TripsBreaker: chronic deadline overruns answer
// 504, keep the previous state serving, and after BreakerThreshold
// consecutive failures the circuit opens — further recomputes get an
// immediate 503 with a jittered Retry-After while queries keep working.
func TestRecomputeDeadline504TripsBreaker(t *testing.T) {
	leakcheck.Check(t)
	col := obsv.NewCollector()
	_, ts := newRealServer(t, 800, Config{
		Recorder:         col,
		Algorithm:        core.AlgorithmBaseline, // Θ(n²): reliably overruns a nanosecond budget
		RecomputeTimeout: time.Nanosecond,
		BreakerThreshold: 2,
	})

	var before struct {
		Full int `json:"full"`
	}
	getJSON(t, ts.URL+"/v1/stats", &before)

	for i := 0; i < 2; i++ {
		var out map[string]any
		if code := postJSON(t, ts.URL+"/v1/recompute", nil, &out); code != http.StatusGatewayTimeout {
			t.Fatalf("overrun %d: status %d, want 504 (%v)", i, code, out)
		}
	}

	// Circuit open: refused without running the kernel, with a retry hint.
	resp, err := http.Post(ts.URL+"/v1/recompute", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open circuit: status %d, want 503", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("open circuit: Retry-After = %q, want an integer >= 1", resp.Header.Get("Retry-After"))
	}
	snap := col.Snapshot()
	if snap[CtrBreakerOpen] == 0 {
		t.Error("serve.breaker.open not counted")
	}
	if snap[CtrRetryAfter] == 0 {
		t.Error("serve.retry_after not counted")
	}

	// Degraded but consistent: the previous state still answers queries.
	var after struct {
		Full    int    `json:"full"`
		Breaker string `json:"recomputeBreaker"`
	}
	if code := getJSON(t, ts.URL+"/v1/stats", &after); code != http.StatusOK {
		t.Fatalf("stats while open: %d", code)
	}
	if after.Full != before.Full {
		t.Errorf("failed recomputes must not change the served state: %d vs %d", after.Full, before.Full)
	}
	if after.Breaker != "open" {
		t.Errorf("stats breaker state = %q, want open", after.Breaker)
	}
}

// TestRecomputeClientGone499: a request whose client already hung up is
// answered 499 without running the kernel and without charging the
// breaker.
func TestRecomputeClientGone499(t *testing.T) {
	leakcheck.Check(t)
	srv, _ := newRealServer(t, 300, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := httptest.NewRequest(http.MethodPost, "/v1/recompute", nil).WithContext(ctx)
	w := httptest.NewRecorder()
	srv.handleRecompute(w, r)
	if w.Code != statusClientClosedRequest {
		t.Fatalf("status %d, want %d", w.Code, statusClientClosedRequest)
	}
	if st, fails := srv.breaker.Snapshot(); st != "closed" || fails != 0 {
		t.Errorf("client hang-up charged the breaker: %s/%d", st, fails)
	}
}

// TestRecomputeShutdown503: BeginShutdown cancels an in-flight recompute
// through the run context; the endpoint answers 503 and the breaker is
// not charged (shutdown is not a kernel failure).
func TestRecomputeShutdown503(t *testing.T) {
	leakcheck.Check(t)
	srv, _ := newRealServer(t, 800, Config{Algorithm: core.AlgorithmBaseline})
	srv.BeginShutdown()
	r := httptest.NewRequest(http.MethodPost, "/v1/recompute", nil)
	w := httptest.NewRecorder()
	srv.handleRecompute(w, r)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", w.Code)
	}
	if st, fails := srv.breaker.Snapshot(); st != "closed" || fails != 0 {
		t.Errorf("shutdown cancellation charged the breaker: %s/%d", st, fails)
	}
}

// TestRecomputeSingleFlight429: a second concurrent recompute is shed
// with 429 and a Retry-After hint instead of queueing behind the write
// lock.
func TestRecomputeSingleFlight429(t *testing.T) {
	leakcheck.Check(t)
	srv, _ := newRealServer(t, 300, Config{})
	srv.recomputing.Store(true)
	defer srv.recomputing.Store(false)
	r := httptest.NewRequest(http.MethodPost, "/v1/recompute", nil)
	w := httptest.NewRecorder()
	srv.handleRecompute(w, r)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", w.Code)
	}
	if ra, err := strconv.Atoi(w.Header().Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want an integer >= 1", w.Header().Get("Retry-After"))
	}
}

// TestCheckpointWithinHungFsync is the shutdown regression: a checkpoint
// whose commit wedges in an uninterruptible fsync (a dead NFS mount)
// must not hang the daemon — CheckpointWithin abandons it at the bound
// and returns ErrCheckpointTimeout.
func TestCheckpointWithinHungFsync(t *testing.T) {
	leakcheck.Check(t)
	corpus := gen.PaperExample()
	s, err := core.NewSpace(corpus)
	if err != nil {
		t.Fatal(err)
	}
	res := core.NewResult()
	l := core.CubeMasking(s, core.TaskAll, res, core.CubeMaskOptions{})
	res.Sort()
	srv, err := New(snapshot.New(s, res, l), Config{})
	if err != nil {
		t.Fatal(err)
	}

	mem := faultfs.NewMemFS()
	block := make(chan struct{})
	mem.Inject(faultfs.Fault{Op: faultfs.OpSync, N: 1, Block: block})
	rot := snapshot.NewRotator(mem, "idx.bin")

	start := time.Now()
	err = srv.CheckpointWithin(100*time.Millisecond, rot.Write)
	elapsed := time.Since(start)
	if err == nil || !errorsIs(err, ErrCheckpointTimeout) {
		t.Fatalf("want ErrCheckpointTimeout, got %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("CheckpointWithin took %v; the bound did not hold", elapsed)
	}
	// Release the wedged fsync so the abandoned goroutine can finish and
	// the leak check passes — modeling the device coming back.
	close(block)

	// The checkpoint path is not poisoned: a later checkpoint (the device
	// recovered) succeeds.
	if err := srv.CheckpointWithin(5*time.Second, rot.Write); err != nil {
		t.Fatalf("checkpoint after recovery: %v", err)
	}
}

// errorsIs avoids importing errors just for one call (and keeps the
// test's intent obvious).
func errorsIs(err, target error) bool {
	for err != nil {
		if err == target {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// TestShedRetryAfterJitter: the 429 shed path carries a jittered
// Retry-After and counts serve.retry_after.
func TestShedRetryAfterJitter(t *testing.T) {
	leakcheck.Check(t)
	col := obsv.NewCollector()
	srv, ts := newRealServer(t, 30, Config{Recorder: col, MaxInFlight: 1})
	srv.sem <- struct{}{} // occupy the only slot
	defer func() { <-srv.sem }()
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q", resp.Header.Get("Retry-After"))
	}
	if col.Snapshot()[CtrRetryAfter] == 0 {
		t.Error("serve.retry_after not counted")
	}
}
