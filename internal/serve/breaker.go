package serve

import (
	"sync"
	"time"
)

// Breaker is a consecutive-failure circuit breaker, shared by the
// recompute endpoint and the cubegate shard router. The guarded
// operation is expensive or remote; when it fails repeatedly (panicking
// shards, chronic deadline overruns, an unreachable backend) the breaker
// trips into a degraded posture — callers are refused immediately with a
// jittered Retry-After instead of burning budget re-failing. After a
// backoff the breaker half-opens: exactly one probe call is admitted;
// success closes the circuit, failure re-opens it with doubled (capped,
// jittered) backoff.
//
// All methods are safe for concurrent use.
type Breaker struct {
	mu        sync.Mutex
	threshold int     // consecutive failures that trip the circuit
	bo        Backoff // doubling, capped, jittered open-interval schedule

	consecutive int
	state       breakerState
	openUntil   time.Time
	probing     bool
}

type breakerState uint8

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (st breakerState) String() string {
	switch st {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "?"
}

// NewBreaker builds a breaker; threshold<=0 means 3, base<=0 means 5s.
// The cap is 16× the base (the Backoff default).
func NewBreaker(threshold int, base time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if base <= 0 {
		base = 5 * time.Second
	}
	return &Breaker{threshold: threshold, bo: Backoff{Base: base}}
}

// Allow reports whether a guarded call may proceed now. When the circuit
// is open it returns false and how long the caller should tell the client
// to wait. In half-open state exactly one caller is admitted as the probe;
// the rest are refused until the probe reports.
func (b *Breaker) Allow(now time.Time) (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, 0
	case breakerOpen:
		if now.Before(b.openUntil) {
			return false, b.openUntil.Sub(now)
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true, 0
	default: // half-open
		if b.probing {
			return false, Jittered(b.bo.Current())
		}
		b.probing = true
		return true, 0
	}
}

// Success reports a completed call: the circuit closes and the failure
// streak resets.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.consecutive = 0
	b.probing = false
	b.bo.Reset()
}

// Failure reports a failed call. It returns true when this failure
// tripped (or re-tripped) the circuit open — the caller logs exactly one
// transition line per trip.
func (b *Breaker) Failure(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive++
	switch b.state {
	case breakerHalfOpen:
		// The probe failed: re-open with doubled, capped backoff.
		b.state = breakerOpen
		b.probing = false
		b.openUntil = now.Add(b.bo.Next())
		return true
	case breakerClosed:
		if b.consecutive >= b.threshold {
			b.state = breakerOpen
			b.openUntil = now.Add(b.bo.Next())
			return true
		}
	}
	return false
}

// Snapshot returns the state name and failure streak for stats pages.
func (b *Breaker) Snapshot() (state string, consecutive int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state.String(), b.consecutive
}
