package serve

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"

	"rdfcube/internal/faultfs"
	"rdfcube/internal/gen"
	"rdfcube/internal/wal"
)

func datasetBody(uri string) map[string]any {
	return map[string]any{
		"uri":        uri,
		"dimensions": []string{gen.DimRefArea.Value, gen.DimRefPeriod.Value},
		"measures":   []string{gen.ExNS + "measure/migrated"},
	}
}

// TestCreateDatasetLifecycle: register → 201, idempotent re-register →
// 200, conflicting schema → 409, and the new dataset accepts inserts
// with its previously-unknown measure.
func TestCreateDatasetLifecycle(t *testing.T) {
	_, ts := newPaperServer(t, Config{})
	uri := gen.ExNS + "dataset/D-migrated"

	var created struct {
		Dataset string `json:"dataset"`
		Index   int    `json:"index"`
		Created bool   `json:"created"`
	}
	if code := postJSON(t, ts.URL+"/v1/datasets", datasetBody(uri), &created); code != http.StatusCreated {
		t.Fatalf("create: status %d (%+v)", code, created)
	}
	if !created.Created || created.Dataset != uri {
		t.Fatalf("create response: %+v", created)
	}

	var again struct {
		Created bool `json:"created"`
		Index   int  `json:"index"`
	}
	if code := postJSON(t, ts.URL+"/v1/datasets", datasetBody(uri), &again); code != http.StatusOK {
		t.Fatalf("idempotent re-create: status %d", code)
	}
	if again.Created || again.Index != created.Index {
		t.Fatalf("re-create response: %+v", again)
	}

	conflict := datasetBody(uri)
	conflict["measures"] = []string{gen.ExNS + "measure/other"}
	var errResp map[string]any
	if code := postJSON(t, ts.URL+"/v1/datasets", conflict, &errResp); code != http.StatusConflict {
		t.Fatalf("schema conflict: status %d, want 409", code)
	}

	// Unknown dimension is refused: the dimension universe is fixed.
	bad := datasetBody(gen.ExNS + "dataset/D-baddim")
	bad["dimensions"] = []string{gen.ExNS + "dim/not-in-space"}
	if code := postJSON(t, ts.URL+"/v1/datasets", bad, &errResp); code != http.StatusBadRequest {
		t.Fatalf("unknown dimension: status %d, want 400", code)
	}

	// The registered dataset accepts inserts carrying its new measure.
	ins := map[string]any{
		"dataset": uri,
		"uri":     gen.ExNS + "obs/migrated1",
		"dimensions": map[string]string{
			gen.DimRefArea.Value:   gen.GeoAthens.Value,
			gen.DimRefPeriod.Value: gen.TimeJan.Value,
		},
		"measures": map[string]string{gen.ExNS + "measure/migrated": "7"},
	}
	var insResp map[string]any
	if code := postJSON(t, ts.URL+"/v1/observations", ins, &insResp); code != http.StatusCreated {
		t.Fatalf("insert into registered dataset: status %d (%v)", code, insResp)
	}
}

// TestCreateDatasetNeedsCheckpointHook: a WAL-backed server without
// Config.CheckpointNow refuses registration — a durable insert into a
// volatile dataset would fail replay after a crash.
func TestCreateDatasetNeedsCheckpointHook(t *testing.T) {
	m := faultfs.NewMemFS()
	_, ts, _ := newDurableServer(t, m, paperSnapshotBytes(t), Config{})
	var resp map[string]any
	if code := postJSON(t, ts.URL+"/v1/datasets", datasetBody(gen.ExNS+"dataset/D-nohook"), &resp); code != http.StatusNotImplemented {
		t.Fatalf("status %d, want 501", code)
	}
}

// TestCreateDatasetDurableAcrossRestart proves the checkpoint-before-
// publish ordering: after a register + insert + crash, a fresh server
// built from the committed snapshot replays the WAL cleanly and serves
// the observation.
func TestCreateDatasetDurableAcrossRestart(t *testing.T) {
	m := faultfs.NewMemFS()
	var mu sync.Mutex
	committed := paperSnapshotBytes(t)

	var srv *Server
	cfg := Config{CheckpointNow: func() error {
		return srv.CheckpointWith(func(data []byte) error {
			mu.Lock()
			committed = append([]byte(nil), data...)
			mu.Unlock()
			return nil
		})
	}}
	srv, ts, _ := newDurableServer(t, m, committed, cfg)

	uri := gen.ExNS + "dataset/D-durable"
	var created map[string]any
	if code := postJSON(t, ts.URL+"/v1/datasets", datasetBody(uri), &created); code != http.StatusCreated {
		t.Fatalf("create: status %d (%v)", code, created)
	}
	obsURI := gen.ExNS + "obs/durable1"
	ins := map[string]any{
		"dataset": uri,
		"uri":     obsURI,
		"dimensions": map[string]string{
			gen.DimRefArea.Value:   gen.GeoAthens.Value,
			gen.DimRefPeriod.Value: gen.TimeJan.Value,
		},
		"measures": map[string]string{gen.ExNS + "measure/migrated": "9"},
	}
	var insResp map[string]any
	if code := postJSON(t, ts.URL+"/v1/observations", ins, &insResp); code != http.StatusCreated {
		t.Fatalf("insert: status %d (%v)", code, insResp)
	}

	// Crash: reopen the surviving MemFS WAL against the committed
	// snapshot — exactly what the daemon does at startup.
	crashed := m.Clone()
	crashed.Crash()
	wlog2, recs, err := wal.Open(crashed, "cube.wal")
	if err != nil {
		t.Fatalf("wal.Open after crash: %v", err)
	}
	mu.Lock()
	snapBytes := committed
	mu.Unlock()
	srv2, err := New(decodeSnapshot(t, snapBytes), Config{WAL: wlog2})
	if err != nil {
		t.Fatalf("New after crash: %v", err)
	}
	applied, err := srv2.Replay(recs)
	if err != nil {
		t.Fatalf("Replay after crash: %v (the registration was not durable before the insert)", err)
	}
	if applied < 1 {
		t.Fatalf("replay applied %d records, want >= 1", applied)
	}
	srv2.mu.RLock()
	_, ok := srv2.uriIdx[obsURI]
	srv2.mu.RUnlock()
	if !ok {
		t.Fatalf("observation %s lost across the crash", obsURI)
	}
}

// TestCreateDatasetCheckpointFailureKeepsDatasetUnpublished: when the
// registration checkpoint fails the client gets a retryable 503 and the
// dataset does NOT accept inserts; a retry with a healthy checkpoint
// completes the registration.
func TestCreateDatasetCheckpointFailureKeepsDatasetUnpublished(t *testing.T) {
	var fail atomic.Bool
	fail.Store(true)
	var srv *Server
	cfg := Config{CheckpointNow: func() error {
		if fail.Load() {
			return fmt.Errorf("injected checkpoint failure")
		}
		return srv.CheckpointWith(func([]byte) error { return nil })
	}}
	corpusSrv, ts := newPaperServer(t, cfg)
	srv = corpusSrv

	uri := gen.ExNS + "dataset/D-flaky"
	var resp map[string]any
	if code := postJSON(t, ts.URL+"/v1/datasets", datasetBody(uri), &resp); code != http.StatusServiceUnavailable {
		t.Fatalf("failed checkpoint: status %d, want 503 (%v)", code, resp)
	}
	ins := map[string]any{
		"dataset":    uri,
		"uri":        gen.ExNS + "obs/flaky1",
		"dimensions": map[string]string{gen.DimRefArea.Value: gen.GeoAthens.Value},
		"measures":   map[string]string{gen.ExNS + "measure/migrated": "1"},
	}
	if code := postJSON(t, ts.URL+"/v1/observations", ins, &resp); code != http.StatusBadRequest {
		t.Fatalf("insert into unpublished dataset: status %d, want 400", code)
	}

	fail.Store(false)
	if code := postJSON(t, ts.URL+"/v1/datasets", datasetBody(uri), &resp); code != http.StatusCreated {
		t.Fatalf("retry after checkpoint heals: status %d, want 201 (%v)", code, resp)
	}
	if code := postJSON(t, ts.URL+"/v1/observations", ins, &resp); code != http.StatusCreated {
		t.Fatalf("insert after successful registration: status %d (%v)", code, resp)
	}
}
