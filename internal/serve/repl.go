package serve

// Replication, primary side. Two endpoints turn a serving cubed into a
// leader that followers (internal/replica) can mirror:
//
//	GET /v1/snapshot          the full current state, encoded in the
//	                          snapshot wire format (per-section CRCs plus
//	                          a whole-body CRC header), with the WAL
//	                          stream position the image corresponds to
//	GET /v1/wal?from=&stream= raw CRC-framed WAL record frames starting
//	                          at a logical offset; long-polls at the tail
//
// Positions are (stream, logical offset) pairs. The stream ID is minted
// per server incarnation; logical offset L maps to physical WAL offset
// L - base + HeaderLen, where base advances every time a checkpoint
// truncates the log — so a follower's offset stays valid across
// checkpoints, and an offset from before the current stream (a primary
// restart) or below base (records now only in the snapshot) is answered
// with 410 Gone, telling the follower to bootstrap again from
// /v1/snapshot. Frames are re-validated by the follower (same CRC check
// the WAL's own recovery uses), so a cut mid-frame costs a resume, never
// corruption.

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"rdfcube/internal/wal"
)

// Replication protocol headers.
const (
	// WALStreamHeader carries the primary's stream ID: logical offsets are
	// meaningful only within one stream (one primary incarnation).
	WALStreamHeader = "X-Wal-Stream"
	// WALNextHeader is the logical offset the follower should request next.
	WALNextHeader = "X-Wal-Next"
	// WALEndHeader is the primary's durable logical end offset.
	WALEndHeader = "X-Wal-End"
	// WALSeqHeader is the number of record frames the stream has carried up
	// to the durable end (snapshot responses: up to the snapshot position).
	// Followers derive their record lag from it.
	WALSeqHeader = "X-Wal-Seq"
	// WALPositionHeader, on a snapshot response, is the logical offset the
	// encoded image corresponds to: tail the WAL from here.
	WALPositionHeader = "X-Wal-Position"
	// SnapshotGenHeader is the snapshot generation id backing the primary
	// (best-effort, 0 when the primary has no rotator).
	SnapshotGenHeader = "X-Snapshot-Generation"
	// SnapshotCRCHeader is the CRC-32 (IEEE, hex) of the whole snapshot
	// body, so a follower detects a torn transfer before decoding.
	SnapshotCRCHeader = "X-Snapshot-Crc"
	// LeaderHeader, on a follower's 503 write rejection, names the primary
	// base URL the client should talk to instead.
	LeaderHeader = "Leader"
)

// Replication counters.
const (
	CtrWALPolls      = "serve.repl.polls"          // /v1/wal requests answered
	CtrWALServed     = "serve.repl.records.served" // record frames shipped to followers
	CtrBootstraps    = "serve.repl.bootstraps"     // /v1/snapshot images served
	HistSnapshotShip = "serve.repl.snapshot.encode.us"
)

// maxWALChunk bounds one /v1/wal response body (4 MiB of frames): a far
// behind follower catches up in several requests instead of one giant
// allocation.
const maxWALChunk = 4 << 20

// maxWALWait caps the long-poll a client may request.
const maxWALWait = 30 * time.Second

// newStreamID mints the per-incarnation replication stream ID.
func newStreamID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; fall back to
		// a clock-derived ID rather than refusing to serve.
		return fmt.Sprintf("t%x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// walEndLocked reports the durable logical end offset. Callers hold at
// least the read lock and have checked wlog != nil.
func (s *Server) walEndLocked() int64 {
	return s.walBase + (s.wlog.Size() - wal.HeaderLen)
}

// notifyAppend wakes every /v1/wal long-poller. Called after a durable
// append, under the write lock.
func (s *Server) notifyAppend() {
	s.notifyMu.Lock()
	close(s.walNotify)
	s.walNotify = make(chan struct{})
	s.notifyMu.Unlock()
}

// walWait returns the channel the NEXT append will close. Grab it BEFORE
// checking the durable end: an append landing between the check and the
// wait then wakes the waiter instead of being missed.
func (s *Server) walWait() <-chan struct{} {
	s.notifyMu.Lock()
	defer s.notifyMu.Unlock()
	return s.walNotify
}

// handleSnapshot streams the full current state for a follower
// bootstrap. The image is encoded under the write lock (the same pause a
// checkpoint pays) together with the WAL position it corresponds to, so
// "apply this snapshot, then tail the WAL from X-Wal-Position" is exact:
// every record at or past the position is either in the image already
// (replay dup-skips it) or newer than it.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.mu.Lock()
	data, err := s.encodeSnapshotLocked()
	var pos, seq int64
	if err == nil && s.wlog != nil {
		pos = s.walEndLocked()
		seq = s.walSeq
	}
	s.mu.Unlock()
	if err != nil {
		s.error(w, r, http.StatusInternalServerError, "encoding snapshot: %v", err)
		return
	}
	s.observe(HistSnapshotShip, time.Since(start).Microseconds())
	s.count(CtrBootstraps, 1)

	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set("Content-Length", strconv.Itoa(len(data)))
	h.Set(SnapshotCRCHeader, fmt.Sprintf("%08x", crc32.ChecksumIEEE(data)))
	if s.snapGen != nil {
		h.Set(SnapshotGenHeader, strconv.FormatUint(s.snapGen(), 10))
	}
	if s.wlog != nil {
		h.Set(WALStreamHeader, s.streamID)
		h.Set(WALPositionHeader, strconv.FormatInt(pos, 10))
		h.Set(WALSeqHeader, strconv.FormatInt(seq, 10))
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// handleWALTail serves raw WAL record frames from a logical offset.
//
//	?from=N     logical offset to read from (required)
//	?stream=ID  the stream the offset belongs to; a mismatch is 410
//	?wait=DUR   long-poll budget when from is at the durable end
//	            (default the server's WALPollWait, capped at 30s)
//
// Responses: 200 with zero or more whole frames (empty body after a
// long-poll timeout — the follower just polls again), 400 for an offset
// that is not a frame boundary or is past the durable end, 410 Gone when
// the offset predates the stream or the retention base (re-bootstrap
// from /v1/snapshot), 503 when the primary runs without a WAL.
func (s *Server) handleWALTail(w http.ResponseWriter, r *http.Request) {
	if s.wlog == nil {
		s.error(w, r, http.StatusServiceUnavailable, "replication unavailable: primary runs without a write-ahead log")
		return
	}
	q := r.URL.Query()
	from, err := strconv.ParseInt(q.Get("from"), 10, 64)
	if err != nil || from < 0 {
		s.error(w, r, http.StatusBadRequest, "bad ?from= offset %q", q.Get("from"))
		return
	}
	if st := q.Get("stream"); st != "" && st != s.streamID {
		w.Header().Set(WALStreamHeader, s.streamID)
		s.error(w, r, http.StatusGone, "stream %q is not this primary's stream %q; bootstrap again from /v1/snapshot", st, s.streamID)
		return
	}
	wait := s.pollWait
	if ws := q.Get("wait"); ws != "" {
		if d, err := time.ParseDuration(ws); err == nil && d >= 0 {
			wait = d
		}
	}
	if wait > maxWALWait {
		wait = maxWALWait
	}
	deadline := time.Now().Add(wait)

	for {
		notify := s.walWait()
		s.mu.RLock()
		base, end := s.walBase, s.walEndLocked()
		var chunk []byte
		var rerr error
		if from >= base && from < end {
			chunk, rerr = s.wlog.ReadRange(from-base+wal.HeaderLen, maxWALChunk)
		}
		seq := s.walSeq
		s.mu.RUnlock()

		h := w.Header()
		h.Set(WALStreamHeader, s.streamID)
		h.Set(WALEndHeader, strconv.FormatInt(end, 10))
		h.Set(WALSeqHeader, strconv.FormatInt(seq, 10))

		switch {
		case from < base:
			s.error(w, r, http.StatusGone, "offset %d predates retained WAL (earliest %d); bootstrap again from /v1/snapshot", from, base)
			return
		case from > end:
			s.error(w, r, http.StatusBadRequest, "offset %d is past the durable end %d", from, end)
			return
		case from == end:
			// Caught up: wait for an append, the client going away, server
			// shutdown, or the poll budget.
			remain := time.Until(deadline)
			if remain <= 0 {
				h.Set(WALNextHeader, strconv.FormatInt(from, 10))
				h.Set("Content-Type", "application/octet-stream")
				s.count(CtrWALPolls, 1)
				w.WriteHeader(http.StatusOK)
				return
			}
			t := time.NewTimer(remain)
			select {
			case <-notify:
				t.Stop()
				continue
			case <-t.C:
				continue
			case <-r.Context().Done():
				t.Stop()
				s.count(CtrCanceled, 1)
				s.error(w, r, cancelStatus(r.Context().Err()), "request abandoned: %v", r.Context().Err())
				return
			case <-s.runCtx.Done():
				t.Stop()
				h.Set(WALNextHeader, strconv.FormatInt(from, 10))
				w.WriteHeader(http.StatusOK)
				return
			}
		default:
			if rerr != nil {
				if errorsIsNotBoundary(rerr) {
					s.error(w, r, http.StatusBadRequest, "offset %d is not a record boundary", from)
					return
				}
				s.error(w, r, http.StatusInternalServerError, "reading wal: %v", rerr)
				return
			}
			recs, good, perr := wal.ParseFrames(chunk)
			if perr != nil && good == 0 {
				s.error(w, r, http.StatusInternalServerError, "wal corrupt at offset %d: %v", from, perr)
				return
			}
			h.Set(WALNextHeader, strconv.FormatInt(from+good, 10))
			h.Set("Content-Type", "application/octet-stream")
			h.Set("Content-Length", strconv.FormatInt(good, 10))
			s.count(CtrWALPolls, 1)
			s.count(CtrWALServed, int64(len(recs)))
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write(chunk[:good])
			return
		}
	}
}

func errorsIsNotBoundary(err error) bool {
	return errors.Is(err, wal.ErrNotBoundary)
}

// FollowerState is the live replication posture a follower (see
// internal/replica) shares with its serve.Server: the serving layer reads
// it to reject writes with a leader hint, report lag in /readyz and
// /v1/stats, and flip readiness when staleness exceeds the bound. All
// methods are safe for concurrent use.
type FollowerState struct {
	// Leader is the primary's base URL, echoed in the Leader header of
	// every rejected write.
	Leader string
	// MaxStaleness flips /readyz to 503 once the follower has not been
	// caught up with the primary for this long. Zero never trips.
	MaxStaleness time.Duration

	lagRecords   atomic.Int64
	offset       atomic.Int64
	lastCaughtUp atomic.Int64 // UnixNano of the last caught-up moment
	connected    atomic.Bool
	bootstraps   atomic.Int64
}

// SetOffset records the follower's applied logical WAL offset.
func (f *FollowerState) SetOffset(v int64) { f.offset.Store(v) }

// Offset reports the applied logical WAL offset.
func (f *FollowerState) Offset() int64 { return f.offset.Load() }

// SetLagRecords records how many record frames the follower is behind.
func (f *FollowerState) SetLagRecords(v int64) { f.lagRecords.Store(v) }

// LagRecords reports the record-frame lag.
func (f *FollowerState) LagRecords() int64 { return f.lagRecords.Load() }

// MarkCaughtUp records that the follower was level with the primary's
// durable end just now.
func (f *FollowerState) MarkCaughtUp() {
	f.lagRecords.Store(0)
	f.lastCaughtUp.Store(time.Now().UnixNano())
}

// SetConnected records whether the replication link is up.
func (f *FollowerState) SetConnected(up bool) { f.connected.Store(up) }

// Connected reports whether the replication link is up.
func (f *FollowerState) Connected() bool { return f.connected.Load() }

// MarkBootstrap counts a completed snapshot bootstrap and resets the
// caught-up clock (a fresh image IS the primary's state as of moments
// ago).
func (f *FollowerState) MarkBootstrap() {
	f.bootstraps.Add(1)
	f.MarkCaughtUp()
}

// Bootstraps reports how many snapshot bootstraps the follower has done.
func (f *FollowerState) Bootstraps() int64 { return f.bootstraps.Load() }

// Staleness is the wall-clock time since the follower was last level
// with the primary.
func (f *FollowerState) Staleness() time.Duration {
	at := f.lastCaughtUp.Load()
	if at == 0 {
		return time.Duration(1<<63 - 1) // never caught up
	}
	return time.Since(time.Unix(0, at))
}

// Stale reports whether staleness exceeds the configured bound.
func (f *FollowerState) Stale() bool {
	return f.MaxStaleness > 0 && f.Staleness() > f.MaxStaleness
}

// rejectWrite answers a write request on a follower: 503 plus the Leader
// header naming where writes go.
func (s *Server) rejectWrite(w http.ResponseWriter, r *http.Request) {
	w.Header().Set(LeaderHeader, s.follower.Leader)
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{
		"error":  "read-only replica: writes go to the leader",
		"leader": s.follower.Leader,
	})
}
