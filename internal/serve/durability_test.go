package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rdfcube/internal/core"
	"rdfcube/internal/faultfs"
	"rdfcube/internal/gen"
	"rdfcube/internal/obsv"
	"rdfcube/internal/snapshot"
	"rdfcube/internal/wal"
)

// paperSnapshotBytes encodes the paper-example state once so restart
// tests can decode a fresh, independent copy per server.
func paperSnapshotBytes(t *testing.T) []byte {
	t.Helper()
	corpus := gen.PaperExample()
	s, err := core.NewSpace(corpus)
	if err != nil {
		t.Fatal(err)
	}
	res := core.NewResult()
	l := core.CubeMasking(s, core.TaskAll, res, core.CubeMaskOptions{})
	res.Sort()
	data, err := snapshot.New(s, res, l).Encode()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func decodeSnapshot(t *testing.T, data []byte) *snapshot.Snapshot {
	t.Helper()
	sn, err := snapshot.Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return sn
}

// newDurableServer builds a WAL-backed server over a MemFS so tests can
// crash the "disk" at will.
func newDurableServer(t *testing.T, m *faultfs.MemFS, snapBytes []byte, cfg Config) (*Server, *httptest.Server, *wal.Log) {
	t.Helper()
	wlog, recs, err := wal.Open(m, "cube.wal")
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	cfg.WAL = wlog
	srv, err := New(decodeSnapshot(t, snapBytes), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if len(recs) > 0 {
		if _, err := srv.Replay(recs); err != nil {
			t.Fatalf("Replay: %v", err)
		}
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, wlog
}

// insertBody builds a valid insert request for dataset D3 with a fresh
// URI suffix.
func insertBody(suffix string) map[string]any {
	return map[string]any{
		"dataset": gen.ExNS + "dataset/D3",
		"uri":     gen.ExNS + "obs/crash" + suffix,
		"dimensions": map[string]string{
			gen.DimRefArea.Value:   gen.GeoAthens.Value,
			gen.DimRefPeriod.Value: gen.TimeJan.Value,
		},
		"measures": map[string]string{gen.MeasUnemployment.Value: "0.11"},
	}
}

// TestPanicRecoveredAndCounted: a panicking handler yields a JSON 500,
// increments serve.panics with the stack logged, and the server keeps
// serving.
func TestPanicRecoveredAndCounted(t *testing.T) {
	col := obsv.NewCollector()
	var mu sync.Mutex
	var logged []string
	srv, ts := newPaperServer(t, Config{Recorder: col, Logf: func(format string, a ...any) {
		mu.Lock()
		logged = append(logged, fmt.Sprintf(format, a...))
		mu.Unlock()
	}})

	h := srv.wrap("boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "internal server error") {
		t.Fatalf("body %q", rec.Body.String())
	}
	if got := col.Snapshot()[CtrPanics]; got != 1 {
		t.Fatalf("%s = %d, want 1", CtrPanics, got)
	}
	if got := col.Snapshot()[CtrErrors]; got != 1 {
		t.Fatalf("%s = %d, want 1", CtrErrors, got)
	}
	mu.Lock()
	joined := strings.Join(logged, "\n")
	mu.Unlock()
	if !strings.Contains(joined, "kaboom") || !strings.Contains(joined, "goroutine") {
		t.Fatalf("panic log missing value or stack: %q", joined)
	}

	// The daemon survives: normal routes still answer.
	var m map[string]any
	if code := getJSON(t, ts.URL+"/healthz", &m); code != http.StatusOK {
		t.Fatalf("healthz after panic: %d", code)
	}
}

// TestPanicAfterWriteKeepsStatus: a handler that wrote 200 and then
// panicked must not get a second (500) header.
func TestPanicAfterWriteKeepsStatus(t *testing.T) {
	srv, _ := newPaperServer(t, Config{})
	h := srv.wrap("boom", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		panic("too late")
	})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/boom", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, want the already-written 200", rec.Code)
	}
}

// TestAbandonedRequestStatuses: a request whose context is already
// canceled gets 499; one past its deadline gets 504; both count as
// serve.canceled.
func TestAbandonedRequestStatuses(t *testing.T) {
	col := obsv.NewCollector()
	srv, _ := newPaperServer(t, Config{Recorder: col})

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("GET", "/v1/related?obs=0", nil).WithContext(canceled)
	rec := httptest.NewRecorder()
	srv.wrap("related", srv.handleRelated).ServeHTTP(rec, req)
	if rec.Code != statusClientClosedRequest {
		t.Fatalf("canceled context: status %d, want 499", rec.Code)
	}

	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	req = httptest.NewRequest("GET", "/v1/contains?obs=0", nil).WithContext(expired)
	rec = httptest.NewRecorder()
	srv.wrap("contains", srv.handleContains).ServeHTTP(rec, req)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("expired deadline: status %d, want 504", rec.Code)
	}

	if got := col.Snapshot()[CtrCanceled]; got != 2 {
		t.Fatalf("%s = %d, want 2", CtrCanceled, got)
	}
}

// TestAbandonedInsertNeverReachesWAL: an insert whose client hung up
// before the durable append must leave the log untouched — replay would
// otherwise resurrect a write nobody acknowledged.
func TestAbandonedInsertNeverReachesWAL(t *testing.T) {
	m := faultfs.NewMemFS()
	snap := paperSnapshotBytes(t)
	srv, _, wlog := newDurableServer(t, m, snap, Config{})

	body := bodyFor(t, insertBody("-abandoned"))
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("POST", "/v1/observations", body).WithContext(canceled)
	rec := httptest.NewRecorder()
	srv.wrap("insert", srv.handleInsert).ServeHTTP(rec, req)
	if rec.Code != statusClientClosedRequest {
		t.Fatalf("status %d, want 499", rec.Code)
	}
	if wlog.RecordBytes() != 0 {
		t.Fatalf("abandoned insert left %d bytes in the WAL", wlog.RecordBytes())
	}
	if srv.inc.S.N() != 10 {
		t.Fatalf("abandoned insert mutated the space: %d observations", srv.inc.S.N())
	}
}

func bodyFor(t *testing.T, v any) *bytes.Reader {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(data)
}

// TestKillRestartLosesNothingAcked is the headline crash-recovery
// property: a server acknowledges a stream of inserts, the machine dies
// (every unsynced byte vanishes), and the restarted server — previous
// snapshot + WAL replay — serves exactly the acknowledged observations.
func TestKillRestartLosesNothingAcked(t *testing.T) {
	m := faultfs.NewMemFS()
	snap := paperSnapshotBytes(t)
	_, ts, _ := newDurableServer(t, m, snap, Config{})

	const inserts = 7
	var acked []string
	for i := 0; i < inserts; i++ {
		b := insertBody(fmt.Sprintf("-%d", i))
		var created map[string]any
		if code := postJSON(t, ts.URL+"/v1/observations", b, &created); code != http.StatusCreated {
			t.Fatalf("insert %d: status %d (%v)", i, code, created)
		}
		acked = append(acked, b["uri"].(string))
	}

	// Power cut: clone the disk and drop every unsynced byte.
	crashed := m.Clone()
	crashed.Crash()

	// Restart: reopen the WAL, decode the pre-crash snapshot, replay.
	wlog2, recs, err := wal.Open(crashed, "cube.wal")
	if err != nil {
		t.Fatalf("reopening WAL after crash: %v", err)
	}
	defer wlog2.Close()
	if len(recs) != inserts {
		t.Fatalf("recovered %d WAL records, want %d", len(recs), inserts)
	}
	srv2, err := New(decodeSnapshot(t, snap), Config{WAL: wlog2})
	if err != nil {
		t.Fatal(err)
	}
	applied, err := srv2.Replay(recs)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if applied != inserts {
		t.Fatalf("replayed %d records, want %d", applied, inserts)
	}
	if srv2.inc.S.N() != 10+inserts {
		t.Fatalf("recovered space has %d observations, want %d", srv2.inc.S.N(), 10+inserts)
	}

	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	for _, uri := range acked {
		var got struct {
			URI string `json:"uri"`
		}
		if code := getJSON(t, ts2.URL+"/v1/contains?obs="+uri, &got); code != http.StatusOK {
			t.Fatalf("acked %s missing after restart: status %d", uri, code)
		}
	}

	// The recovered state must answer identically to a fresh recompute
	// over the same observations: compare against the live pre-crash
	// server's stats.
	var before, after struct {
		Full    int `json:"full"`
		Partial int `json:"partial"`
		Compl   int `json:"complementary"`
	}
	if code := getJSON(t, ts.URL+"/v1/stats", &before); code != http.StatusOK {
		t.Fatal(code)
	}
	if code := getJSON(t, ts2.URL+"/v1/stats", &after); code != http.StatusOK {
		t.Fatal(code)
	}
	if before != after {
		t.Fatalf("relationship counts diverged: live %+v vs recovered %+v", before, after)
	}
}

// TestUnackedInsertInvisibleAfterCrash: an insert refused with 503
// (append fault) must not reappear after recovery.
func TestUnackedInsertInvisibleAfterCrash(t *testing.T) {
	m := faultfs.NewMemFS()
	snap := paperSnapshotBytes(t)
	srv, ts, _ := newDurableServer(t, m, snap, Config{})

	// One good insert, acked.
	var created map[string]any
	if code := postJSON(t, ts.URL+"/v1/observations", insertBody("-good"), &created); code != http.StatusCreated {
		t.Fatalf("good insert: %d (%v)", code, created)
	}
	// Fault the next append: the insert is refused, never acked.
	m.Inject(faultfs.Fault{Op: faultfs.OpWrite, N: 1})
	var refused map[string]any
	if code := postJSON(t, ts.URL+"/v1/observations", insertBody("-lost"), &refused); code != http.StatusServiceUnavailable {
		t.Fatalf("faulted insert: status %d, want 503 (%v)", code, refused)
	}
	if !srv.Degraded() {
		t.Fatal("append failure did not degrade the server")
	}

	crashed := m.Clone()
	crashed.Crash()
	wlog2, recs, err := wal.Open(crashed, "cube.wal")
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer wlog2.Close()
	srv2, err := New(decodeSnapshot(t, snap), Config{WAL: wlog2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv2.Replay(recs); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if _, ok := srv2.uriIdx[gen.ExNS+"obs/crash-good"]; !ok {
		t.Fatal("acked insert lost")
	}
	if _, ok := srv2.uriIdx[gen.ExNS+"obs/crash-lost"]; ok {
		t.Fatal("unacked insert resurfaced after crash")
	}
}

// TestDegradedReadOnlyMode: after a WAL failure reads keep working,
// inserts return 503, and the health endpoints report the degradation.
func TestDegradedReadOnlyMode(t *testing.T) {
	col := obsv.NewCollector()
	m := faultfs.NewMemFS()
	snap := paperSnapshotBytes(t)
	_, ts, _ := newDurableServer(t, m, snap, Config{Recorder: col})

	m.Inject(faultfs.Fault{Op: faultfs.OpSync, N: 1, Persistent: true})
	var out map[string]any
	if code := postJSON(t, ts.URL+"/v1/observations", insertBody("-x"), &out); code != http.StatusServiceUnavailable {
		t.Fatalf("insert on dead log: status %d, want 503 (%v)", code, out)
	}
	// Fast path: a second insert is refused before touching the log.
	if code := postJSON(t, ts.URL+"/v1/observations", insertBody("-y"), &out); code != http.StatusServiceUnavailable {
		t.Fatalf("second insert: status %d, want 503", code)
	}

	// Reads still work.
	var rel map[string]any
	if code := getJSON(t, ts.URL+"/v1/related?obs=0", &rel); code != http.StatusOK {
		t.Fatalf("read in degraded mode: %d", code)
	}
	// healthz stays alive; readyz reports degraded but keeps the pod in
	// rotation for reads.
	var hz, rz map[string]any
	if code := getJSON(t, ts.URL+"/healthz", &hz); code != http.StatusOK || hz["state"] != "degraded" {
		t.Fatalf("healthz: code %d state %v", code, hz["state"])
	}
	if code := getJSON(t, ts.URL+"/readyz", &rz); code != http.StatusOK || rz["status"] != "degraded" {
		t.Fatalf("readyz: code %d status %v", code, rz["status"])
	}
	var stats struct {
		Degraded bool `json:"degraded"`
	}
	if code := getJSON(t, ts.URL+"/v1/stats", &stats); code != http.StatusOK || !stats.Degraded {
		t.Fatalf("stats: code %d degraded %v", code, stats.Degraded)
	}
	if g := col.Gauges()[GaugeDegraded]; g != 1 {
		t.Fatalf("%s gauge = %v, want 1", GaugeDegraded, g)
	}
}

// TestCheckpointsAreSerialized is the regression test for the
// SIGTERM-vs-timer checkpoint race: concurrent CheckpointWith calls must
// never run their commit functions concurrently.
func TestCheckpointsAreSerialized(t *testing.T) {
	m := faultfs.NewMemFS()
	snap := paperSnapshotBytes(t)
	srv, ts, wlog := newDurableServer(t, m, snap, Config{})

	var created map[string]any
	if code := postJSON(t, ts.URL+"/v1/observations", insertBody("-ckpt"), &created); code != http.StatusCreated {
		t.Fatalf("insert: %d", code)
	}
	if wlog.RecordBytes() == 0 {
		t.Fatal("insert did not reach the WAL")
	}

	var inFlight, maxSeen atomic.Int64
	commit := func(data []byte) error {
		cur := inFlight.Add(1)
		for {
			old := maxSeen.Load()
			if cur <= old || maxSeen.CompareAndSwap(old, cur) {
				break
			}
		}
		time.Sleep(5 * time.Millisecond) // widen the race window
		inFlight.Add(-1)
		if len(data) == 0 {
			return fmt.Errorf("empty snapshot")
		}
		return nil
	}

	var wg sync.WaitGroup
	const concurrent = 6
	errs := make([]error, concurrent)
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = srv.CheckpointWith(commit)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("checkpoint %d: %v", i, err)
		}
	}
	if maxSeen.Load() != 1 {
		t.Fatalf("%d commits ran concurrently, want 1", maxSeen.Load())
	}
	// The WAL is truncated after the commit: its records are covered by
	// the committed snapshot.
	if wlog.RecordBytes() != 0 {
		t.Fatalf("WAL holds %d record bytes after checkpoint, want 0", wlog.RecordBytes())
	}
}

// TestCheckpointCommitFailureKeepsWAL: when the commit fails the WAL
// must NOT be truncated — its records are the only durable copy.
func TestCheckpointCommitFailureKeepsWAL(t *testing.T) {
	m := faultfs.NewMemFS()
	snap := paperSnapshotBytes(t)
	srv, ts, wlog := newDurableServer(t, m, snap, Config{})
	var created map[string]any
	if code := postJSON(t, ts.URL+"/v1/observations", insertBody("-keep"), &created); code != http.StatusCreated {
		t.Fatalf("insert: %d", code)
	}
	before := wlog.RecordBytes()
	if err := srv.CheckpointWith(func([]byte) error {
		return fmt.Errorf("disk full")
	}); err == nil {
		t.Fatal("failed commit reported success")
	}
	if wlog.RecordBytes() != before {
		t.Fatalf("failed checkpoint truncated the WAL: %d -> %d bytes", before, wlog.RecordBytes())
	}
}

// TestReplayIsIdempotent: replaying the same records twice applies them
// once — the crash-between-commit-and-truncate scenario.
func TestReplayIsIdempotent(t *testing.T) {
	m := faultfs.NewMemFS()
	snap := paperSnapshotBytes(t)
	_, ts, _ := newDurableServer(t, m, snap, Config{})
	var created map[string]any
	if code := postJSON(t, ts.URL+"/v1/observations", insertBody("-idem"), &created); code != http.StatusCreated {
		t.Fatalf("insert: %d", code)
	}

	crashed := m.Clone()
	crashed.Crash()
	wlog2, recs, err := wal.Open(crashed, "cube.wal")
	if err != nil {
		t.Fatal(err)
	}
	defer wlog2.Close()
	srv2, err := New(decodeSnapshot(t, snap), Config{WAL: wlog2})
	if err != nil {
		t.Fatal(err)
	}
	if n, err := srv2.Replay(recs); err != nil || n != 1 {
		t.Fatalf("first replay: n=%d err=%v", n, err)
	}
	if n, err := srv2.Replay(recs); err != nil || n != 0 {
		t.Fatalf("second replay applied %d records (err=%v), want 0", n, err)
	}
	if srv2.inc.S.N() != 11 {
		t.Fatalf("space has %d observations, want 11", srv2.inc.S.N())
	}
}

// TestReplayRejectsMismatchedRecord: a WAL that disagrees with the
// snapshot (dataset index out of range) is an error, not a silent drop.
func TestReplayRejectsMismatchedRecord(t *testing.T) {
	snap := paperSnapshotBytes(t)
	srv, err := New(decodeSnapshot(t, snap), Config{})
	if err != nil {
		t.Fatal(err)
	}
	bad := []wal.Record{{Dataset: 99, URI: gen.DimRefArea}}
	if _, err := srv.Replay(bad); err == nil {
		t.Fatal("out-of-range dataset index accepted")
	}
}
