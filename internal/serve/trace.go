// Request tracing: every request gets a trace ID (accepted via
// X-Request-Id or generated), a per-request span tree recorded through an
// obsv.TraceCollector, and a slot in a bounded in-memory ring queryable
// at /debug/traces — so one slow /v1/related call can be explained down
// to the phase that ate the budget, and a 5xx body's traceId can be
// matched to the slow-query log and the panic log line.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rdfcube/internal/obsv"
)

// TraceIDHeader is the request/response header carrying the trace ID.
const TraceIDHeader = "X-Request-Id"

// maxTraceIDLen caps an accepted client-supplied trace ID; longer ones
// are replaced (a trace ID is an opaque correlation token, not a payload
// channel).
const maxTraceIDLen = 128

// Trace is one completed request's record: identity, outcome, and the
// span tree with per-span durations and counter deltas.
type Trace struct {
	ID         string       `json:"traceId"`
	Route      string       `json:"route"`
	Method     string       `json:"method"`
	Path       string       `json:"path"`
	Status     int          `json:"status"`
	Start      time.Time    `json:"start"`
	DurationUs int64        `json:"durationUs"`
	Spans      []*obsv.Span `json:"spans,omitempty"`
}

// reqTrace is the in-flight per-request trace state carried on the
// request context.
type reqTrace struct {
	id string
	tc *obsv.TraceCollector
}

// span opens a child span on the request's trace; the returned closer is
// a no-op when the request is untraced (nil receiver).
func (t *reqTrace) span(name string) func() {
	if t == nil {
		return func() {}
	}
	return t.tc.Start(name)
}

type traceCtxKey struct{}

// TraceID returns the trace ID of the request carrying ctx, or "" when
// the request is untraced (e.g. a context not built by the middleware).
func TraceID(ctx context.Context) string {
	if t, _ := ctx.Value(traceCtxKey{}).(*reqTrace); t != nil {
		return t.id
	}
	return ""
}

// traceFrom extracts the in-flight trace (nil when untraced).
func traceFrom(ctx context.Context) *reqTrace {
	t, _ := ctx.Value(traceCtxKey{}).(*reqTrace)
	return t
}

// traceSeq disambiguates trace IDs generated within one nanosecond tick.
var traceSeq atomic.Uint64

// newTraceID generates a process-unique trace ID: start-time nanos, pid
// and a sequence number. Not globally unique like a UUID, but collision-
// free within one daemon's trace ring and log stream, with zero
// dependencies.
func newTraceID() string {
	return fmt.Sprintf("%012x-%x-%04x", uint64(time.Now().UnixNano())&0xffffffffffff,
		os.Getpid()&0xffff, traceSeq.Add(1)&0xffff)
}

// traceRing is the bounded ring of recent traces. Fixed memory: Size
// slots, newest overwrites oldest.
type traceRing struct {
	mu    sync.Mutex
	buf   []*Trace
	next  int
	total int64
}

func newTraceRing(size int) *traceRing {
	if size <= 0 {
		size = 128
	}
	return &traceRing{buf: make([]*Trace, size)}
}

func (r *traceRing) add(t *Trace) {
	r.mu.Lock()
	r.buf[r.next] = t
	r.next = (r.next + 1) % len(r.buf)
	r.total++
	r.mu.Unlock()
}

// snapshot returns the retained traces newest-first.
func (r *traceRing) snapshot() []*Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Trace, 0, len(r.buf))
	for i := 1; i <= len(r.buf); i++ {
		t := r.buf[(r.next-i+len(r.buf))%len(r.buf)]
		if t == nil {
			break
		}
		out = append(out, t)
	}
	return out
}

// handleTraces serves GET /debug/traces: the recent-trace ring newest-
// first. Query parameters: ?id= filters to one trace ID, ?route= to one
// route, ?min_us= to traces at least that slow, ?limit= caps the count.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	id := q.Get("id")
	route := q.Get("route")
	minUs, _ := strconv.ParseInt(q.Get("min_us"), 10, 64)
	limit := len(s.traces.buf)
	if l, err := strconv.Atoi(q.Get("limit")); err == nil && l > 0 && l < limit {
		limit = l
	}
	all := s.traces.snapshot()
	out := make([]*Trace, 0, len(all))
	for _, t := range all {
		if id != "" && t.ID != id {
			continue
		}
		if route != "" && t.Route != route {
			continue
		}
		if t.DurationUs < minUs {
			continue
		}
		out = append(out, t)
		if len(out) >= limit {
			break
		}
	}
	s.traces.mu.Lock()
	total := s.traces.total
	s.traces.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"capacity": len(s.traces.buf),
		"recorded": total,
		"traces":   out,
	})
}

// slowLogEntry is one JSON line of the slow-query log — the same shape
// as a /debug/traces entry plus a timestamp, so a log line and a ring
// entry correlate on traceId.
type slowLogEntry struct {
	TS string `json:"ts"`
	*Trace
}

// logSlow appends the trace to the slow-query log as one JSON line.
// Serialized by slowMu: concurrent slow requests must not interleave
// bytes within a line.
func (s *Server) logSlow(t *Trace) {
	s.slowMu.Lock()
	defer s.slowMu.Unlock()
	enc := json.NewEncoder(s.slowLog)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(slowLogEntry{TS: t.Start.UTC().Format(time.RFC3339Nano), Trace: t})
}
