package serve

import (
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"strconv"
	"testing"
	"time"

	"rdfcube/internal/faultfs"
	"rdfcube/internal/wal"
)

// tailRaw issues one GET /v1/wal and returns the response with its body.
func tailRaw(t *testing.T, base string, from int64, stream string, extra string) (*http.Response, []byte) {
	t.Helper()
	url := fmt.Sprintf("%s/v1/wal?from=%d", base, from)
	if stream != "" {
		url += "&stream=" + stream
	}
	url += extra
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	return resp, body
}

func header64(t *testing.T, resp *http.Response, name string) int64 {
	t.Helper()
	v, err := strconv.ParseInt(resp.Header.Get(name), 10, 64)
	if err != nil {
		t.Fatalf("header %s = %q: %v", name, resp.Header.Get(name), err)
	}
	return v
}

// TestSnapshotEndpointRoundTrip: GET /v1/snapshot must return a
// decodable image whose CRC header matches the body, plus the stream and
// position to tail from — and the position must equal the primary's
// durable WAL end.
func TestSnapshotEndpointRoundTrip(t *testing.T) {
	m := faultfs.NewMemFS()
	_, ts, _ := newDurableServer(t, m, paperSnapshotBytes(t), Config{
		SnapshotGen: func() uint64 { return 42 },
	})

	var created map[string]any
	if code := postJSON(t, ts.URL+"/v1/observations", insertBody("-boot"), &created); code != http.StatusCreated {
		t.Fatalf("insert: status %d", code)
	}

	resp, body := func() (*http.Response, []byte) {
		resp, err := http.Get(ts.URL + "/v1/snapshot")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, data
	}()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: status %d", resp.StatusCode)
	}
	if got, want := fmt.Sprintf("%08x", crc32.ChecksumIEEE(body)), resp.Header.Get(SnapshotCRCHeader); got != want {
		t.Fatalf("snapshot CRC: body %s, header %s", got, want)
	}
	if gen := resp.Header.Get(SnapshotGenHeader); gen != "42" {
		t.Fatalf("generation header %q, want 42", gen)
	}
	sn := decodeSnapshot(t, body)
	if sn.Space.N() != 11 { // 10 paper observations + 1 live insert
		t.Fatalf("snapshot holds %d observations, want 11", sn.Space.N())
	}
	stream := resp.Header.Get(WALStreamHeader)
	if stream == "" {
		t.Fatal("snapshot response lacks the WAL stream header")
	}
	pos := header64(t, resp, WALPositionHeader)

	// The position is the durable end: tailing from it with wait=0 long-
	// polls out empty (nothing newer exists).
	tresp, tbody := tailRaw(t, ts.URL, pos, stream, "&wait=1ms")
	if tresp.StatusCode != http.StatusOK || len(tbody) != 0 {
		t.Fatalf("tail at snapshot position: status %d, %d bytes; want empty 200", tresp.StatusCode, len(tbody))
	}
}

// TestWALTailServesInsertedRecords: records appended after a tail
// position are returned as valid frames with advancing position headers.
func TestWALTailServesInsertedRecords(t *testing.T) {
	m := faultfs.NewMemFS()
	_, ts, _ := newDurableServer(t, m, paperSnapshotBytes(t), Config{})

	resp, body := tailRaw(t, ts.URL, 0, "", "&wait=1ms")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("initial tail: status %d", resp.StatusCode)
	}
	if len(body) != 0 {
		t.Fatalf("empty WAL served %d bytes", len(body))
	}
	stream := resp.Header.Get(WALStreamHeader)

	for i := 0; i < 3; i++ {
		var created map[string]any
		if code := postJSON(t, ts.URL+"/v1/observations", insertBody(fmt.Sprintf("-t%d", i)), &created); code != http.StatusCreated {
			t.Fatalf("insert %d: status %d", i, code)
		}
	}
	resp, body = tailRaw(t, ts.URL, 0, stream, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tail after inserts: status %d", resp.StatusCode)
	}
	recs, good, err := wal.ParseFrames(body)
	if err != nil {
		t.Fatalf("served frames do not parse: %v", err)
	}
	if len(recs) != 3 || good != int64(len(body)) {
		t.Fatalf("tail served %d records over %d/%d bytes, want 3 complete", len(recs), good, len(body))
	}
	if next := header64(t, resp, WALNextHeader); next != good {
		t.Fatalf("next header %d, want %d", next, good)
	}
	if end := header64(t, resp, WALEndHeader); end != good {
		t.Fatalf("end header %d, want %d", end, good)
	}
	if seq := header64(t, resp, WALSeqHeader); seq != 3 {
		t.Fatalf("seq header %d, want 3", seq)
	}
}

// TestWALTailEdgeCases covers the protocol's refusals: offset past the
// end (400), offset mid-record (400), stream mismatch (410), missing
// WAL (503).
func TestWALTailEdgeCases(t *testing.T) {
	m := faultfs.NewMemFS()
	_, ts, _ := newDurableServer(t, m, paperSnapshotBytes(t), Config{})
	var created map[string]any
	if code := postJSON(t, ts.URL+"/v1/observations", insertBody("-edge"), &created); code != http.StatusCreated {
		t.Fatalf("insert: status %d", code)
	}
	resp, body := tailRaw(t, ts.URL, 0, "", "")
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("baseline tail: status %d, %d bytes", resp.StatusCode, len(body))
	}
	stream := resp.Header.Get(WALStreamHeader)
	end := header64(t, resp, WALEndHeader)

	// Past the durable end: the client computed a bogus offset.
	if resp, _ := tailRaw(t, ts.URL, end+100, stream, ""); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("offset past end: status %d, want 400", resp.StatusCode)
	}
	// Mid-record: inside the first frame.
	if resp, _ := tailRaw(t, ts.URL, 1, stream, ""); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mid-record offset: status %d, want 400", resp.StatusCode)
	}
	// Negative offset.
	if resp, _ := tailRaw(t, ts.URL, -1, stream, ""); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative offset: status %d, want 400", resp.StatusCode)
	}
	// Wrong stream: the follower tailed a previous incarnation; it must
	// re-bootstrap, and the answer names the current stream.
	resp, _ = tailRaw(t, ts.URL, 0, "deadbeefdeadbeef", "")
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("stream mismatch: status %d, want 410", resp.StatusCode)
	}
	if got := resp.Header.Get(WALStreamHeader); got != stream {
		t.Fatalf("410 names stream %q, want current %q", got, stream)
	}

	// A server with no WAL cannot replicate.
	_, noWAL := newPaperServer(t, Config{})
	if resp, _ := tailRaw(t, noWAL.URL, 0, "", ""); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("no-WAL tail: status %d, want 503", resp.StatusCode)
	}
}

// TestWALTailLongPollWakesOnInsert: a tail at the durable end parks
// until an insert lands, then returns the new record — the follower
// never busy-polls.
func TestWALTailLongPollWakesOnInsert(t *testing.T) {
	m := faultfs.NewMemFS()
	_, ts, _ := newDurableServer(t, m, paperSnapshotBytes(t), Config{})

	type tailResult struct {
		status int
		nrecs  int
		err    error
	}
	done := make(chan tailResult, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/v1/wal?from=0&wait=10s")
		if err != nil {
			done <- tailResult{err: err}
			return
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			done <- tailResult{err: err}
			return
		}
		recs, _, perr := wal.ParseFrames(data)
		if perr != nil {
			done <- tailResult{err: perr}
			return
		}
		done <- tailResult{status: resp.StatusCode, nrecs: len(recs)}
	}()

	// Give the poller time to park, then wake it with an insert.
	time.Sleep(50 * time.Millisecond)
	select {
	case r := <-done:
		t.Fatalf("long-poll returned before any insert: %+v", r)
	default:
	}
	var created map[string]any
	if code := postJSON(t, ts.URL+"/v1/observations", insertBody("-wake"), &created); code != http.StatusCreated {
		t.Fatalf("insert: status %d", code)
	}
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatalf("long-poll: %v", r.err)
		}
		if r.status != http.StatusOK || r.nrecs != 1 {
			t.Fatalf("long-poll woke with status %d, %d records; want 200 with 1", r.status, r.nrecs)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("long-poll never woke after the insert")
	}
}

// TestWALTailOffsetsSurviveCheckpoint: a checkpoint truncates the
// physical WAL, but logical offsets keep advancing — a caught-up
// follower's position stays valid (empty 200 at the end), while a
// position from before the truncation gets 410 and re-bootstraps.
func TestWALTailOffsetsSurviveCheckpoint(t *testing.T) {
	m := faultfs.NewMemFS()
	srv, ts, wlog := newDurableServer(t, m, paperSnapshotBytes(t), Config{})

	var created map[string]any
	if code := postJSON(t, ts.URL+"/v1/observations", insertBody("-ck1"), &created); code != http.StatusCreated {
		t.Fatalf("insert: status %d", code)
	}
	resp, body := tailRaw(t, ts.URL, 0, "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-checkpoint tail: %d", resp.StatusCode)
	}
	stream := resp.Header.Get(WALStreamHeader)
	caughtUp := header64(t, resp, WALNextHeader)
	if caughtUp == 0 || len(body) == 0 {
		t.Fatal("tail returned nothing before the checkpoint")
	}

	var sink []byte
	if err := srv.CheckpointWith(func(data []byte) error { sink = data; return nil }); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if len(sink) == 0 {
		t.Fatal("checkpoint wrote nothing")
	}
	if wlog.RecordBytes() != 0 {
		t.Fatalf("checkpoint left %d record bytes in the WAL", wlog.RecordBytes())
	}

	// The caught-up position is still valid after truncation.
	resp, body = tailRaw(t, ts.URL, caughtUp, stream, "&wait=1ms")
	if resp.StatusCode != http.StatusOK || len(body) != 0 {
		t.Fatalf("caught-up tail after checkpoint: status %d, %d bytes; want empty 200", resp.StatusCode, len(body))
	}
	// A position the truncation discarded is gone for good.
	if resp, _ := tailRaw(t, ts.URL, 0, stream, ""); resp.StatusCode != http.StatusGone {
		t.Fatalf("pre-truncation offset: status %d, want 410", resp.StatusCode)
	}

	// New inserts extend the logical stream past the checkpoint; the
	// caught-up follower reads exactly them.
	if code := postJSON(t, ts.URL+"/v1/observations", insertBody("-ck2"), &created); code != http.StatusCreated {
		t.Fatalf("insert: status %d", code)
	}
	resp, body = tailRaw(t, ts.URL, caughtUp, stream, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-checkpoint tail: %d", resp.StatusCode)
	}
	recs, _, err := wal.ParseFrames(body)
	if err != nil || len(recs) != 1 {
		t.Fatalf("post-checkpoint tail: %d records, err %v; want exactly the new record", len(recs), err)
	}
}

// TestFollowerRejectsWrites: a server wearing a FollowerState refuses
// inserts and recomputes with 503 plus the Leader redirect hint, while
// reads keep working.
func TestFollowerRejectsWrites(t *testing.T) {
	fs := &FollowerState{Leader: "http://leader.example:8080"}
	fs.MarkCaughtUp()
	_, ts := newPaperServer(t, Config{Follower: fs})

	resp, err := http.Post(ts.URL+"/v1/observations", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("follower insert: status %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get(LeaderHeader); got != fs.Leader {
		t.Fatalf("Leader header %q, want %q", got, fs.Leader)
	}
	resp, err = http.Post(ts.URL+"/v1/recompute", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("follower recompute: status %d, want 503", resp.StatusCode)
	}

	var rel map[string]any
	if code := getJSON(t, ts.URL+"/v1/related?obs=0", &rel); code != http.StatusOK {
		t.Fatalf("follower read: status %d", code)
	}
}

// TestFollowerReadyzStaleness: readiness follows the staleness bound —
// ready while fresh, 503/stale once MaxStaleness passes without a
// catch-up, ready again after the next catch-up.
func TestFollowerReadyzStaleness(t *testing.T) {
	fs := &FollowerState{Leader: "http://leader.example", MaxStaleness: 50 * time.Millisecond}
	fs.MarkCaughtUp()
	_, ts := newPaperServer(t, Config{Follower: fs})

	var ready struct {
		Status string `json:"status"`
		Role   string `json:"role"`
	}
	if code := getJSON(t, ts.URL+"/readyz", &ready); code != http.StatusOK {
		t.Fatalf("fresh follower readyz: status %d (%+v)", code, ready)
	}
	if ready.Role != "follower" {
		t.Fatalf("readyz role %q, want follower", ready.Role)
	}

	time.Sleep(80 * time.Millisecond)
	if code := getJSON(t, ts.URL+"/readyz", &ready); code != http.StatusServiceUnavailable || ready.Status != "stale" {
		t.Fatalf("stale follower readyz: status %d state %q, want 503 stale", code, ready.Status)
	}

	fs.MarkCaughtUp()
	if code := getJSON(t, ts.URL+"/readyz", &ready); code != http.StatusOK {
		t.Fatalf("re-caught-up readyz: status %d", code)
	}
}

// TestStatsReportsWALAndGeneration (satellite): /v1/stats must expose
// the WAL size, logical stream coordinates, and snapshot generation.
func TestStatsReportsWALAndGeneration(t *testing.T) {
	m := faultfs.NewMemFS()
	_, ts, wlog := newDurableServer(t, m, paperSnapshotBytes(t), Config{
		SnapshotGen: func() uint64 { return 7 },
	})
	var created map[string]any
	if code := postJSON(t, ts.URL+"/v1/observations", insertBody("-stats"), &created); code != http.StatusCreated {
		t.Fatalf("insert: status %d", code)
	}

	var stats struct {
		WALBytes   int64  `json:"walBytes"`
		WALStream  string `json:"walStream"`
		WALStart   int64  `json:"walStart"`
		WALEnd     int64  `json:"walEnd"`
		WALSeq     int64  `json:"walSeq"`
		Generation uint64 `json:"snapshotGeneration"`
		Role       string `json:"role"`
	}
	if code := getJSON(t, ts.URL+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if stats.WALBytes != wlog.Size() {
		t.Fatalf("stats walBytes %d, want %d", stats.WALBytes, wlog.Size())
	}
	if stats.WALStream == "" || stats.WALStart != 0 || stats.WALEnd != wlog.RecordBytes() || stats.WALSeq != 1 {
		t.Fatalf("stats stream coordinates wrong: %+v (record bytes %d)", stats, wlog.RecordBytes())
	}
	if stats.Generation != 7 {
		t.Fatalf("stats snapshotGeneration %d, want 7", stats.Generation)
	}
	if stats.Role != "primary" {
		t.Fatalf("stats role %q, want primary", stats.Role)
	}
}
