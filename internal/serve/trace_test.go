package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rdfcube/internal/faultfs"
	"rdfcube/internal/obsv"
)

// tracesResponse mirrors the /debug/traces payload.
type tracesResponse struct {
	Capacity int      `json:"capacity"`
	Recorded int64    `json:"recorded"`
	Traces   []*Trace `json:"traces"`
}

// TestTraceIDEchoAndGeneration: a client-supplied X-Request-Id is echoed
// on the response and attached to error bodies; an absent or oversized
// one is replaced with a generated ID.
func TestTraceIDEchoAndGeneration(t *testing.T) {
	_, ts := newPaperServer(t, Config{})

	// Supplied ID: echoed on the header and in a 400 error body.
	req, _ := http.NewRequest("GET", ts.URL+"/v1/related?obs=not-there", nil)
	req.Header.Set(TraceIDHeader, "client-chosen-id-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	if got := resp.Header.Get(TraceIDHeader); got != "client-chosen-id-1" {
		t.Errorf("header trace ID %q, want the client's", got)
	}
	if body["traceId"] != "client-chosen-id-1" {
		t.Errorf("error body traceId %q, want the client's; body=%v", body["traceId"], body)
	}

	// No ID: one is generated, and it is unique across requests.
	seen := map[string]bool{}
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		id := resp.Header.Get(TraceIDHeader)
		if id == "" {
			t.Fatal("no trace ID generated")
		}
		if seen[id] {
			t.Fatalf("trace ID %q repeated", id)
		}
		seen[id] = true
	}

	// Oversized ID: replaced, not echoed (the header is a correlation
	// token, not a payload channel).
	big := strings.Repeat("x", maxTraceIDLen+1)
	req, _ = http.NewRequest("GET", ts.URL+"/v1/stats", nil)
	req.Header.Set(TraceIDHeader, big)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(TraceIDHeader); got == big || got == "" {
		t.Errorf("oversized trace ID not replaced: %q", got)
	}
}

// TestDebugTracesRing: a real /v1/related request lands in the ring with
// a span tree naming the fan-out phases, and the query filters work.
func TestDebugTracesRing(t *testing.T) {
	_, ts := newPaperServer(t, Config{})

	req, _ := http.NewRequest("GET", ts.URL+"/v1/related?obs=0", nil)
	req.Header.Set(TraceIDHeader, "ring-probe")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("related: status %d", resp.StatusCode)
	}

	var tracesResp tracesResponse
	if code := getJSON(t, ts.URL+"/debug/traces?id=ring-probe", &tracesResp); code != http.StatusOK {
		t.Fatalf("/debug/traces: status %d", code)
	}
	if len(tracesResp.Traces) != 1 {
		t.Fatalf("got %d traces for id=ring-probe, want 1", len(tracesResp.Traces))
	}
	tr := tracesResp.Traces[0]
	if tr.Route != "related" || tr.Status != http.StatusOK || tr.ID != "ring-probe" {
		t.Fatalf("trace mis-recorded: %+v", tr)
	}
	if len(tr.Spans) != 1 || tr.Spans[0].Name != "related" {
		t.Fatalf("want one root span 'related', got %+v", tr.Spans)
	}
	names := map[string]bool{}
	for _, c := range tr.Spans[0].Children {
		names[c.Name] = true
	}
	for _, want := range []string{"resolve", "fanout.full", "fanout.partial", "fanout.complements"} {
		if !names[want] {
			t.Errorf("span tree missing child %q; have %v", want, names)
		}
	}

	// The /debug/traces request itself must NOT appear in the ring (it is
	// served unwrapped).
	var all tracesResponse
	getJSON(t, ts.URL+"/debug/traces", &all)
	for _, tr := range all.Traces {
		if tr.Route == "traces" || strings.HasPrefix(tr.Path, "/debug/") {
			t.Fatalf("/debug/traces polluted its own ring: %+v", tr)
		}
	}

	// Route filter and min_us filter.
	var filtered tracesResponse
	getJSON(t, ts.URL+"/debug/traces?route=related", &filtered)
	for _, tr := range filtered.Traces {
		if tr.Route != "related" {
			t.Fatalf("route filter leaked %+v", tr)
		}
	}
	getJSON(t, ts.URL+"/debug/traces?min_us=999999999", &filtered)
	if len(filtered.Traces) != 0 {
		t.Fatalf("min_us filter leaked %d traces", len(filtered.Traces))
	}
}

// TestTraceRingBounded: the ring retains at most its capacity, newest
// first, while counting every recorded trace.
func TestTraceRingBounded(t *testing.T) {
	_, ts := newPaperServer(t, Config{TraceRing: 4})
	for i := 0; i < 10; i++ {
		req, _ := http.NewRequest("GET", fmt.Sprintf("%s/v1/contains?obs=0", ts.URL), nil)
		req.Header.Set(TraceIDHeader, fmt.Sprintf("seq-%d", i))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	var got tracesResponse
	getJSON(t, ts.URL+"/debug/traces", &got)
	if got.Capacity != 4 || got.Recorded != 10 || len(got.Traces) != 4 {
		t.Fatalf("capacity=%d recorded=%d retained=%d, want 4/10/4", got.Capacity, got.Recorded, len(got.Traces))
	}
	if got.Traces[0].ID != "seq-9" || got.Traces[3].ID != "seq-6" {
		t.Fatalf("ring not newest-first: %q ... %q", got.Traces[0].ID, got.Traces[3].ID)
	}
}

// TestTraceIDSurvivesCancellation: the 499 (client hung up) and 504
// (deadline overrun) abandonment responses still carry the trace ID in
// both the header and the JSON body. Exercised through the middleware
// directly so the context state is deterministic.
func TestTraceIDSurvivesCancellation(t *testing.T) {
	srv, _ := newPaperServer(t, Config{})
	h := srv.wrap("related", srv.handleRelated)

	cases := []struct {
		name       string
		ctx        func() (context.Context, context.CancelFunc)
		wantStatus int
	}{
		{"client-hangup-499", func() (context.Context, context.CancelFunc) {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			return ctx, func() {}
		}, statusClientClosedRequest},
		{"deadline-504", func() (context.Context, context.CancelFunc) {
			return context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
		}, http.StatusGatewayTimeout},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ctx, cancel := tc.ctx()
			defer cancel()
			req := httptest.NewRequest("GET", "/v1/related?obs=0", nil).WithContext(ctx)
			req.Header.Set(TraceIDHeader, "abandoned-"+tc.name)
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			if w.Code != tc.wantStatus {
				t.Fatalf("status %d, want %d", w.Code, tc.wantStatus)
			}
			if got := w.Header().Get(TraceIDHeader); got != "abandoned-"+tc.name {
				t.Errorf("header trace ID %q lost on abandonment", got)
			}
			var body map[string]string
			if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
				t.Fatalf("body not JSON: %v (%q)", err, w.Body.String())
			}
			if body["traceId"] != "abandoned-"+tc.name {
				t.Errorf("body traceId %q lost on abandonment; body=%v", body["traceId"], body)
			}
		})
	}
}

// TestSlowQueryLog: a request at or over the threshold is written to the
// log as one JSON line correlating with its ring entry by trace ID.
func TestSlowQueryLog(t *testing.T) {
	var buf bytes.Buffer
	srv, _ := newPaperServer(t, Config{SlowThreshold: time.Millisecond, SlowLog: &buf})

	// Deterministically slow handler through the same middleware.
	h := srv.wrap("sleepy", func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(3 * time.Millisecond)
		writeJSON(w, http.StatusOK, map[string]string{"ok": "1"})
	})
	req := httptest.NewRequest("GET", "/sleepy", nil)
	req.Header.Set(TraceIDHeader, "slow-1")
	h.ServeHTTP(httptest.NewRecorder(), req)

	// A fast request stays out of the log.
	fast := srv.wrap("fast", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"ok": "1"})
	})
	fast.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/fast", nil))

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("slow log has %d lines, want 1: %q", len(lines), buf.String())
	}
	var entry struct {
		TS         string `json:"ts"`
		TraceID    string `json:"traceId"`
		Route      string `json:"route"`
		DurationUs int64  `json:"durationUs"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &entry); err != nil {
		t.Fatalf("slow log line not JSON: %v (%q)", err, lines[0])
	}
	if entry.TraceID != "slow-1" || entry.Route != "sleepy" || entry.DurationUs < 1000 || entry.TS == "" {
		t.Fatalf("slow log entry wrong: %+v", entry)
	}
}

// TestStatsLatencyQuantiles: with a Collector recorder, /v1/stats gains a
// latency object carrying count, mean and quantiles.
func TestStatsLatencyQuantiles(t *testing.T) {
	col := obsv.NewCollector()
	_, ts := newPaperServer(t, Config{Recorder: col})
	for i := 0; i < 5; i++ {
		resp, err := http.Get(ts.URL + "/v1/contains?obs=0")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	var stats struct {
		Latency *obsv.QuantileSummary `json:"latency"`
	}
	if code := getJSON(t, ts.URL+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("/v1/stats: status %d", code)
	}
	if stats.Latency == nil {
		t.Fatal("stats missing latency quantiles")
	}
	if stats.Latency.Count < 5 {
		t.Fatalf("latency count %d, want >= 5", stats.Latency.Count)
	}
	if stats.Latency.P99 < stats.Latency.P50 || stats.Latency.Mean <= 0 {
		t.Fatalf("implausible latency summary: %+v", stats.Latency)
	}
}

// TestInsertTraceSpans: an insert's trace names the write path phases
// (lock wait, validation, WAL append, incremental apply), and the WAL
// append latency feeds its histogram.
func TestInsertTraceSpans(t *testing.T) {
	col := obsv.NewCollector()
	srv, ts := newDurableServerForTrace(t, col)

	body := map[string]any{
		"dataset": srv.inc.S.Corpus.Datasets[0].URI.Value,
		"uri":     "http://example.org/obs/traced-insert",
	}
	var out map[string]any
	data, _ := json.Marshal(body)
	req, _ := http.NewRequest("POST", ts.URL+"/v1/observations", bytes.NewReader(data))
	req.Header.Set(TraceIDHeader, "insert-probe")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("insert: status %d body %v", resp.StatusCode, out)
	}

	var traces tracesResponse
	getJSON(t, ts.URL+"/debug/traces?id=insert-probe", &traces)
	if len(traces.Traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces.Traces))
	}
	names := map[string]bool{}
	for _, c := range traces.Traces[0].Spans[0].Children {
		names[c.Name] = true
	}
	for _, want := range []string{"lock.wait", "validate", "wal.append", "apply"} {
		if !names[want] {
			t.Errorf("insert trace missing span %q; have %v", want, names)
		}
	}
	if s, ok := col.HistSnapshot(HistWALAppend); !ok || s.Count != 1 {
		t.Errorf("WAL append histogram not recorded: ok=%v %+v", ok, s)
	}
	// The Space recorder must be restored (not left feeding the trace).
	if got := srv.inc.S.Recorder(); got != obsv.Recorder(col) {
		t.Errorf("space recorder not restored after insert: %T", got)
	}
}

// newDurableServerForTrace builds a WAL-backed paper server over a MemFS
// so the wal.append span and histogram exist.
func newDurableServerForTrace(t *testing.T, col *obsv.Collector) (*Server, *httptest.Server) {
	t.Helper()
	srv, ts, _ := newDurableServer(t, faultfs.NewMemFS(), paperSnapshotBytes(t), Config{Recorder: col})
	return srv, ts
}

// TestRecomputeTraceAndRecorderRestore: a recompute's trace embeds the
// kernel's phase spans, and the Space's recorder is restored afterwards
// so later kernel work does not feed a dead request's trace.
func TestRecomputeTraceAndRecorderRestore(t *testing.T) {
	col := obsv.NewCollector()
	srv, ts := newPaperServer(t, Config{Recorder: col})

	req, _ := http.NewRequest("POST", ts.URL+"/v1/recompute", nil)
	req.Header.Set(TraceIDHeader, "recompute-probe")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recompute: status %d", resp.StatusCode)
	}

	var traces tracesResponse
	getJSON(t, ts.URL+"/debug/traces?id=recompute-probe", &traces)
	if len(traces.Traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces.Traces))
	}
	root := traces.Traces[0].Spans[0]
	if root.Name != "recompute" || len(root.Children) == 0 {
		t.Fatalf("recompute trace has no kernel phase spans: %+v", root)
	}
	if got := srv.inc.S.Recorder(); got != obsv.Recorder(col) {
		t.Errorf("space recorder not restored after recompute: %T", got)
	}
}
