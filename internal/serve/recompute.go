package serve

import (
	"context"
	"errors"
	"net/http"
	"time"

	"rdfcube/internal/core"
	"rdfcube/internal/obsv"
)

// handleRecompute runs a full batch recompute of the relationship sets
// over the current space with the configured algorithm, replacing the
// maintained result and adjacency on success. The endpoint is the
// service-level fix for incremental drift (clustering-maintained states
// are lossy; a batch cubeMasking pass restores recall 1) and the natural
// stress case for graceful degradation:
//
//   - The kernel runs under a context merged from the request context,
//     the server's shutdown context and RecomputeTimeout, so a vanished
//     client, a SIGTERM or an overrun deadline all cancel the scan at the
//     next pair-budget poll — no more uncancellable Θ(n²) work.
//   - A canceled or failed recompute DISCARDS the partial result and
//     keeps serving the previous state: degraded but consistent beats
//     fresh but half-built.
//   - Kernel failures feed the circuit breaker; after BreakerThreshold
//     consecutive failures the endpoint trips open and refuses further
//     recomputes with 503 + jittered Retry-After until a half-open probe
//     succeeds. Client hang-ups (499) are not kernel failures and do not
//     charge the breaker.
//
// The route is registered OUTSIDE the http.TimeoutHandler wrapping the
// query API: a recompute legitimately outlives the per-request timeout
// and is bounded by RecomputeTimeout instead.
func (s *Server) handleRecompute(w http.ResponseWriter, r *http.Request) {
	if s.follower != nil {
		// A recompute swaps the maintained state — a logical write, so a
		// replica refuses it the same way it refuses inserts.
		s.rejectWrite(w, r)
		return
	}
	if ok, wait := s.breaker.Allow(time.Now()); !ok {
		s.count(CtrBreakerOpen, 1)
		state, fails := s.breaker.Snapshot()
		s.setRetryAfter(w, wait)
		s.error(w, r, http.StatusServiceUnavailable,
			"recompute circuit %s after %d consecutive kernel failures; serving last good state, retry later", state, fails)
		return
	}
	if !s.recomputing.CompareAndSwap(false, true) {
		// One recompute at a time: the second request sheds instead of
		// queueing behind a write lock for minutes.
		s.breaker.Success() // the admitted slot was never used; don't leak a half-open probe
		s.setRetryAfter(w, 2*time.Second)
		s.error(w, r, http.StatusTooManyRequests, "a recompute is already running")
		return
	}
	defer s.recomputing.Store(false)

	// Merge the cancellation sources: request context (client hang-up),
	// RecomputeTimeout (bounded latency), server shutdown (SIGTERM must
	// stop in-flight computes).
	ctx, cancel := context.WithTimeout(r.Context(), s.recomputeTimeout)
	defer cancel()
	stop := context.AfterFunc(s.runCtx, cancel)
	defer stop()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ctxAbort(w, r) {
		return
	}

	res := core.NewResult()
	// The kernel's phase spans and pruning counters go to the global
	// recorder AND the request's trace, so /debug/traces shows the
	// recompute's compare/cluster phases nested under the route span.
	// ComputeCtx attaches opts.Obs to the Space and leaves it attached;
	// restore the server's recorder so later inserts don't keep feeding
	// a dead request's trace.
	obs := s.rec
	if tr := traceFrom(r.Context()); tr != nil {
		obs = obsv.Multi(s.rec, tr.tc)
	}
	defer s.inc.S.SetRecorder(s.rec)
	opts := core.Options{Tasks: s.tasks, Workers: s.workers, Obs: obs}
	start := time.Now()
	err := core.ComputeCtx(ctx, s.inc.S, s.alg, opts, res)
	if err != nil {
		s.recomputeError(w, r, err)
		return
	}
	s.breaker.Success()
	res.Sort()
	// Swap in the fresh state. The lattice depends only on the space,
	// which a recompute does not change, so it carries over.
	s.inc = core.NewIncrementalFrom(s.inc.S, s.tasks, res, s.inc.Lattice())
	s.adj = newAdjacency(s.inc.S.N(), res)
	s.count(CtrRecomputes, 1)
	f, p, c := res.Counts()
	writeJSON(w, http.StatusOK, map[string]any{
		"algorithm":      string(s.alg),
		"full":           f,
		"partial":        p,
		"complementary":  c,
		"elapsedSeconds": time.Since(start).Seconds(),
	})
}

// recomputeError classifies a failed recompute: who canceled it decides
// the status code and whether the breaker is charged.
func (s *Server) recomputeError(w http.ResponseWriter, r *http.Request, err error) {
	if errors.Is(err, core.ErrCanceled) {
		s.count(CtrCanceled, 1)
		switch {
		case s.runCtx.Err() != nil:
			// Shutdown canceled the compute: not a kernel failure.
			s.error(w, r, http.StatusServiceUnavailable, "server shutting down; recompute canceled")
		case r.Context().Err() != nil && !errors.Is(r.Context().Err(), context.DeadlineExceeded):
			// The client hung up: their problem, not the kernel's.
			s.error(w, r, statusClientClosedRequest, "client closed request; recompute canceled, previous state kept")
		default:
			// RecomputeTimeout overrun: the kernel is too slow for the
			// budget — that IS a service failure; charge the breaker.
			if s.breaker.Failure(time.Now()) {
				state, fails := s.breaker.Snapshot()
				s.log("recompute breaker %s after %d consecutive failures (last: %v)", state, fails, err)
			}
			s.error(w, r, http.StatusGatewayTimeout, "recompute exceeded its deadline; partial result discarded, previous state kept")
		}
		return
	}
	// Hard kernel failure (e.g. a twice-panicked shard).
	if s.breaker.Failure(time.Now()) {
		state, fails := s.breaker.Snapshot()
		s.log("recompute breaker %s after %d consecutive failures (last: %v)", state, fails, err)
	}
	s.error(w, r, http.StatusInternalServerError, "recompute failed: %v; previous state kept", err)
}
