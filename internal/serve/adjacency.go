package serve

import (
	"sort"

	"rdfcube/internal/core"
)

// adjacency is the inverted per-observation view of a core.Result: for
// every observation, who it contains, who contains it, who it partially
// contains (both directions) and who complements it. It is what turns the
// paper's batch sets S_F/S_P/S_C into O(1) fan-out answers for
// /v1/related, and — unlike core.Index — it is growable, so a live insert
// applies its relationship delta without rebuilding.
//
// adjacency carries no lock of its own; the owning Server's RWMutex
// guards every access.
type adjacency struct {
	contains    [][]int32 // contains[i]: observations i fully contains
	containedBy [][]int32 // containedBy[i]: observations fully containing i
	partials    [][]int32 // partials[i]: observations i partially contains
	partialBy   [][]int32 // partialBy[i]: observations partially containing i
	complements [][]int32 // complements[i]: complementary partners of i
}

// newAdjacency inverts res over n observations.
func newAdjacency(n int, res *core.Result) *adjacency {
	a := &adjacency{
		contains:    make([][]int32, n),
		containedBy: make([][]int32, n),
		partials:    make([][]int32, n),
		partialBy:   make([][]int32, n),
		complements: make([][]int32, n),
	}
	for _, p := range res.FullSet {
		a.addFull(p)
	}
	for _, p := range res.PartialSet {
		a.addPartial(p)
	}
	for _, p := range res.ComplSet {
		a.addCompl(p)
	}
	a.sortAll()
	return a
}

// grow extends the lists to cover n observations.
func (a *adjacency) grow(n int) {
	for len(a.contains) < n {
		a.contains = append(a.contains, nil)
		a.containedBy = append(a.containedBy, nil)
		a.partials = append(a.partials, nil)
		a.partialBy = append(a.partialBy, nil)
		a.complements = append(a.complements, nil)
	}
}

func (a *adjacency) addFull(p core.Pair) {
	a.contains[p.A] = append(a.contains[p.A], int32(p.B))
	a.containedBy[p.B] = append(a.containedBy[p.B], int32(p.A))
}

func (a *adjacency) addPartial(p core.Pair) {
	a.partials[p.A] = append(a.partials[p.A], int32(p.B))
	a.partialBy[p.B] = append(a.partialBy[p.B], int32(p.A))
}

func (a *adjacency) addCompl(p core.Pair) {
	a.complements[p.A] = append(a.complements[p.A], int32(p.B))
	a.complements[p.B] = append(a.complements[p.B], int32(p.A))
}

func (a *adjacency) sortAll() {
	for _, lists := range [][][]int32{a.contains, a.containedBy, a.partials, a.partialBy, a.complements} {
		for _, l := range lists {
			sortInt32(l)
		}
	}
}

// applyDelta folds the relationships discovered by one insert (the tail of
// the result sets past the recorded lengths) into the adjacency. Existing
// partner lists stay sorted because the inserted observation's index is the
// largest; only the new observation's own lists need a sort.
func (a *adjacency) applyDelta(res *core.Result, idx, f0, p0, c0 int) {
	a.grow(idx + 1)
	for _, p := range res.FullSet[f0:] {
		a.addFull(p)
	}
	for _, p := range res.PartialSet[p0:] {
		a.addPartial(p)
	}
	for _, p := range res.ComplSet[c0:] {
		a.addCompl(p)
	}
	sortInt32(a.contains[idx])
	sortInt32(a.containedBy[idx])
	sortInt32(a.partials[idx])
	sortInt32(a.partialBy[idx])
	sortInt32(a.complements[idx])
}

func sortInt32(l []int32) {
	sort.Slice(l, func(i, j int) bool { return l[i] < l[j] })
}
