// Package csvqb converts CSV statistical tables into QB corpora, the
// ingestion path the paper describes for its non-RDF sources: "We
// converted CSV column headers to dimension URIs, and rows to
// observations, by automatically matching cell values to existing code
// list terms based on their IDs."
//
// Columns are classified as dimensions (their cells resolve to code-list
// terms of a registered hierarchy) or measures (numeric cells); cell
// values match code terms by identifier — exactly, then case-folded, then
// via the align package's string matcher when enabled.
package csvqb

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"rdfcube/internal/align"
	"rdfcube/internal/hierarchy"
	"rdfcube/internal/qb"
	"rdfcube/internal/rdf"
)

// Options configure a conversion.
type Options struct {
	// DatasetURI identifies the resulting dataset. Empty derives one from
	// the base namespace.
	DatasetURI string
	// BaseNS is the namespace for generated observation URIs; empty means
	// "http://example.org/csv/".
	BaseNS string
	// DimensionFor maps a CSV header to its dimension property. Headers
	// without an entry are matched against the registry's dimension local
	// names; unmatched non-numeric columns are an error.
	DimensionFor map[string]rdf.Term
	// MeasureFor maps a CSV header to its measure property. Headers
	// without an entry that hold numeric cells become measures in BaseNS.
	MeasureFor map[string]rdf.Term
	// FuzzyCodes enables align-based matching for cell values that do not
	// resolve exactly (case-insensitively) to a code term identifier.
	FuzzyCodes bool
	// FuzzyThreshold is the minimum similarity for fuzzy matches; zero
	// means 0.85.
	FuzzyThreshold float64
}

func (o Options) baseNS() string {
	if o.BaseNS == "" {
		return "http://example.org/csv/"
	}
	return o.BaseNS
}

// Convert reads one CSV table (header row first) and produces a dataset
// inside a fresh corpus backed by the given code-list registry.
func Convert(r io.Reader, reg *hierarchy.Registry, opts Options) (*qb.Corpus, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("csvqb: reading header: %w", err)
	}
	if len(header) == 0 {
		return nil, fmt.Errorf("csvqb: empty header")
	}
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("csvqb: reading rows: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("csvqb: no data rows")
	}

	cols, err := classifyColumns(header, rows, reg, opts)
	if err != nil {
		return nil, err
	}

	var dims, measures []rdf.Term
	for _, c := range cols {
		if c.isDim {
			dims = append(dims, c.prop)
		} else {
			measures = append(measures, c.prop)
		}
	}
	if len(dims) == 0 {
		return nil, fmt.Errorf("csvqb: no dimension columns recognized")
	}
	if len(measures) == 0 {
		return nil, fmt.Errorf("csvqb: no measure columns recognized")
	}

	dsURI := opts.DatasetURI
	if dsURI == "" {
		dsURI = opts.baseNS() + "dataset"
	}
	corpus := qb.NewCorpus(reg)
	ds := &qb.Dataset{URI: rdf.NewIRI(dsURI), Schema: qb.NewSchema(dims, measures)}

	matcher := newCodeMatcher(reg, opts)
	for ri, row := range rows {
		if len(row) != len(cols) {
			return nil, fmt.Errorf("csvqb: row %d has %d cells, header has %d", ri+2, len(row), len(cols))
		}
		dimVals := make([]rdf.Term, len(ds.Schema.Dimensions))
		meaVals := make([]rdf.Term, len(ds.Schema.Measures))
		for ci, c := range cols {
			cell := strings.TrimSpace(row[ci])
			if c.isDim {
				code, err := matcher.resolve(c.prop, cell)
				if err != nil {
					return nil, fmt.Errorf("csvqb: row %d column %q: %w", ri+2, header[ci], err)
				}
				dimVals[ds.Schema.DimIndex(c.prop)] = code
			} else {
				meaVals[ds.Schema.MeasureIndex(c.prop)] = numericLiteral(cell)
			}
		}
		uri := rdf.NewIRI(fmt.Sprintf("%sobs/%d", opts.baseNS(), ri))
		if _, err := ds.AddObservation(uri, dimVals, meaVals); err != nil {
			return nil, err
		}
	}
	corpus.AddDataset(ds)
	return corpus, nil
}

// column is a classified CSV column.
type column struct {
	prop  rdf.Term
	isDim bool
}

// classifyColumns decides, per header, whether the column is a dimension
// (explicit mapping, or a registry dimension with a matching local name)
// or a measure (explicit mapping, or numeric cells).
func classifyColumns(header []string, rows [][]string, reg *hierarchy.Registry, opts Options) ([]column, error) {
	byLocal := map[string]rdf.Term{}
	for _, d := range reg.Dimensions() {
		byLocal[strings.ToLower(d.Local())] = d
	}
	out := make([]column, len(header))
	for i, h := range header {
		name := strings.TrimSpace(h)
		if dim, ok := opts.DimensionFor[name]; ok {
			out[i] = column{prop: dim, isDim: true}
			continue
		}
		if m, ok := opts.MeasureFor[name]; ok {
			out[i] = column{prop: m}
			continue
		}
		if dim, ok := byLocal[strings.ToLower(name)]; ok {
			out[i] = column{prop: dim, isDim: true}
			continue
		}
		if columnNumeric(rows, i) {
			out[i] = column{prop: rdf.NewIRI(opts.baseNS() + "measure/" + sanitize(name))}
			continue
		}
		return nil, fmt.Errorf("csvqb: column %q is neither a known dimension nor numeric", name)
	}
	return out, nil
}

func columnNumeric(rows [][]string, col int) bool {
	seen := false
	for _, row := range rows {
		if col >= len(row) {
			return false
		}
		cell := strings.TrimSpace(row[col])
		if cell == "" {
			continue
		}
		seen = true
		if _, err := strconv.ParseFloat(strings.ReplaceAll(cell, ",", ""), 64); err != nil {
			return false
		}
	}
	return seen
}

func numericLiteral(cell string) rdf.Term {
	clean := strings.ReplaceAll(cell, ",", "")
	if clean == "" {
		return rdf.Term{}
	}
	if _, err := strconv.ParseInt(clean, 10, 64); err == nil {
		return rdf.NewTypedLiteral(clean, rdf.XSDInteger)
	}
	return rdf.NewTypedLiteral(clean, rdf.XSDDecimal)
}

func sanitize(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('_')
		}
	}
	return b.String()
}

// codeMatcher resolves cell identifiers to code terms per dimension, with
// exact, case-folded and optional fuzzy stages. Resolutions are cached.
type codeMatcher struct {
	reg   *hierarchy.Registry
	opts  Options
	exact map[rdf.Term]map[string]rdf.Term // dim -> identifier -> code
	cache map[rdf.Term]map[string]rdf.Term // dim -> raw cell -> code
}

func newCodeMatcher(reg *hierarchy.Registry, opts Options) *codeMatcher {
	return &codeMatcher{
		reg:   reg,
		opts:  opts,
		exact: map[rdf.Term]map[string]rdf.Term{},
		cache: map[rdf.Term]map[string]rdf.Term{},
	}
}

func (m *codeMatcher) table(dim rdf.Term) map[string]rdf.Term {
	if t, ok := m.exact[dim]; ok {
		return t
	}
	t := map[string]rdf.Term{}
	cl := m.reg.Get(dim)
	if cl != nil {
		for _, c := range cl.Codes() {
			t[strings.ToLower(c.Local())] = c
		}
	}
	m.exact[dim] = t
	return t
}

func (m *codeMatcher) resolve(dim rdf.Term, cell string) (rdf.Term, error) {
	if cell == "" {
		cl := m.reg.Get(dim)
		if cl == nil {
			return rdf.Term{}, fmt.Errorf("no code list for dimension %s", dim)
		}
		return cl.Root, nil // empty cell means no specialization, i.e. ALL
	}
	if c, ok := m.cache[dim][cell]; ok {
		return c, nil
	}
	t := m.table(dim)
	code, ok := t[strings.ToLower(cell)]
	if !ok && m.opts.FuzzyCodes {
		threshold := m.opts.FuzzyThreshold
		if threshold == 0 {
			threshold = 0.85
		}
		cl := m.reg.Get(dim)
		links := align.Match(
			[]rdf.Term{rdf.NewLiteral(cell)}, // literal: Local() is the cell text
			cl.Codes(),
			align.Config{Threshold: threshold},
		)
		if len(links) == 1 {
			code, ok = links[0].Target, true
		}
	}
	if !ok {
		return rdf.Term{}, fmt.Errorf("cell %q matches no code of %s", cell, dim)
	}
	if m.cache[dim] == nil {
		m.cache[dim] = map[string]rdf.Term{}
	}
	m.cache[dim][cell] = code
	return code, nil
}
