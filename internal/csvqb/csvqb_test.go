package csvqb

import (
	"strings"
	"testing"

	"rdfcube/internal/core"
	"rdfcube/internal/gen"
	"rdfcube/internal/rdf"
)

const sampleCSV = `refArea,refPeriod,sex,population
Athens,Y2001,Total,5000000
Austin,Y2011,Male,445000
Austin,Y2011,Total,885000
`

func TestConvertBasic(t *testing.T) {
	reg := gen.PaperHierarchies()
	corpus, err := Convert(strings.NewReader(sampleCSV), reg, Options{
		DimensionFor: map[string]rdf.Term{
			"refArea":   gen.DimRefArea,
			"refPeriod": gen.DimRefPeriod,
			"sex":       gen.DimSex,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if corpus.NumObservations() != 3 {
		t.Fatalf("observations = %d", corpus.NumObservations())
	}
	if err := corpus.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	ds := corpus.Datasets[0]
	if len(ds.Schema.Dimensions) != 3 || len(ds.Schema.Measures) != 1 {
		t.Fatalf("schema: %d dims, %d measures", len(ds.Schema.Dimensions), len(ds.Schema.Measures))
	}
	o := ds.Observations[0]
	if o.Value(gen.DimRefArea) != gen.GeoAthens {
		t.Errorf("refArea = %v", o.Value(gen.DimRefArea))
	}
	if o.MeasureValues[0].Value != "5000000" {
		t.Errorf("measure = %v", o.MeasureValues[0])
	}
}

func TestConvertHeaderNameMatching(t *testing.T) {
	// Headers matching registry dimension local names need no explicit map.
	reg := gen.PaperHierarchies()
	corpus, err := Convert(strings.NewReader(sampleCSV), reg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if corpus.NumObservations() != 3 {
		t.Errorf("observations = %d", corpus.NumObservations())
	}
}

func TestConvertEmptyCellMeansRoot(t *testing.T) {
	reg := gen.PaperHierarchies()
	csv := "refArea,refPeriod,sex,population\nAthens,Y2001,,100\n"
	corpus, err := Convert(strings.NewReader(csv), reg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	o := corpus.Datasets[0].Observations[0]
	if o.Value(gen.DimSex) != gen.SexTotal {
		t.Errorf("empty sex cell must resolve to the root: %v", o.Value(gen.DimSex))
	}
}

func TestConvertCaseInsensitiveCodes(t *testing.T) {
	reg := gen.PaperHierarchies()
	csv := "refArea,refPeriod,sex,population\nATHENS,y2001,TOTAL,1\n"
	corpus, err := Convert(strings.NewReader(csv), reg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if corpus.Datasets[0].Observations[0].Value(gen.DimRefArea) != gen.GeoAthens {
		t.Errorf("case-insensitive code match failed")
	}
}

func TestConvertFuzzyCodes(t *testing.T) {
	reg := gen.PaperHierarchies()
	csv := "refArea,refPeriod,sex,population\nAthens_GR,Y2001,Total,1\n"
	if _, err := Convert(strings.NewReader(csv), reg, Options{}); err == nil {
		t.Fatalf("unmatched code must fail without fuzzy matching")
	}
	corpus, err := Convert(strings.NewReader(csv), reg, Options{FuzzyCodes: true, FuzzyThreshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if corpus.Datasets[0].Observations[0].Value(gen.DimRefArea) != gen.GeoAthens {
		t.Errorf("fuzzy match failed: %v", corpus.Datasets[0].Observations[0].Value(gen.DimRefArea))
	}
}

func TestConvertNumericDetectionAndCommas(t *testing.T) {
	reg := gen.PaperHierarchies()
	csv := "refArea,refPeriod,sex,headcount\nAthens,Y2001,Total,\"82,350,000\"\n"
	corpus, err := Convert(strings.NewReader(csv), reg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := corpus.Datasets[0].Observations[0].MeasureValues[0]
	if m.Value != "82350000" || m.Datatype != rdf.XSDInteger {
		t.Errorf("comma-grouped integer: %v", m)
	}
	if corpus.Datasets[0].Schema.Measures[0].Local() != "headcount" {
		t.Errorf("generated measure name: %v", corpus.Datasets[0].Schema.Measures[0])
	}
}

func TestConvertErrors(t *testing.T) {
	reg := gen.PaperHierarchies()
	cases := map[string]string{
		"empty":        "",
		"headerOnly":   "refArea,population\n",
		"unknownCol":   "refArea,mystery\nAthens,notanumber\n",
		"badCode":      "refArea,refPeriod,sex,population\nAtlantis,Y2001,Total,5\n",
		"raggedRow":    "refArea,refPeriod,sex,population\nAthens,Y2001,Total\n",
		"noDimensions": "population\n5\n",
	}
	for name, src := range cases {
		if _, err := Convert(strings.NewReader(src), reg, Options{}); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

// TestConvertFeedsAlgorithms runs the full pipeline: CSV in, relationships
// out — the ingestion path the paper used for its non-RDF sources.
func TestConvertFeedsAlgorithms(t *testing.T) {
	reg := gen.PaperHierarchies()
	popCSV := "refArea,refPeriod,sex,population\nGreece,Y2011,Total,10800000\nAthens,Y2011,Total,3090000\n"
	corpus, err := Convert(strings.NewReader(popCSV), reg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.NewSpace(corpus)
	if err != nil {
		t.Fatal(err)
	}
	res := core.NewResult()
	core.CubeMasking(s, core.TaskAll, res, core.CubeMaskOptions{})
	if len(res.FullSet) != 1 {
		t.Fatalf("expected one containment pair, got %v", res.FullSet)
	}
	a := s.Obs[res.FullSet[0].A].Value(gen.DimRefArea)
	if a != gen.GeoGreece {
		t.Errorf("containing observation must be Greece-level, got %v", a)
	}
}

func TestConvertMultipleMeasures(t *testing.T) {
	reg := gen.PaperHierarchies()
	csv := "refArea,refPeriod,unemployment,poverty\nGreece,Y2011,26,15\nItaly,Y2011,20,10\n"
	corpus, err := Convert(strings.NewReader(csv), reg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sch := corpus.Datasets[0].Schema
	if len(sch.Measures) != 2 {
		t.Fatalf("measures = %d, want 2", len(sch.Measures))
	}
	o := corpus.Datasets[0].Observations[0]
	nonzero := 0
	for _, v := range o.MeasureValues {
		if !v.IsZero() {
			nonzero++
		}
	}
	if nonzero != 2 {
		t.Errorf("both measures must be populated: %v", o.MeasureValues)
	}
}

func TestConvertEmptyMeasureCell(t *testing.T) {
	reg := gen.PaperHierarchies()
	csv := "refArea,refPeriod,population\nGreece,Y2011,100\nItaly,Y2011,\n"
	corpus, err := Convert(strings.NewReader(csv), reg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	o := corpus.Datasets[0].Observations[1]
	if !o.MeasureValues[0].IsZero() {
		t.Errorf("empty measure cell must stay unset: %v", o.MeasureValues[0])
	}
}
