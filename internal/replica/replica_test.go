package replica

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rdfcube/internal/core"
	"rdfcube/internal/faultfs"
	"rdfcube/internal/gen"
	"rdfcube/internal/leakcheck"
	"rdfcube/internal/serve"
	"rdfcube/internal/snapshot"
	"rdfcube/internal/wal"
)

// primaryWorld is a WAL-backed primary for replica tests.
type primaryWorld struct {
	mem  *faultfs.MemFS
	srv  *serve.Server
	wlog *wal.Log
	ts   *httptest.Server
	n    int
}

func newPrimary(t *testing.T) *primaryWorld {
	t.Helper()
	p := &primaryWorld{mem: faultfs.NewMemFS()}
	s, err := core.NewSpace(gen.PaperExample())
	if err != nil {
		t.Fatal(err)
	}
	res := core.NewResult()
	l := core.CubeMasking(s, core.TaskAll, res, core.CubeMaskOptions{})
	res.Sort()
	p.wlog, _, err = wal.Open(p.mem, "cube.wal")
	if err != nil {
		t.Fatal(err)
	}
	// The checkpoint hook is what cubed wires in production: dataset
	// registrations cannot ride the WAL, so POST /v1/datasets runs one
	// synchronous checkpoint — which truncates the WAL out from under any
	// lagging follower. The tests below exercise exactly that.
	cfg := serve.Config{
		WAL:           p.wlog,
		WALPollWait:   100 * time.Millisecond,
		CheckpointNow: func() error { return p.srv.CheckpointWith(func([]byte) error { return nil }) },
	}
	p.srv, err = serve.New(snapshot.New(s, res, l), cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.ts = httptest.NewServer(p.srv.Handler())
	t.Cleanup(func() {
		p.ts.Close()
		p.wlog.Close()
	})
	return p
}

// insert lands one observation on the primary and returns its URI.
func (p *primaryWorld) insert(t *testing.T) string {
	t.Helper()
	return p.insertInto(t, gen.ExNS+"dataset/D3")
}

// insertInto lands one observation into the given dataset. Every
// dataset in these tests shares D3's refArea/refPeriod/unemployment
// schema, so the body shape never varies.
func (p *primaryWorld) insertInto(t *testing.T, dataset string) string {
	t.Helper()
	p.n++
	uri := fmt.Sprintf("%sobs/repl-%d", gen.ExNS, p.n)
	body, _ := json.Marshal(map[string]any{
		"dataset": dataset,
		"uri":     uri,
		"dimensions": map[string]string{
			gen.DimRefArea.Value:   gen.GeoAthens.Value,
			gen.DimRefPeriod.Value: gen.TimeJan.Value,
		},
		"measures": map[string]string{gen.MeasUnemployment.Value: "0.42"},
	})
	resp, err := http.Post(p.ts.URL+"/v1/observations", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("insert %s: status %d", uri, resp.StatusCode)
	}
	return uri
}

// runFollower starts f.Run in a goroutine and returns a stopper that
// cancels it and waits for the exit-path checkpoint to finish.
func runFollower(t *testing.T, f *Follower) (stop func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = f.Run(ctx)
	}()
	stopped := false
	stop = func() {
		if stopped {
			return
		}
		stopped = true
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("follower Run did not exit")
		}
	}
	t.Cleanup(stop)
	return stop
}

// waitHas polls the follower's read API until uri answers 200.
func waitHas(t *testing.T, f *Follower, uri string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if srv := f.Server(); srv != nil {
			req := httptest.NewRequest("GET", "/v1/contains?obs="+uri, nil)
			rec := httptest.NewRecorder()
			f.Handler().ServeHTTP(rec, req)
			if rec.Code == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never served %s", uri)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFollowerResumesFromLocalChain is the restart contract: a follower
// that replicated, stopped, and restarted over the same local disk must
// resume tailing from its persisted position — no snapshot re-transfer —
// and still converge on records that landed while it was down.
func TestFollowerResumesFromLocalChain(t *testing.T) {
	p := newPrimary(t)
	uriBefore := p.insert(t)

	disk := faultfs.NewMemFS()
	cfg := Config{
		Primary:       p.ts.URL,
		FS:            disk,
		SnapshotPath:  "replica.bin",
		PollWait:      50 * time.Millisecond,
		ReconnectBase: 10 * time.Millisecond,
		ReconnectMax:  100 * time.Millisecond,
		Logf:          t.Logf,
	}
	f1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stop1 := runFollower(t, f1)
	waitHas(t, f1, uriBefore)
	if got := f1.State().Bootstraps(); got != 1 {
		t.Fatalf("first incarnation bootstrapped %d times, want 1", got)
	}
	uriWhileUp := p.insert(t)
	waitHas(t, f1, uriWhileUp)
	stop1() // graceful: checkpoints the local chain

	// Records landing while the follower is down must arrive via the WAL
	// tail after resume, not via a fresh snapshot.
	uriWhileDown := p.insert(t)

	f2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	runFollower(t, f2)
	waitHas(t, f2, uriBefore)
	waitHas(t, f2, uriWhileUp)
	waitHas(t, f2, uriWhileDown)
	if got := f2.State().Bootstraps(); got != 0 {
		t.Fatalf("restart bootstrapped %d times; want 0 (resume from the local chain)", got)
	}
}

// TestFollowerLocalCheckpointBoundsChain: with a tiny CheckpointBytes
// the local WAL must be repeatedly truncated into snapshot generations,
// and a restart over the checkpointed chain still resumes cleanly.
func TestFollowerLocalCheckpointBoundsChain(t *testing.T) {
	p := newPrimary(t)

	disk := faultfs.NewMemFS()
	cfg := Config{
		Primary:         p.ts.URL,
		FS:              disk,
		SnapshotPath:    "replica.bin",
		CheckpointBytes: 1, // every applied batch triggers a local checkpoint
		PollWait:        50 * time.Millisecond,
		ReconnectBase:   10 * time.Millisecond,
		Logf:            t.Logf,
	}
	f1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stop1 := runFollower(t, f1)
	var last string
	for i := 0; i < 5; i++ {
		last = p.insert(t)
	}
	waitHas(t, f1, last)
	stop1()

	// The local WAL was truncated by checkpoints: it must hold far less
	// than the full record stream.
	w, recs, err := wal.Open(disk, "replica.bin.wal")
	if err != nil {
		t.Fatalf("inspecting local wal: %v", err)
	}
	w.Close()
	if len(recs) >= 5 {
		t.Fatalf("local wal still holds %d records; checkpoints never truncated it", len(recs))
	}

	uriAfter := p.insert(t)
	f2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	runFollower(t, f2)
	waitHas(t, f2, last)
	waitHas(t, f2, uriAfter)
	if got := f2.State().Bootstraps(); got != 0 {
		t.Fatalf("restart over a checkpointed chain bootstrapped %d times, want 0", got)
	}
}

// registerDataset registers a new dataset on the primary (D3's schema)
// and returns its URI. The registration runs a synchronous checkpoint,
// truncating the primary's WAL.
func (p *primaryWorld) registerDataset(t *testing.T, name string) string {
	t.Helper()
	uri := gen.ExNS + "dataset/" + name
	body, _ := json.Marshal(map[string]any{
		"uri":        uri,
		"dimensions": []string{gen.DimRefArea.Value, gen.DimRefPeriod.Value},
		"measures":   []string{gen.MeasUnemployment.Value},
	})
	resp, err := http.Post(p.ts.URL+"/v1/datasets", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register %s: status %d", uri, resp.StatusCode)
	}
	return uri
}

// TestFollowerRebootstrapsAfterRegistrationCheckpoint is the rebalance
// regression: admitting a migration target dataset (POST /v1/datasets)
// checkpoints the primary synchronously, which truncates its WAL. A
// follower that was down across the registration resumes from its local
// chain at an offset the primary no longer retains; the tail request
// must come back 410 Gone and force exactly one re-bootstrap — after
// which the follower serves the records it missed, the observations in
// the brand-new dataset, and everything it already had.
func TestFollowerRebootstrapsAfterRegistrationCheckpoint(t *testing.T) {
	p := newPrimary(t)
	uriBefore := p.insert(t)

	disk := faultfs.NewMemFS()
	cfg := Config{
		Primary:       p.ts.URL,
		FS:            disk,
		SnapshotPath:  "replica.bin",
		PollWait:      50 * time.Millisecond,
		ReconnectBase: 10 * time.Millisecond,
		ReconnectMax:  100 * time.Millisecond,
		Logf:          t.Logf,
	}
	f1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stop1 := runFollower(t, f1)
	waitHas(t, f1, uriBefore)
	stop1() // graceful: the local chain now ends mid-stream

	// While the follower is down: a record it will miss, then a dataset
	// registration whose checkpoint truncates the WAL past that record,
	// then a record into the new dataset.
	uriMissed := p.insert(t)
	dsNew := p.registerDataset(t, "Dnew")
	uriNew := p.insertInto(t, dsNew)

	f2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	runFollower(t, f2)
	waitHas(t, f2, uriBefore)
	waitHas(t, f2, uriMissed)
	waitHas(t, f2, uriNew)
	if got := f2.State().Bootstraps(); got != 1 {
		t.Fatalf("follower across a registration checkpoint bootstrapped %d times, want exactly 1 (410 -> re-bootstrap)", got)
	}
}

// TestFollowerWithoutPersistenceBootstrapsEveryStart: no SnapshotPath
// means no local chain — every incarnation pulls a fresh snapshot.
func TestFollowerWithoutPersistenceBootstrapsEveryStart(t *testing.T) {
	p := newPrimary(t)
	uri := p.insert(t)
	cfg := Config{
		Primary:       p.ts.URL,
		PollWait:      50 * time.Millisecond,
		ReconnectBase: 10 * time.Millisecond,
		Logf:          t.Logf,
	}
	for i := 0; i < 2; i++ {
		f, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		stop := runFollower(t, f)
		waitHas(t, f, uri)
		if got := f.State().Bootstraps(); got != 1 {
			t.Fatalf("incarnation %d: %d bootstraps, want 1", i, got)
		}
		stop()
	}
}

// TestSilentPrimaryDoesNotHangFollower is the regression test for the
// untimed replication client: a primary whose listener accepts the TCP
// connection but never sends a byte (a wedged process behind a live
// listener, a half-open link) must bound the attempt via the
// transport's response-header timeout and keep reconnecting — not hang
// the replication goroutine forever.
func TestSilentPrimaryDoesNotHangFollower(t *testing.T) {
	leakcheck.Check(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan struct{})
	defer close(done)
	go func() {
		var conns []net.Conn
		defer func() {
			for _, c := range conns {
				c.Close()
			}
		}()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			conns = append(conns, c) // accept, never respond
			select {
			case <-done:
				return
			default:
			}
		}
	}()

	logs := make(chan string, 64)
	f, err := New(Config{
		Primary:       "http://" + ln.Addr().String(),
		HeaderTimeout: 150 * time.Millisecond,
		ReconnectBase: 10 * time.Millisecond,
		Logf: func(format string, a ...any) {
			select {
			case logs <- fmt.Sprintf(format, a...):
			default:
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- f.Run(ctx) }()

	// The attempt must fail and trigger a reconnect within a couple of
	// header timeouts — a bare http.Client{} here blocks forever.
	deadline := time.After(5 * time.Second)
	for {
		select {
		case line := <-logs:
			if strings.Contains(line, "reconnecting in") {
				goto reconnected
			}
		case <-deadline:
			t.Fatal("follower never gave up on the silent primary (no reconnect within 5s)")
		}
	}
reconnected:
	cancel()
	select {
	case <-runDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancel")
	}
}

// TestDefaultClientTimeouts pins the transport shape of the default
// replication client.
func TestDefaultClientTimeouts(t *testing.T) {
	tr, ok := defaultClient(5*time.Second, 0).Transport.(*http.Transport)
	if !ok {
		t.Fatal("default client has no *http.Transport")
	}
	if tr.ResponseHeaderTimeout != 45*time.Second {
		t.Fatalf("default header timeout: %v", tr.ResponseHeaderTimeout)
	}
	if tr.TLSHandshakeTimeout != 10*time.Second {
		t.Fatalf("TLS handshake timeout: %v", tr.TLSHandshakeTimeout)
	}
	if tr.DialContext == nil {
		t.Fatal("no dial timeout configured")
	}

	// A poll budget near the header timeout pushes the default up: the
	// primary may legitimately sit on a tail request for PollWait before
	// answering, and that silence must not be mistaken for a dead peer.
	tr = defaultClient(40*time.Second, 0).Transport.(*http.Transport)
	if tr.ResponseHeaderTimeout != 55*time.Second {
		t.Fatalf("header timeout under a 40s poll budget: %v", tr.ResponseHeaderTimeout)
	}

	// An explicit HeaderTimeout wins.
	tr = defaultClient(5*time.Second, 200*time.Millisecond).Transport.(*http.Transport)
	if tr.ResponseHeaderTimeout != 200*time.Millisecond {
		t.Fatalf("explicit header timeout: %v", tr.ResponseHeaderTimeout)
	}
}
