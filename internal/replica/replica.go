// Package replica implements read replicas: a follower bootstraps its
// state from a primary cubed's GET /v1/snapshot, then tails the
// primary's write-ahead log over GET /v1/wal — the CRC-framed WAL record
// format is the replication wire format — applying each record through
// the same incremental-maintenance path live inserts use. The follower
// serves every read route of the /v1 API from its own copy; writes are
// refused with 503 plus a Leader header pointing at the primary.
//
// # Positions and re-bootstrap
//
// A replication position is a (stream, logical offset) pair minted by
// the primary: the stream identifies one primary incarnation, and the
// logical offset keeps advancing across the primary's checkpoint
// truncations. The primary answers 410 Gone for a position it no longer
// holds (it restarted, or the offset fell behind the retained WAL); the
// follower then pulls a fresh snapshot and re-tails from the position
// the snapshot names. Because record application is idempotent (frames
// are dup-skipped by observation URI), overlap between a snapshot and
// the tailed records is harmless — correctness never depends on exactly-
// once delivery, only on at-least-once.
//
// # Durability and resume
//
// With a snapshot path configured the follower persists its own chain:
// every applied batch is appended to a local WAL (one fsync per batch),
// the state is periodically checkpointed to a local snapshot generation,
// and a small position file records the primary position the local chain
// corresponds to. A restart rebuilds state from the local chain and
// resumes tailing at the recorded position — no re-bootstrap, no data
// transfer — unless the primary's stream changed, which degenerates to a
// fresh bootstrap.
//
// # Staleness
//
// The follower reports lag in records (primary frames minus applied
// frames) and wall-clock staleness (time since it was last level with
// the primary's durable end) through its /readyz and /v1/stats. With
// MaxStaleness set, readiness flips to 503 once the bound is exceeded —
// a dead primary takes its followers out of the read rotation only when
// their answers actually grow too stale, not the moment it dies.
package replica

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"rdfcube/internal/core"
	"rdfcube/internal/faultfs"
	"rdfcube/internal/obsv"
	"rdfcube/internal/serve"
	"rdfcube/internal/snapshot"
	"rdfcube/internal/wal"
)

// Metric names the follower reports through its Recorder.
const (
	CtrPolls      = "repl.polls"       // tail requests answered by the primary
	CtrRecords    = "repl.records"     // record frames applied
	CtrBootstraps = "repl.bootstraps"  // full snapshot bootstraps
	CtrReconnects = "repl.reconnects"  // link failures that triggered backoff
	CtrResumes    = "repl.resumes"     // restarts that resumed from the local chain
	GaugeLag      = "repl.lag.records" // current record lag behind the primary
	GaugeOffset   = "repl.offset"      // applied logical WAL offset
	GaugeStaleUS  = "repl.staleness.us"
	HistPollUS    = "repl.poll.us"  // one tail request, network included
	HistApplyUS   = "repl.apply.us" // applying one pulled batch
	HistBootUS    = "repl.bootstrap.us"
)

// maxSnapshotBody bounds a bootstrap transfer (1 GiB, the snapshot
// section limit).
const maxSnapshotBody = 1 << 30

// errRebootstrap is the internal signal that the primary answered 410:
// the position is gone and a fresh snapshot is the only way forward.
var errRebootstrap = errors.New("replica: position gone; re-bootstrap required")

// Config tunes a Follower. Primary is required; everything else has
// serviceable defaults.
type Config struct {
	// Primary is the primary's base URL (no trailing slash needed).
	Primary string
	// Client issues the replication requests; nil builds a default.
	// Long-poll requests are bounded per-request with contexts, so a
	// client-wide Timeout must be 0 or comfortably above PollWait.
	Client *http.Client
	// FS is the local filesystem for the follower's own WAL/snapshot
	// chain; nil means the real disk.
	FS faultfs.FS
	// SnapshotPath is the local snapshot rotator base. Empty disables
	// persistence: the follower re-bootstraps on every start.
	SnapshotPath string
	// WALPath is the local WAL; empty means SnapshotPath+".wal" (or no
	// local WAL when SnapshotPath is empty too).
	WALPath string
	// StatePath is the replication position file; empty means
	// WALPath+".pos".
	StatePath string
	// Tasks selects the relationship types maintained on apply; zero
	// means all three.
	Tasks core.Tasks
	// Recorder receives the follower's counters, gauges and histograms
	// (and the serving layer's, via the embedded server). Nil disables.
	Recorder obsv.Recorder
	// MaxStaleness flips the follower's /readyz to 503 once it has not
	// been level with the primary for this long. Zero never trips.
	MaxStaleness time.Duration
	// PollWait is the long-poll budget the follower asks the primary for;
	// zero means 5s.
	PollWait time.Duration
	// HeaderTimeout bounds how long the default client waits for a
	// primary to START answering a request (http.Transport's
	// ResponseHeaderTimeout). It must comfortably exceed PollWait — the
	// primary legitimately sits on a tail request for the whole poll
	// budget before sending headers. Zero means 45s (or PollWait+15s if
	// larger). Ignored when Client is set.
	HeaderTimeout time.Duration
	// ReconnectBase/ReconnectMax tune the jittered, capped, doubling
	// reconnect backoff (serve.Backoff); zero means 200ms / 10s.
	ReconnectBase time.Duration
	ReconnectMax  time.Duration
	// CheckpointBytes is the local WAL size that triggers a local
	// snapshot checkpoint; zero means 8 MiB.
	CheckpointBytes int64
	// RequestTimeout and MaxInFlight pass through to the embedded
	// serve.Server.
	RequestTimeout time.Duration
	MaxInFlight    int
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, a ...any)
}

func (c Config) pollWait() time.Duration {
	if c.PollWait <= 0 {
		return 5 * time.Second
	}
	return c.PollWait
}

// defaultClient builds the follower's HTTP client. A bare &http.Client{}
// has no dial, TLS-handshake or response-header timeout at all: a
// primary whose listener accepts the connection but whose process never
// answers (half-open link after a partition, a wedged peer) would hang
// the replication goroutine forever, with no reconnect and no staleness
// progress. The response-header timeout bounds silence, not slow
// streaming — it must exceed the WAL long-poll budget, during which the
// primary legitimately says nothing before sending headers.
func defaultClient(pollWait, headerTimeout time.Duration) *http.Client {
	if headerTimeout <= 0 {
		headerTimeout = 45 * time.Second
		if min := pollWait + 15*time.Second; headerTimeout < min {
			headerTimeout = min
		}
	}
	return &http.Client{Transport: &http.Transport{
		DialContext:           (&net.Dialer{Timeout: 10 * time.Second, KeepAlive: 30 * time.Second}).DialContext,
		TLSHandshakeTimeout:   10 * time.Second,
		ResponseHeaderTimeout: headerTimeout,
		MaxIdleConnsPerHost:   4,
	}}
}

func (c Config) checkpointBytes() int64 {
	if c.CheckpointBytes <= 0 {
		return 8 << 20
	}
	return c.CheckpointBytes
}

func (c Config) walPath() string {
	if c.WALPath != "" {
		return c.WALPath
	}
	if c.SnapshotPath != "" {
		return c.SnapshotPath + ".wal"
	}
	return ""
}

func (c Config) statePath() string {
	if c.StatePath != "" {
		return c.StatePath
	}
	if p := c.walPath(); p != "" {
		return p + ".pos"
	}
	return ""
}

// position is the persisted replication position: the primary stream the
// local chain belongs to and the logical offset / frame count the chain
// reaches. A torn or garbage file is treated as absent (re-bootstrap).
type position struct {
	Stream string `json:"stream"`
	Offset int64  `json:"offset"`
	Seq    int64  `json:"seq"`
}

// served pairs a server with its prebuilt handler so the hot path swaps
// both atomically and never rebuilds a mux per request.
type served struct {
	srv *serve.Server
	h   http.Handler
}

// Follower mirrors one primary. Build with New, drive with Run (usually
// in its own goroutine), serve Handler(), stop by canceling Run's
// context and calling Close.
type Follower struct {
	cfg    Config
	client *http.Client
	fs     faultfs.FS
	rot    *snapshot.Rotator // nil without persistence
	wlog   *wal.Log          // nil without persistence
	state  *serve.FollowerState

	cur atomic.Pointer[served]

	// Replication position; touched only by the Run goroutine.
	stream string
	offset int64
	seq    int64

	// pendingReplay carries local WAL records from openLocal to
	// resumeLocal (Run goroutine only).
	pendingReplay []wal.Record
}

// New builds a follower. It performs no I/O; Run does the bootstrap.
func New(cfg Config) (*Follower, error) {
	if cfg.Primary == "" {
		return nil, fmt.Errorf("replica: Config.Primary is required")
	}
	f := &Follower{
		cfg:    cfg,
		client: cfg.Client,
		fs:     cfg.FS,
		state:  &serve.FollowerState{Leader: cfg.Primary, MaxStaleness: cfg.MaxStaleness},
	}
	if f.client == nil {
		f.client = defaultClient(cfg.pollWait(), cfg.HeaderTimeout)
	}
	if f.fs == nil {
		f.fs = faultfs.OS{}
	}
	if cfg.SnapshotPath != "" {
		f.rot = snapshot.NewRotator(f.fs, cfg.SnapshotPath)
		f.rot.Logf = cfg.Logf
	}
	return f, nil
}

// State exposes the live replication posture (lag, staleness, offsets).
func (f *Follower) State() *serve.FollowerState { return f.state }

// Server returns the current embedded server (nil before the first
// bootstrap or resume).
func (f *Follower) Server() *serve.Server {
	if s := f.cur.Load(); s != nil {
		return s.srv
	}
	return nil
}

// Handler serves the follower's read API. Before the first state exists
// it answers /healthz with "loading" and everything else 503, so a
// follower can bind its port before its first bootstrap completes.
func (f *Follower) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s := f.cur.Load(); s != nil {
			s.h.ServeHTTP(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			fmt.Fprintf(w, `{"status":"ok","state":"loading","role":"follower"}`)
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, `{"error":"follower has no state yet (bootstrapping from %s)"}`, f.cfg.Primary)
	})
}

func (f *Follower) logf(format string, a ...any) {
	if f.cfg.Logf != nil {
		f.cfg.Logf(format, a...)
	}
}

func (f *Follower) count(name string, d int64) {
	if f.cfg.Recorder != nil {
		f.cfg.Recorder.Count(name, d)
	}
}

func (f *Follower) gauge(name string, v float64) {
	if f.cfg.Recorder != nil {
		f.cfg.Recorder.Gauge(name, v)
	}
}

func (f *Follower) observe(name string, v int64) {
	if f.cfg.Recorder != nil {
		obsv.Observe(f.cfg.Recorder, name, v)
	}
}

// Run drives replication until ctx is canceled: resume from the local
// chain if one exists, then bootstrap-or-tail forever, reconnecting with
// jittered capped backoff (the breaker's backoff helper) after link
// failures. On exit it checkpoints the local chain so the next start
// resumes instead of re-bootstrapping.
func (f *Follower) Run(ctx context.Context) error {
	if err := f.openLocal(); err != nil {
		return err
	}
	if err := f.resumeLocal(); err != nil {
		// A broken local chain is not fatal: log it and bootstrap fresh.
		f.logf("replica: local resume failed (%v); bootstrapping from %s", err, f.cfg.Primary)
	}

	bo := serve.Backoff{Base: f.cfg.ReconnectBase, Max: f.cfg.ReconnectMax}
	if bo.Base <= 0 {
		bo.Base = 200 * time.Millisecond
	}
	if bo.Max <= 0 {
		bo.Max = 10 * time.Second
	}
	for ctx.Err() == nil {
		progressed, err := f.session(ctx)
		if ctx.Err() != nil {
			break
		}
		if progressed {
			bo.Reset()
		}
		if err != nil {
			f.state.SetConnected(false)
			d := bo.Next()
			f.count(CtrReconnects, 1)
			f.logf("replica: link to %s: %v; reconnecting in %s", f.cfg.Primary, err, d.Round(time.Millisecond))
			select {
			case <-ctx.Done():
			case <-time.After(d):
			}
		}
	}
	f.shutdown()
	return ctx.Err()
}

// shutdown checkpoints the local chain and closes the local WAL.
func (f *Follower) shutdown() {
	f.state.SetConnected(false)
	if srv := f.Server(); srv != nil && f.rot != nil {
		if err := f.checkpointLocal(srv); err != nil {
			f.logf("replica: final local checkpoint failed (WAL still covers the chain): %v", err)
		}
	}
	if f.wlog != nil {
		f.wlog.Close()
		f.wlog = nil
	}
}

// openLocal opens (or creates) the follower's local WAL.
func (f *Follower) openLocal() error {
	path := f.cfg.walPath()
	if path == "" {
		return nil
	}
	wlog, recs, err := wal.Open(f.fs, path)
	if errors.Is(err, wal.ErrCorrupt) {
		q := path + ".corrupt"
		if rerr := f.fs.Rename(path, q); rerr != nil {
			return fmt.Errorf("replica: quarantining corrupt local wal %s: %v (original: %w)", path, rerr, err)
		}
		f.logf("replica: local wal %s corrupt (%v); quarantined to %s", path, err, q)
		wlog, recs, err = wal.Open(f.fs, path)
	}
	if err != nil {
		return fmt.Errorf("replica: opening local wal %s: %w", path, err)
	}
	f.wlog = wlog
	f.pendingReplay = recs
	return nil
}

// resumeLocal rebuilds state from the local snapshot chain + WAL and
// restores the persisted replication position. Absence of any of the
// pieces is not an error — it just means the next session bootstraps.
func (f *Follower) resumeLocal() error {
	if f.rot == nil {
		return nil
	}
	sn, from, err := f.rot.Load()
	switch {
	case err == nil:
	case errors.Is(err, fs.ErrNotExist):
		return nil
	default:
		return err
	}
	srv, err := f.buildServer(sn)
	if err != nil {
		return err
	}
	if len(f.pendingReplay) > 0 {
		if _, err := srv.Replay(f.pendingReplay); err != nil {
			return fmt.Errorf("replaying local wal: %w", err)
		}
	}
	var pos position
	if data, err := f.fs.ReadFile(f.cfg.statePath()); err == nil {
		if jerr := json.Unmarshal(data, &pos); jerr != nil {
			pos = position{} // torn position file: bootstrap decides
		}
	}
	f.stream, f.offset, f.seq = pos.Stream, pos.Offset, pos.Seq
	f.install(srv)
	f.state.SetOffset(f.offset)
	f.count(CtrResumes, 1)
	f.logf("replica: resumed %d observations from %s (+%d local wal records), position %s@%d",
		sn.Space.N(), from, len(f.pendingReplay), f.stream, f.offset)
	f.pendingReplay = nil
	return nil
}

// install swaps in a new embedded server and prebuilt handler, shutting
// the previous incarnation's run context down.
func (f *Follower) install(srv *serve.Server) {
	old := f.cur.Swap(&served{srv: srv, h: srv.Handler()})
	if old != nil {
		old.srv.BeginShutdown()
	}
}

// buildServer wraps a decoded snapshot in a read-only replica server.
func (f *Follower) buildServer(sn *snapshot.Snapshot) (*serve.Server, error) {
	cfg := serve.Config{
		Tasks:          f.cfg.Tasks,
		Recorder:       f.cfg.Recorder,
		RequestTimeout: f.cfg.RequestTimeout,
		MaxInFlight:    f.cfg.MaxInFlight,
		Logf:           f.cfg.Logf,
		Follower:       f.state,
	}
	if f.rot != nil {
		rot := f.rot
		cfg.SnapshotGen = func() uint64 { g, _ := rot.CurrentGen(); return g }
	}
	return serve.New(sn, cfg)
}

// session runs one connected stretch: bootstrap when there is no usable
// position, then tail until an error. It reports whether any request
// succeeded (so the caller resets its backoff) and the error that ended
// the session (nil only on ctx cancellation).
func (f *Follower) session(ctx context.Context) (progressed bool, err error) {
	if f.Server() == nil || f.stream == "" {
		if err := f.bootstrap(ctx); err != nil {
			return false, err
		}
		progressed = true
	}
	for ctx.Err() == nil {
		switch err := f.pollOnce(ctx); {
		case err == nil:
			progressed = true
		case errors.Is(err, errRebootstrap):
			f.logf("replica: %v", err)
			if err := f.bootstrap(ctx); err != nil {
				return progressed, err
			}
			progressed = true
		default:
			return progressed, err
		}
	}
	return progressed, nil
}

// bootstrap pulls the primary's full snapshot, verifies and decodes it,
// commits it to the local chain, and swaps in a fresh server at the
// position the snapshot names.
func (f *Follower) bootstrap(ctx context.Context) error {
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.cfg.Primary+"/v1/snapshot", nil)
	if err != nil {
		return err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return fmt.Errorf("bootstrap: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("bootstrap: primary answered %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxSnapshotBody+1))
	if err != nil {
		return fmt.Errorf("bootstrap: reading snapshot: %w", err)
	}
	if len(data) > maxSnapshotBody {
		return fmt.Errorf("bootstrap: snapshot exceeds %d bytes", maxSnapshotBody)
	}
	if want := resp.Header.Get(serve.SnapshotCRCHeader); want != "" {
		if got := fmt.Sprintf("%08x", crc32.ChecksumIEEE(data)); got != want {
			return fmt.Errorf("bootstrap: snapshot CRC mismatch: got %s want %s (torn transfer?)", got, want)
		}
	}
	stream := resp.Header.Get(serve.WALStreamHeader)
	if stream == "" {
		return fmt.Errorf("bootstrap: primary %s does not replicate (no %s header — is it running with a WAL?)",
			f.cfg.Primary, serve.WALStreamHeader)
	}
	pos, err := strconv.ParseInt(resp.Header.Get(serve.WALPositionHeader), 10, 64)
	if err != nil {
		return fmt.Errorf("bootstrap: bad %s header %q", serve.WALPositionHeader, resp.Header.Get(serve.WALPositionHeader))
	}
	seq, _ := strconv.ParseInt(resp.Header.Get(serve.WALSeqHeader), 10, 64)

	sn, err := snapshot.Read(bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("bootstrap: decoding snapshot: %w", err)
	}
	srv, err := f.buildServer(sn)
	if err != nil {
		return fmt.Errorf("bootstrap: %w", err)
	}

	// Persist the new chain before serving it: local generation first,
	// then a truncated local WAL (the image covers everything), then the
	// position file. A crash between the steps re-bootstraps — never
	// serves a chain that disagrees with its position.
	f.stream, f.offset, f.seq = stream, pos, seq
	if f.rot != nil {
		if err := f.rot.Write(data); err != nil {
			return fmt.Errorf("bootstrap: committing local generation: %w", err)
		}
	}
	if f.wlog != nil {
		if err := f.wlog.Truncate(); err != nil {
			return fmt.Errorf("bootstrap: resetting local wal: %w", err)
		}
	}
	if err := f.writePosition(); err != nil {
		return fmt.Errorf("bootstrap: %w", err)
	}

	f.install(srv)
	f.state.SetOffset(pos)
	f.state.MarkBootstrap()
	f.state.SetConnected(true)
	f.count(CtrBootstraps, 1)
	f.observe(HistBootUS, time.Since(start).Microseconds())
	if gen := resp.Header.Get(serve.SnapshotGenHeader); gen != "" {
		f.logf("replica: bootstrapped %d observations from %s (generation %s, stream %s, position %d) in %s",
			sn.Space.N(), f.cfg.Primary, gen, stream, pos, time.Since(start).Round(time.Millisecond))
	} else {
		f.logf("replica: bootstrapped %d observations from %s (stream %s, position %d) in %s",
			sn.Space.N(), f.cfg.Primary, stream, pos, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// pollOnce issues one tail request and applies whatever it returns.
func (f *Follower) pollOnce(ctx context.Context) error {
	wait := f.cfg.pollWait()
	reqCtx, cancel := context.WithTimeout(ctx, wait+15*time.Second)
	defer cancel()
	url := fmt.Sprintf("%s/v1/wal?from=%d&stream=%s&wait=%s", f.cfg.Primary, f.offset, f.stream, wait)
	req, err := http.NewRequestWithContext(reqCtx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	start := time.Now()
	resp, err := f.client.Do(req)
	if err != nil {
		return fmt.Errorf("tail: %w", err)
	}
	defer resp.Body.Close()
	f.observe(HistPollUS, time.Since(start).Microseconds())

	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("%w (primary stream %s, ours %s@%d)",
			errRebootstrap, resp.Header.Get(serve.WALStreamHeader), f.stream, f.offset)
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("tail: primary answered %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}

	data, err := io.ReadAll(io.LimitReader(resp.Body, maxWALBody))
	if err != nil {
		// The stream was cut mid-response. Whatever complete frames arrived
		// are still usable: apply them and resume at the last good offset.
		f.logf("replica: tail response cut (%v); applying the complete prefix", err)
	}
	f.state.SetConnected(true)
	f.count(CtrPolls, 1)

	// Re-validate every frame — the same CRC check WAL recovery uses. A
	// torn tail parses as a shorter prefix; a corrupt COMPLETE frame is an
	// error (retrying won't fix bad bytes; re-bootstrap will).
	recs, good, perr := wal.ParseFrames(data)
	if perr != nil && good == 0 {
		return fmt.Errorf("%w (frames at %d corrupt: %v)", errRebootstrap, f.offset, perr)
	}
	if len(recs) > 0 {
		if err := f.apply(recs, good); err != nil {
			return err
		}
	}
	f.updateLag(resp.Header)
	return nil
}

// maxWALBody bounds one tail response (the primary chunks at 4 MiB; the
// slack tolerates growth).
const maxWALBody = 8 << 20

// apply makes one pulled batch durable on the local chain, applies it to
// the embedded server, and advances the position.
func (f *Follower) apply(recs []wal.Record, good int64) error {
	start := time.Now()
	if f.wlog != nil {
		if err := f.wlog.AppendBatch(recs); err != nil {
			// The local disk failed; state in memory is still correct, so
			// keep serving — but the chain no longer covers the position, so
			// drop it: the next restart re-bootstraps instead of resuming a
			// hole.
			f.logf("replica: local wal append failed (%v); next restart will re-bootstrap", err)
			f.removePosition()
		}
	}
	srv := f.Server()
	applied, err := srv.ApplyReplicated(recs)
	if err != nil {
		return fmt.Errorf("%w (apply at %d: %v)", errRebootstrap, f.offset, err)
	}
	f.offset += good
	f.seq += int64(len(recs))
	f.state.SetOffset(f.offset)
	if err := f.writePosition(); err != nil {
		f.logf("replica: persisting position: %v", err)
	}
	f.count(CtrRecords, int64(len(recs)))
	f.gauge(GaugeOffset, float64(f.offset))
	f.observe(HistApplyUS, time.Since(start).Microseconds())
	_ = applied // dup-skips are expected after re-pulls; counted by serve.wal.replayed
	if f.wlog != nil && f.wlog.RecordBytes() >= f.cfg.checkpointBytes() {
		if err := f.checkpointLocal(srv); err != nil {
			f.logf("replica: local checkpoint failed (chain keeps growing): %v", err)
		}
	}
	return nil
}

// updateLag derives record lag from the tail response headers and marks
// the follower caught up when it is level with the durable end.
func (f *Follower) updateLag(h http.Header) {
	end, err1 := strconv.ParseInt(h.Get(serve.WALEndHeader), 10, 64)
	seqEnd, err2 := strconv.ParseInt(h.Get(serve.WALSeqHeader), 10, 64)
	if err2 == nil {
		lag := seqEnd - f.seq
		if lag < 0 {
			lag = 0
		}
		f.state.SetLagRecords(lag)
		f.gauge(GaugeLag, float64(lag))
	}
	if err1 == nil && f.offset >= end {
		f.state.MarkCaughtUp()
	}
	f.gauge(GaugeStaleUS, float64(f.state.Staleness().Microseconds()))
}

// checkpointLocal commits the follower's current state as a local
// snapshot generation and truncates the local WAL. Called only from the
// Run goroutine, so no records land between the encode and the truncate.
func (f *Follower) checkpointLocal(srv *serve.Server) error {
	if f.rot == nil {
		return nil
	}
	data, err := srv.EncodeSnapshot()
	if err != nil {
		return err
	}
	if err := f.rot.Write(data); err != nil {
		return err
	}
	if f.wlog != nil {
		if err := f.wlog.Truncate(); err != nil {
			return err
		}
	}
	return f.writePosition()
}

// writePosition persists the replication position (create + write +
// fsync). The file is a hint: a torn write just means re-bootstrap.
func (f *Follower) writePosition() error {
	path := f.cfg.statePath()
	if path == "" {
		return nil
	}
	data, err := json.Marshal(position{Stream: f.stream, Offset: f.offset, Seq: f.seq})
	if err != nil {
		return err
	}
	file, err := f.fs.Create(path)
	if err != nil {
		return err
	}
	if _, err := file.Write(data); err != nil {
		file.Close()
		return err
	}
	if err := file.Sync(); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}

// removePosition drops the persisted position so the next start cannot
// resume a chain with a hole in it.
func (f *Follower) removePosition() {
	if path := f.cfg.statePath(); path != "" {
		_ = f.fs.Remove(path)
	}
}
