package wal

import (
	"bytes"
	"errors"
	"testing"

	"rdfcube/internal/faultfs"
)

// appendN opens a log at path and appends n distinguishable records.
func appendN(t *testing.T, mem *faultfs.MemFS, path string, n int) *Log {
	t.Helper()
	w, recs, err := Open(mem, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh log replayed %d records", len(recs))
	}
	for i := 0; i < n; i++ {
		if err := w.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	return w
}

func TestReadRangeRoundTrip(t *testing.T) {
	mem := faultfs.NewMemFS()
	w := appendN(t, mem, "wal.bin", 5)
	defer w.Close()

	// The whole record region parses back to the appended records.
	data, err := w.ReadRange(HeaderLen, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	recs, good, err := ParseFrames(data)
	if err != nil {
		t.Fatal(err)
	}
	if good != int64(len(data)) {
		t.Fatalf("good %d of %d bytes", good, len(data))
	}
	if len(recs) != 5 {
		t.Fatalf("parsed %d records, want 5", len(recs))
	}
	for i, r := range recs {
		if !equalRecords(r, rec(i)) {
			t.Fatalf("record %d differs after ReadRange round trip", i)
		}
	}

	// Reading from a frame boundary in the middle yields the suffix. The
	// first frame's boundary is found by growing a prefix until exactly
	// one record parses.
	var bound int64
	for cut := int64(1); cut <= int64(len(data)); cut++ {
		rs, g, _ := ParseFrames(data[:cut])
		if len(rs) == 1 {
			bound = g
			break
		}
	}
	if bound == 0 {
		t.Fatal("could not locate first frame boundary")
	}
	suffix, err := w.ReadRange(HeaderLen+bound, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	srecs, _, err := ParseFrames(suffix)
	if err != nil {
		t.Fatal(err)
	}
	if len(srecs) != 4 || !equalRecords(srecs[0], rec(1)) {
		t.Fatalf("suffix read from mid-log boundary: got %d records, first wrong", len(srecs))
	}
}

func TestReadRangeMidRecordOffset(t *testing.T) {
	mem := faultfs.NewMemFS()
	w := appendN(t, mem, "wal.bin", 3)
	defer w.Close()

	// One byte past a boundary is inside frame 0's length prefix: not a
	// record boundary.
	if _, err := w.ReadRange(HeaderLen+1, 1<<20); !errors.Is(err, ErrNotBoundary) {
		t.Fatalf("mid-record offset: err %v, want ErrNotBoundary", err)
	}
}

func TestReadRangeWidensTinyWindow(t *testing.T) {
	mem := faultfs.NewMemFS()
	w := appendN(t, mem, "wal.bin", 2)
	defer w.Close()

	// A max smaller than one frame must still return at least one whole
	// frame (otherwise a tailing follower with a small chunk budget would
	// spin forever).
	data, err := w.ReadRange(HeaderLen, 1)
	if err != nil {
		t.Fatal(err)
	}
	recs, _, err := ParseFrames(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("tiny window returned %d records, want exactly 1", len(recs))
	}
}

func TestReadRangeServesOnlyDurableBytes(t *testing.T) {
	mem := faultfs.NewMemFS()
	w := appendN(t, mem, "wal.bin", 2)
	defer w.Close()

	end := w.Size()
	// Reading at the durable end returns empty, not an error.
	data, err := w.ReadRange(end, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 0 {
		t.Fatalf("read at end returned %d bytes", len(data))
	}
	// Past the end is the caller's bug.
	if _, err := w.ReadRange(end+1, 1<<20); err == nil {
		t.Fatal("read past end succeeded")
	}
	// Before the header is never valid.
	if _, err := w.ReadRange(0, 1<<20); err == nil {
		t.Fatal("read inside the header succeeded")
	}
}

func TestParseFramesTornTail(t *testing.T) {
	mem := faultfs.NewMemFS()
	w := appendN(t, mem, "wal.bin", 3)
	data, err := w.ReadRange(HeaderLen, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()

	// Chop the last frame anywhere: the parse returns the intact prefix
	// and NO error — a torn tail is normal during streaming.
	for cut := int64(len(data)) - 1; cut > int64(len(data))-8; cut-- {
		recs, good, err := ParseFrames(data[:cut])
		if err != nil {
			t.Fatalf("cut %d: torn tail reported error %v", cut, err)
		}
		if len(recs) != 2 {
			t.Fatalf("cut %d: got %d records, want the 2 intact ones", cut, len(recs))
		}
		if !bytes.Equal(data[:good], data[:good]) || good > cut {
			t.Fatalf("cut %d: good %d exceeds available %d", cut, good, cut)
		}
	}

	// A corrupt COMPLETE frame is an error, with the prefix still usable.
	mut := append([]byte(nil), data...)
	mut[len(mut)-5] ^= 0xff // inside the last frame's payload or CRC
	recs, good, err := ParseFrames(mut)
	if err == nil {
		t.Fatal("corrupt complete frame parsed cleanly")
	}
	if len(recs) != 2 || good <= 0 {
		t.Fatalf("corrupt tail: %d records, good %d; want 2 intact", len(recs), good)
	}
}

func TestAppendBatchDurableAndReplayable(t *testing.T) {
	mem := faultfs.NewMemFS()
	w, _, err := Open(mem, "wal.bin")
	if err != nil {
		t.Fatal(err)
	}
	batch := []Record{rec(0), rec(1), rec(2)}
	if err := w.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	w.Close()

	// A power cut after AppendBatch returned must keep every record: the
	// batch is fsynced before it returns.
	crashed := mem.Clone()
	crashed.Crash()
	w2, recs, err := Open(crashed, "wal.bin")
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(recs) != len(batch) {
		t.Fatalf("replayed %d records after power cut, want %d", len(recs), len(batch))
	}
	for i := range batch {
		if !equalRecords(recs[i], batch[i]) {
			t.Fatalf("record %d differs after crash replay", i)
		}
	}
}

func TestAppendBatchMatchesAppendBytes(t *testing.T) {
	// Frames written by AppendBatch must be byte-identical to the same
	// records written one Append at a time: a follower's local WAL (batch
	// writes) stays interchangeable with a primary's (single writes), and
	// logical offsets mean the same thing on both.
	memA, memB := faultfs.NewMemFS(), faultfs.NewMemFS()
	wa, _, err := Open(memA, "a.wal")
	if err != nil {
		t.Fatal(err)
	}
	wb, _, err := Open(memB, "b.wal")
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{rec(0), rec(1), rec(2), rec(3)}
	if err := wa.AppendBatch(recs); err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := wb.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	da, err := wa.ReadRange(HeaderLen, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	db, err := wb.ReadRange(HeaderLen, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	wa.Close()
	wb.Close()
	if !bytes.Equal(da, db) {
		t.Fatalf("batch and single appends produced different bytes: %d vs %d", len(da), len(db))
	}
}
