package wal

import (
	"errors"
	"testing"

	"rdfcube/internal/faultfs"
	"rdfcube/internal/rdf"
)

// validLogBytes builds a well-formed log with n records through the real
// append path on an in-memory filesystem.
func validLogBytes(f *testing.F, n int) []byte {
	fsys := faultfs.NewMemFS()
	w, _, err := Open(fsys, "seed.wal")
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := w.Append(rec(i)); err != nil {
			f.Fatal(err)
		}
	}
	data, err := fsys.ReadFile("seed.wal")
	if err != nil {
		f.Fatal(err)
	}
	return data
}

// FuzzOpenWAL feeds arbitrary bytes to the log-recovery path as the
// on-disk state left by "a crash". The durability contract under test:
//
//   - Open never panics, whatever the file contains.
//   - Open either refuses the file with ErrCorrupt (damaged header) or
//     returns a usable log: torn/garbled tails are silently repaired.
//   - A log Open accepted must actually be usable — an Append must
//     succeed and a second Open must replay exactly the accepted records
//     plus the appended one (recovery is idempotent and append-stable).
//
// Seeds: valid logs of several lengths, truncations at every byte over
// the header and frame boundaries, bit flips (header, length prefix,
// payload, CRC), and foreign data.
func FuzzOpenWAL(f *testing.F) {
	golden := validLogBytes(f, 5)
	f.Add(golden)
	for cut := 0; cut <= len(golden) && cut < 96; cut++ {
		f.Add(golden[:cut])
	}
	for cut := 96; cut < len(golden); cut += 13 {
		f.Add(golden[:cut])
	}
	for pos := 0; pos < len(golden); pos += 5 {
		mut := append([]byte(nil), golden...)
		mut[pos] ^= 0x40
		f.Add(mut)
	}
	f.Add([]byte{})
	f.Add([]byte("not a wal at all"))
	f.Add(validLogBytes(f, 0))
	f.Add(append(golden, 0xde, 0xad, 0xbe, 0xef))

	f.Fuzz(func(t *testing.T, data []byte) {
		fsys := faultfs.NewMemFS()
		if len(data) > 0 {
			w, err := fsys.Create("fuzz.wal")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := w.Write(data); err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
		}

		log, recs, err := Open(fsys, "fuzz.wal")
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Open error must wrap ErrCorrupt, got %v", err)
			}
			return
		}

		// The accepted log must be append-ready despite whatever tail
		// repair just happened.
		extra := Record{
			Dataset:       1,
			URI:           rdf.NewIRI("http://example.org/obs/fuzz-extra"),
			DimValues:     []rdf.Term{rdf.NewIRI("http://example.org/code/area/AF")},
			MeasureValues: []rdf.Term{rdf.NewTypedLiteral("1.0", rdf.XSDDecimal)},
		}
		if err := log.Append(extra); err != nil {
			t.Fatalf("Append after accepted Open failed: %v", err)
		}

		// Recovery is stable: a second Open replays the accepted prefix
		// plus the new record, in order.
		_, recs2, err := Open(fsys, "fuzz.wal")
		if err != nil {
			t.Fatalf("reopen after repair+append failed: %v", err)
		}
		if len(recs2) != len(recs)+1 {
			t.Fatalf("reopen replayed %d records, want %d", len(recs2), len(recs)+1)
		}
		for i := range recs {
			if !equalRecords(recs2[i], recs[i]) {
				t.Fatalf("record %d changed across reopen", i)
			}
		}
		if !equalRecords(recs2[len(recs)], extra) {
			t.Fatalf("appended record did not survive reopen")
		}
	})
}
