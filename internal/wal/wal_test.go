package wal

import (
	"errors"
	"fmt"
	"testing"

	"rdfcube/internal/faultfs"
	"rdfcube/internal/rdf"
)

// rec builds a distinguishable record.
func rec(i int) Record {
	return Record{
		Dataset: i % 3,
		URI:     rdf.NewIRI(fmt.Sprintf("http://example.org/obs/wal%d", i)),
		DimValues: []rdf.Term{
			rdf.NewIRI(fmt.Sprintf("http://example.org/code/area/A%d", i)),
			rdf.NewIRI("http://example.org/code/time/2011"),
		},
		MeasureValues: []rdf.Term{
			rdf.NewTypedLiteral(fmt.Sprintf("0.%02d", i), rdf.XSDDecimal),
			{}, // zero term round-trips too
		},
	}
}

func equalRecords(a, b Record) bool {
	if a.Dataset != b.Dataset || a.URI != b.URI ||
		len(a.DimValues) != len(b.DimValues) || len(a.MeasureValues) != len(b.MeasureValues) {
		return false
	}
	for i := range a.DimValues {
		if a.DimValues[i] != b.DimValues[i] {
			return false
		}
	}
	for i := range a.MeasureValues {
		if a.MeasureValues[i] != b.MeasureValues[i] {
			return false
		}
	}
	return true
}

func mustEqual(t *testing.T, got []Record, want []Record, ctx string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: replayed %d records, want %d", ctx, len(got), len(want))
	}
	for i := range got {
		if !equalRecords(got[i], want[i]) {
			t.Fatalf("%s: record %d differs: got %+v want %+v", ctx, i, got[i], want[i])
		}
	}
}

// TestRoundTrip: append, reopen, replay — on both the in-memory and the
// real filesystem.
func TestRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		fs   faultfs.FS
		path string
	}{
		{"mem", faultfs.NewMemFS(), "log.wal"},
		{"os", faultfs.OS{}, t.TempDir() + "/log.wal"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			w, recs, err := Open(tc.fs, tc.path)
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != 0 {
				t.Fatalf("fresh log replayed %d records", len(recs))
			}
			var want []Record
			for i := 0; i < 7; i++ {
				r := rec(i)
				if err := w.Append(r); err != nil {
					t.Fatalf("append %d: %v", i, err)
				}
				want = append(want, r)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			w2, got, err := Open(tc.fs, tc.path)
			if err != nil {
				t.Fatal(err)
			}
			defer w2.Close()
			mustEqual(t, got, want, "reopen")
			if w2.RepairedBytes() != 0 {
				t.Fatalf("clean log reported %d repaired bytes", w2.RepairedBytes())
			}
		})
	}
}

// TestTruncateAfterCheckpoint: records logged before Truncate are gone,
// later ones replay.
func TestTruncateAfterCheckpoint(t *testing.T) {
	m := faultfs.NewMemFS()
	w, _, err := Open(m, "log.wal")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := w.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Truncate(); err != nil {
		t.Fatal(err)
	}
	if w.RecordBytes() != 0 {
		t.Fatalf("RecordBytes %d after truncate", w.RecordBytes())
	}
	var want []Record
	for i := 4; i < 6; i++ {
		r := rec(i)
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
		want = append(want, r)
	}
	w.Close()
	_, got, err := Open(m, "log.wal")
	if err != nil {
		t.Fatal(err)
	}
	mustEqual(t, got, want, "after truncate")
}

// TestPowerCutEveryByteBoundary is the power-cut truncation sweep: a log
// with several appended records is cut at EVERY byte length from 0 to
// its full size; Open must never panic, and must replay exactly the
// records whose frames fit entirely within the kept prefix (each Append
// synced before returning, so every acked record's bytes survive a real
// crash — shorter cuts model losing unsynced bytes of a torn append).
func TestPowerCutEveryByteBoundary(t *testing.T) {
	base := faultfs.NewMemFS()
	w, _, err := Open(base, "log.wal")
	if err != nil {
		t.Fatal(err)
	}
	var want []Record
	var frameEnds []int64 // durable size after each append
	for i := 0; i < 5; i++ {
		r := rec(i)
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
		want = append(want, r)
		frameEnds = append(frameEnds, w.Size())
	}
	full := base.Len("log.wal")

	for cut := 0; cut <= full; cut++ {
		fsys := faultfs.NewMemFS()
		f, err := fsys.Create("log.wal")
		if err != nil {
			t.Fatal(err)
		}
		data, _ := base.ReadFile("log.wal")
		if _, err := f.Write(data[:cut]); err != nil {
			t.Fatal(err)
		}
		f.Sync()
		f.Close()

		w2, got, err := Open(fsys, "log.wal")
		// How many complete records fit in the cut?
		wantN := 0
		for _, end := range frameEnds {
			if int64(cut) >= end {
				wantN++
			}
		}
		if cut < len(magic) {
			// Torn header: Open must recover by re-initializing.
			if err != nil {
				t.Fatalf("cut=%d (torn header): %v", cut, err)
			}
			if len(got) != 0 {
				t.Fatalf("cut=%d: torn header replayed %d records", cut, len(got))
			}
			w2.Close()
			continue
		}
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		mustEqual(t, got, want[:wantN], fmt.Sprintf("cut=%d", cut))
		// The tail is repaired: appending works and survives a reopen.
		extra := rec(99)
		if err := w2.Append(extra); err != nil {
			t.Fatalf("cut=%d: append after repair: %v", cut, err)
		}
		w2.Close()
		_, got3, err := Open(fsys, "log.wal")
		if err != nil {
			t.Fatalf("cut=%d: reopen after repair: %v", cut, err)
		}
		mustEqual(t, got3, append(append([]Record{}, want[:wantN]...), extra), fmt.Sprintf("cut=%d reopen", cut))
	}
}

// TestCorruptMiddleRecordStopsReplay: a bit flip inside an early record
// causes replay to stop there (prefix semantics), never to panic.
func TestCorruptMiddleRecordStopsReplay(t *testing.T) {
	base := faultfs.NewMemFS()
	w, _, _ := Open(base, "log.wal")
	var sizes []int64
	for i := 0; i < 4; i++ {
		if err := w.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, w.Size())
	}
	data, _ := base.ReadFile("log.wal")
	// Flip a byte inside record 1's frame.
	off := int(sizes[0]) + 6
	for _, mutant := range []byte{0x00, 0xFF, data[off] ^ 0x01} {
		if mutant == data[off] {
			continue
		}
		fsys := faultfs.NewMemFS()
		f, _ := fsys.Create("log.wal")
		cp := append([]byte(nil), data...)
		cp[off] = mutant
		f.Write(cp)
		f.Sync()
		f.Close()
		_, got, err := Open(fsys, "log.wal")
		if err != nil {
			t.Fatalf("flip->%#x: %v", mutant, err)
		}
		if len(got) != 1 {
			t.Fatalf("flip->%#x: replayed %d records, want 1", mutant, len(got))
		}
	}
}

// TestBadHeaderIsCleanError: foreign bytes in the header yield ErrCorrupt.
func TestBadHeaderIsCleanError(t *testing.T) {
	for _, data := range [][]byte{
		[]byte("NOTAWAL\x01 and some records"),
		[]byte("XYZ"),
		{'R', 'D', 'F', 'C', 'W', 'A', 'L', 99}, // wrong version
	} {
		fsys := faultfs.NewMemFS()
		f, _ := fsys.Create("log.wal")
		f.Write(data)
		f.Sync()
		f.Close()
		if _, _, err := Open(fsys, "log.wal"); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("header %q: err=%v, want ErrCorrupt", data, err)
		}
	}
}

// TestFaultSweepExactAckSemantics is the injected-failure sweep: a fixed
// append scenario runs with a fault scheduled at every operation index,
// for every fault kind (short write at several kept-byte counts, fsync
// error, truncate error). After each faulted run the log is reopened
// (optionally after a power cut) and must replay EXACTLY the appends
// that were acknowledged — no acked record lost, no failed record
// visible.
func TestFaultSweepExactAckSemantics(t *testing.T) {
	const appends = 5
	kinds := []faultfs.Fault{
		{Op: faultfs.OpWrite, Keep: 0},
		{Op: faultfs.OpWrite, Keep: 1},
		{Op: faultfs.OpWrite, Keep: 7},
		{Op: faultfs.OpWrite, Keep: 1 << 20}, // full write lands, error reported
		{Op: faultfs.OpSync},
		{Op: faultfs.OpTruncate},
	}
	for _, kind := range kinds {
		kind := kind
		t.Run(fmt.Sprintf("%s-keep%d", kind.Op, kind.Keep), func(t *testing.T) {
			for n := int64(1); ; n++ {
				fsys := faultfs.NewMemFS()
				fault := kind
				fault.N = n
				fsys.Inject(fault)

				w, _, err := Open(fsys, "log.wal")
				if err != nil {
					// The fault hit Open itself (e.g. header sync); that is
					// a clean startup error, not data loss. Nothing acked.
					fsys.Inject(faultfs.Fault{})
					if _, got, rerr := Open(fsys, "log.wal"); rerr != nil || len(got) != 0 {
						t.Fatalf("n=%d: recovery after failed Open: %v (%d records)", n, rerr, len(got))
					}
					continue
				}
				var acked []Record
				for i := 0; i < appends; i++ {
					r := rec(i)
					if err := w.Append(r); err == nil {
						acked = append(acked, r)
					} else if errors.Is(err, ErrBroken) {
						break // repair failed; no further writes accepted
					}
				}
				tripped := fsys.Tripped()
				w.Close()

				// Recovery 1: process restart without power cut.
				fsys.Inject(faultfs.Fault{})
				_, got, err := Open(fsys, "log.wal")
				if err != nil {
					t.Fatalf("n=%d: reopen: %v", n, err)
				}
				mustEqual(t, got, acked, fmt.Sprintf("n=%d live-restart", n))

				// Recovery 2: power cut (unsynced bytes vanish), then restart.
				crashed := fsys.Clone()
				crashed.Crash()
				_, got2, err := Open(crashed, "log.wal")
				if err != nil {
					t.Fatalf("n=%d: reopen after crash: %v", n, err)
				}
				mustEqual(t, got2, acked, fmt.Sprintf("n=%d crash-restart", n))

				if !tripped {
					return // the schedule ran past the scenario: sweep done
				}
			}
		})
	}
}

// TestBrokenLogFailsFast: when the repair truncate also fails, the log
// reports ErrBroken for every later operation.
func TestBrokenLogFailsFast(t *testing.T) {
	fsys := faultfs.NewMemFS()
	w, _, err := Open(fsys, "log.wal")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(rec(0)); err != nil {
		t.Fatal(err)
	}
	// Fail the next sync AND the repair truncate, persistently.
	fsys.Inject(faultfs.Fault{Op: faultfs.OpAny, N: 1, Persistent: true})
	if err := w.Append(rec(1)); err == nil {
		t.Fatal("append with dead disk succeeded")
	}
	if !w.Broken() {
		t.Fatal("log not marked broken after failed repair")
	}
	if err := w.Append(rec(2)); !errors.Is(err, ErrBroken) {
		t.Fatalf("append on broken log: %v", err)
	}
	if err := w.Truncate(); !errors.Is(err, ErrBroken) {
		t.Fatalf("truncate on broken log: %v", err)
	}
	// After a restart with a healthy disk, the acked record is intact.
	fsys.Inject(faultfs.Fault{})
	fsys.Crash()
	_, got, err := Open(fsys, "log.wal")
	if err != nil {
		t.Fatal(err)
	}
	mustEqual(t, got, []Record{rec(0)}, "after broken+crash")
}
