// Package wal is the write-ahead log that makes live inserts durable:
// every observation accepted by the serving layer is appended — length-
// prefixed, CRC-32-checked, fsynced — before the client sees an ack, so
// `snapshot + WAL suffix` always reconstructs the pre-crash state.
//
// # Format
//
//	header  magic "RDFCWAL\x01" (8 bytes: 7 magic + 1 version)
//	record  uint32 LE payload length ++ payload ++ uint32 LE CRC-32
//	        (IEEE) of the payload
//
// Record payloads reuse the snapshot's term-encoding conventions
// (varints, varint-length-prefixed strings) but carry terms inline —
// an append-only log cannot share a dictionary section:
//
//	byte    record kind (1 = insert)
//	uvarint dataset index (position in the snapshot's DSET order)
//	term    observation URI
//	uvarint n, then n dimension value terms (dataset schema order)
//	uvarint m, then m measure value terms  (dataset schema order)
//	term    = kind byte ++ str value ++ str datatype ++ str lang
//
// # Crash semantics
//
// Append frames, writes and fsyncs one record; it returns nil only once
// the record is durable, and the caller acknowledges the insert only
// after that. On any write or sync error Append repairs the log by
// truncating back to the last durable record, so a failed (never-acked)
// append leaves no trace; if even the repair fails the log reports
// itself Broken and the caller degrades to read-only.
//
// Open replays the log: it parses records until the first torn or
// corrupt one, truncates the tail off (a torn tail is the signature of
// a crash mid-append — that record was never acked), and returns the
// surviving records. A log whose header is damaged yields a clean
// error, never a panic.
//
// Truncate resets the log to just its header. The serving layer calls
// it only after a snapshot checkpoint containing every logged record
// has been durably committed.
package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"

	"rdfcube/internal/faultfs"
	"rdfcube/internal/rdf"
)

// magic identifies a WAL stream; the trailing byte is the format version.
var magic = [8]byte{'R', 'D', 'F', 'C', 'W', 'A', 'L', 1}

// HeaderLen is the byte length of the log header. Record frames start at
// this offset; the replication layer's logical offsets count record bytes
// from here.
const HeaderLen = int64(len(magic))

// maxRecord bounds one record payload (16 MiB); larger length prefixes
// are treated as corruption before any allocation happens.
const maxRecord = 1 << 24

// recInsert is the only record kind so far.
const recInsert = 1

// ErrCorrupt wraps structural failures that are not a repairable torn
// tail: a damaged header or an oversized length prefix at offset zero.
var ErrCorrupt = errors.New("wal: corrupt log")

// ErrBroken is returned by Append once the log device has failed in a
// way repair could not undo; the caller must stop acknowledging writes.
var ErrBroken = errors.New("wal: log broken, writes disabled")

// Record is one logged insert, carrying everything needed to rebuild
// the observation against the snapshot's corpus: the dataset's position
// in the snapshot's DSET order and the full value rows in schema order.
type Record struct {
	// Dataset is the corpus index of the observation's dataset.
	Dataset int
	// URI is the observation URI.
	URI rdf.Term
	// DimValues are the dimension values in dataset schema order.
	DimValues []rdf.Term
	// MeasureValues are the measure values in dataset schema order.
	MeasureValues []rdf.Term
}

// Log is an open write-ahead log positioned for appending.
//
// A Log is NOT goroutine-safe: callers must serialize Append, Truncate
// and the accessors under their own lock (the serving layer uses its
// state RWMutex — inserts append under the write lock, and checkpoint
// truncation re-acquires it, so the log never changes between the size
// check and the truncate).
type Log struct {
	fs     faultfs.FS
	f      faultfs.File
	path   string
	size   int64 // bytes of header + committed records
	broken bool

	repaired int64 // torn-tail bytes discarded by Open
}

// Open opens (creating if needed) the WAL at path on fsys, replays the
// existing records, repairs a torn tail, and returns the log positioned
// for appending plus the replayed records. The returned log's header is
// durable before Open returns.
func Open(fsys faultfs.FS, path string) (*Log, []Record, error) {
	data, err := fsys.ReadFile(path)
	switch {
	case err == nil:
	case errors.Is(err, fs.ErrNotExist):
		data = nil
	default:
		return nil, nil, fmt.Errorf("wal: reading %s: %w", path, err)
	}

	var recs []Record
	good := int64(0)
	repaired := int64(0)
	fresh := len(data) == 0

	if !fresh {
		if len(data) < len(magic) {
			// A torn header can only come from a crash during creation,
			// before Open ever returned — nothing was logged. Anything
			// that is not a strict prefix of the magic is foreign data.
			if !bytes.HasPrefix(magic[:], data) {
				return nil, nil, fmt.Errorf("%w: %s: bad header %q", ErrCorrupt, path, data)
			}
			fresh = true
		} else if [8]byte(data[:8]) != magic {
			return nil, nil, fmt.Errorf("%w: %s: bad magic %q", ErrCorrupt, path, data[:8])
		} else {
			recs, good = replay(data)
			repaired = int64(len(data)) - good
		}
	}

	f, err := fsys.OpenAppend(path)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: opening %s: %w", path, err)
	}
	w := &Log{fs: fsys, f: f, path: path, repaired: repaired}
	if fresh {
		// (Re-)write the header and make it durable before any append.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: initializing %s: %w", path, err)
		}
		if _, err := f.Write(magic[:]); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: writing header of %s: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: syncing header of %s: %w", path, err)
		}
		w.size = int64(len(magic))
		return w, nil, nil
	}
	if repaired > 0 {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: repairing torn tail of %s: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: syncing repaired %s: %w", path, err)
		}
	}
	w.size = good
	return w, recs, nil
}

// replay parses records from data (which starts with a valid header),
// stopping at the first torn or corrupt record. It returns the decoded
// records and the offset just past the last valid one.
func replay(data []byte) ([]Record, int64) {
	var recs []Record
	off := len(magic)
	for {
		rec, next, ok := parseRecord(data, off)
		if !ok {
			return recs, int64(off)
		}
		recs = append(recs, rec)
		off = next
	}
}

// parseRecord decodes the record framed at off. ok is false when the
// bytes at off do not form a complete, checksummed, decodable record.
func parseRecord(data []byte, off int) (rec Record, next int, ok bool) {
	if len(data)-off < 4 {
		return rec, 0, false
	}
	n := int(binary.LittleEndian.Uint32(data[off:]))
	if n > maxRecord || len(data)-off < 4+n+4 {
		return rec, 0, false
	}
	payload := data[off+4 : off+4+n]
	crc := binary.LittleEndian.Uint32(data[off+4+n:])
	if crc32.ChecksumIEEE(payload) != crc {
		return rec, 0, false
	}
	r, err := decodeRecord(payload)
	if err != nil {
		return rec, 0, false
	}
	return r, off + 4 + n + 4, true
}

// Append durably logs one record: nil means the record is on stable
// storage and the insert may be acknowledged. On failure the log
// truncates back to its last durable record (so the unacknowledged
// record cannot resurface after a restart); if that repair fails too,
// the log is Broken and every later Append fails fast.
func (w *Log) Append(rec Record) error {
	if w.broken {
		return ErrBroken
	}
	payload := encodeRecord(rec)
	frame := make([]byte, 0, 4+len(payload)+4)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = append(frame, payload...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))

	if _, err := w.f.Write(frame); err != nil {
		return w.repairOr(fmt.Errorf("wal: append: %w", err))
	}
	if err := w.f.Sync(); err != nil {
		return w.repairOr(fmt.Errorf("wal: fsync: %w", err))
	}
	w.size += int64(len(frame))
	return nil
}

// repairOr truncates the log back to the last durable record after a
// failed append and returns err; if the truncate itself fails the log
// is marked broken.
func (w *Log) repairOr(err error) error {
	if terr := w.f.Truncate(w.size); terr != nil {
		w.broken = true
		return fmt.Errorf("%w (repair failed: %v; original: %v)", ErrBroken, terr, err)
	}
	return err
}

// Truncate resets the log to just its header — every logged record is
// discarded. Callers invoke it only after a checkpoint containing those
// records has been durably committed.
func (w *Log) Truncate() error {
	if w.broken {
		return ErrBroken
	}
	if err := w.f.Truncate(int64(len(magic))); err != nil {
		w.broken = true
		return fmt.Errorf("wal: truncate: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		w.broken = true
		return fmt.Errorf("wal: truncate sync: %w", err)
	}
	w.size = int64(len(magic))
	return nil
}

// AppendBatch durably logs several records with a single fsync: every
// frame is written, then one Sync covers them all. nil means ALL records
// are on stable storage. Followers use it to persist a replicated batch
// without paying one fsync per record; the primary's insert path keeps
// the per-record Append (each ack needs its own durability point). The
// failure semantics match Append: a failed batch is truncated back to
// the last durable record as a unit, and an unrepairable failure marks
// the log Broken.
func (w *Log) AppendBatch(recs []Record) error {
	if w.broken {
		return ErrBroken
	}
	if len(recs) == 0 {
		return nil
	}
	var frame []byte
	for _, rec := range recs {
		payload := encodeRecord(rec)
		frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
		frame = append(frame, payload...)
		frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
	}
	if _, err := w.f.Write(frame); err != nil {
		return w.repairOr(fmt.Errorf("wal: batch append: %w", err))
	}
	if err := w.f.Sync(); err != nil {
		return w.repairOr(fmt.Errorf("wal: batch fsync: %w", err))
	}
	w.size += int64(len(frame))
	return nil
}

// ReadRange returns up to max bytes of durable record frames starting at
// byte offset from (header included in the offset arithmetic, so the
// first record frame lives at HeaderLen). It reads only committed bytes —
// never a torn tail being appended — and trims the window back to the
// last complete frame boundary, so the returned bytes always parse with
// ParseFrames. A from that is inside the durable range but not on a
// frame boundary is reported by ErrNotBoundary (the caller turns it into
// a client error); from beyond the durable size is an error too.
//
// The read goes through the filesystem, not the append handle, and costs
// O(log size); callers serialize it with Append/Truncate under the same
// lock they already hold for those.
func (w *Log) ReadRange(from int64, max int) ([]byte, error) {
	if w.broken {
		return nil, ErrBroken
	}
	if from < HeaderLen || from > w.size {
		return nil, fmt.Errorf("wal: read offset %d outside durable range [%d, %d]", from, HeaderLen, w.size)
	}
	if from == w.size || max <= 0 {
		return nil, nil
	}
	data, err := w.fs.ReadFile(w.path)
	if err != nil {
		return nil, fmt.Errorf("wal: reading %s: %w", w.path, err)
	}
	end := w.size // never serve past the durable mark, whatever the file holds
	if int64(len(data)) < end {
		return nil, fmt.Errorf("wal: %s shrank under us: %d bytes on disk, %d durable", w.path, len(data), end)
	}
	if hi := from + int64(max); hi < end {
		end = hi
	}
	window := data[from:end]
	_, good, err := ParseFrames(window)
	if err != nil && good == 0 {
		return nil, fmt.Errorf("%w: offset %d", ErrNotBoundary, from)
	}
	if good == 0 && end < w.size {
		// The window cut the first frame short of the durable end: widen to
		// that one whole frame so a tiny max can never wedge a reader.
		if len(data)-int(from) < 4 {
			return nil, fmt.Errorf("%w: offset %d", ErrNotBoundary, from)
		}
		n := int64(binary.LittleEndian.Uint32(data[from:]))
		if n > maxRecord || from+4+n+4 > w.size {
			return nil, fmt.Errorf("%w: offset %d", ErrNotBoundary, from)
		}
		window = data[from : from+4+n+4]
		_, good, err = ParseFrames(window)
		if err != nil {
			return nil, fmt.Errorf("%w: offset %d", ErrNotBoundary, from)
		}
	}
	if good == 0 {
		// Frames never straddle the durable mark, so a true boundary with
		// durable bytes ahead always parses at least one complete frame.
		// Zero frames means the offset landed inside a record — typically a
		// misread length prefix that made the "frame" look cut short.
		return nil, fmt.Errorf("%w: offset %d", ErrNotBoundary, from)
	}
	return window[:good], nil
}

// ErrNotBoundary reports a ReadRange offset that falls inside the durable
// range but not on a record-frame boundary.
var ErrNotBoundary = errors.New("wal: offset is not a record boundary")

// ParseFrames decodes consecutive record frames from the start of data,
// re-validating each frame's length and CRC. It returns the decoded
// records and the number of bytes they occupied. A trailing incomplete
// frame (the stream was cut mid-frame) simply stops the parse — the
// caller resumes at the returned boundary. err is non-nil only when a
// COMPLETE frame in data is corrupt (bad CRC or undecodable payload):
// that is data corruption, not truncation, and must not be skipped over.
func ParseFrames(data []byte) (recs []Record, good int64, err error) {
	off := 0
	for {
		if len(data)-off < 4 {
			return recs, int64(off), nil
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		if n > maxRecord {
			return recs, int64(off), fmt.Errorf("wal: frame at %d: length %d exceeds limit", off, n)
		}
		if len(data)-off < 4+n+4 {
			return recs, int64(off), nil // cut mid-frame
		}
		payload := data[off+4 : off+4+n]
		crc := binary.LittleEndian.Uint32(data[off+4+n:])
		if crc32.ChecksumIEEE(payload) != crc {
			return recs, int64(off), fmt.Errorf("wal: frame at %d: CRC mismatch", off)
		}
		rec, derr := decodeRecord(payload)
		if derr != nil {
			return recs, int64(off), fmt.Errorf("wal: frame at %d: %w", off, derr)
		}
		recs = append(recs, rec)
		off += 4 + n + 4
	}
}

// Size reports the durable log length in bytes (header included).
func (w *Log) Size() int64 { return w.size }

// Records reports how many record bytes the log holds (0 right after
// Truncate).
func (w *Log) RecordBytes() int64 { return w.size - int64(len(magic)) }

// RepairedBytes reports how many torn-tail bytes Open discarded.
func (w *Log) RepairedBytes() int64 { return w.repaired }

// Broken reports whether the log device has failed beyond repair.
func (w *Log) Broken() bool { return w.broken }

// Path reports the log's file path.
func (w *Log) Path() string { return w.path }

// Close releases the file handle. It does not sync: every durable
// record was synced by the Append that wrote it.
func (w *Log) Close() error { return w.f.Close() }

// --- record payload encoding (snapshot conventions, inline terms) ---

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendTerm(b []byte, t rdf.Term) []byte {
	b = append(b, byte(t.Kind))
	b = appendString(b, t.Value)
	b = appendString(b, t.Datatype)
	return appendString(b, t.Lang)
}

func encodeRecord(rec Record) []byte {
	b := []byte{recInsert}
	b = binary.AppendUvarint(b, uint64(rec.Dataset))
	b = appendTerm(b, rec.URI)
	b = binary.AppendUvarint(b, uint64(len(rec.DimValues)))
	for _, t := range rec.DimValues {
		b = appendTerm(b, t)
	}
	b = binary.AppendUvarint(b, uint64(len(rec.MeasureValues)))
	for _, t := range rec.MeasureValues {
		b = appendTerm(b, t)
	}
	return b
}

// rcur is a bounds-checked cursor over one record payload.
type rcur struct {
	b   []byte
	off int
}

func (c *rcur) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.b[c.off:])
	if n <= 0 {
		return 0, fmt.Errorf("bad varint at %d", c.off)
	}
	c.off += n
	return v, nil
}

func (c *rcur) byte() (byte, error) {
	if c.off >= len(c.b) {
		return 0, fmt.Errorf("truncated at %d", c.off)
	}
	b := c.b[c.off]
	c.off++
	return b, nil
}

func (c *rcur) str() (string, error) {
	n, err := c.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(c.b)-c.off) {
		return "", fmt.Errorf("string length %d exceeds payload at %d", n, c.off)
	}
	s := string(c.b[c.off : c.off+int(n)])
	c.off += int(n)
	return s, nil
}

func (c *rcur) term() (rdf.Term, error) {
	kind, err := c.byte()
	if err != nil {
		return rdf.Term{}, err
	}
	if kind > byte(rdf.LiteralKind) {
		return rdf.Term{}, fmt.Errorf("unknown term kind %d", kind)
	}
	val, err := c.str()
	if err != nil {
		return rdf.Term{}, err
	}
	dt, err := c.str()
	if err != nil {
		return rdf.Term{}, err
	}
	lang, err := c.str()
	if err != nil {
		return rdf.Term{}, err
	}
	return rdf.Term{Kind: rdf.Kind(kind), Value: val, Datatype: dt, Lang: lang}, nil
}

func (c *rcur) termList(maxLen int) ([]rdf.Term, error) {
	n, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(maxLen) {
		return nil, fmt.Errorf("list length %d exceeds payload", n)
	}
	out := make([]rdf.Term, n)
	for i := range out {
		if out[i], err = c.term(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func decodeRecord(payload []byte) (Record, error) {
	c := &rcur{b: payload}
	kind, err := c.byte()
	if err != nil {
		return Record{}, err
	}
	if kind != recInsert {
		return Record{}, fmt.Errorf("unknown record kind %d", kind)
	}
	var rec Record
	ds, err := c.uvarint()
	if err != nil {
		return Record{}, err
	}
	rec.Dataset = int(ds)
	if rec.URI, err = c.term(); err != nil {
		return Record{}, err
	}
	// Each term costs at least 4 bytes (kind + three length prefixes).
	if rec.DimValues, err = c.termList(len(payload) / 4); err != nil {
		return Record{}, err
	}
	if rec.MeasureValues, err = c.termList(len(payload) / 4); err != nil {
		return Record{}, err
	}
	if c.off != len(payload) {
		return Record{}, fmt.Errorf("%d trailing bytes", len(payload)-c.off)
	}
	return rec, nil
}
