// Package leakcheck fails tests that leave goroutines behind. The
// cancellation machinery of this repo is exactly the kind of code that
// leaks quietly — a worker blocked on an unread channel after its pool
// was abandoned, a watchdog whose stop was skipped on an error path, an
// http server goroutine outliving its test — so tests that exercise
// canceled parallel runs and server shutdowns register Check(t) and get
// a hard failure listing the stuck stacks instead of a slow pile-up
// that only -race or CI timeouts would surface.
package leakcheck

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// ignored returns true for goroutines that are part of the runtime or
// the testing harness rather than the code under test.
func ignored(stack string) bool {
	for _, s := range []string{
		"testing.Main(",
		"testing.tRunner(",
		"testing.(*M).",
		"testing.runFuzzing(",
		"testing.runFuzzTests(",
		"runtime.goexit",
		"created by runtime.gc",
		"runtime.MHeap_Scavenger",
		"os/signal.signal_recv",
		"os/signal.loop",
		"runtime.ensureSigM",
		"interestingGoroutines",
		"signal.Notify",
	} {
		if strings.Contains(stack, s) {
			return true
		}
	}
	return false
}

// normalize strips the volatile parts of one goroutine's stack — the
// header's id and wait state, hex addresses, argument values — so the
// same logical goroutine compares equal across two dumps even though
// its wait time and pointers changed.
func normalize(g string) string {
	var b strings.Builder
	for _, line := range strings.Split(g, "\n") {
		if strings.HasPrefix(line, "goroutine ") {
			continue // header: "goroutine 12 [select, 2 minutes]:"
		}
		if i := strings.IndexByte(line, '('); i >= 0 && !strings.HasPrefix(line, "\t") {
			line = line[:i] // drop argument values from function lines
		}
		if i := strings.Index(line, " +0x"); i >= 0 {
			line = line[:i] // drop code offsets from file:line lines
		}
		b.WriteString(line)
		b.WriteByte('\n')
	}
	return b.String()
}

// interestingGoroutines returns the stacks of all goroutines that are
// neither runtime/testing machinery nor this function itself.
func interestingGoroutines() []string {
	buf := make([]byte, 2<<20)
	buf = buf[:runtime.Stack(buf, true)]
	var out []string
	for _, g := range strings.Split(string(buf), "\n\n") {
		sl := strings.SplitN(g, "\n", 2)
		if len(sl) != 2 {
			continue
		}
		stack := strings.TrimSpace(sl[1])
		if stack == "" || ignored(stack) {
			continue
		}
		out = append(out, g)
	}
	return out
}

// Check registers a cleanup that fails t when goroutines created during
// the test are still running shortly after it ends. Goroutines present
// BEFORE the test (a previous test's http keep-alive, the collector of
// a shared fixture) are grandfathered: only new stacks count. The check
// retries for up to two seconds, because legitimate teardown (an http
// server draining, a worker observing its canceled context) needs a
// moment to finish — only goroutines that never exit are reported.
func Check(t testing.TB) {
	t.Helper()
	before := map[string]bool{}
	for _, g := range interestingGoroutines() {
		before[normalize(g)] = true
	}
	t.Cleanup(func() {
		var leaked []string
		deadline := time.Now().Add(2 * time.Second)
		for {
			leaked = leaked[:0]
			for _, g := range interestingGoroutines() {
				if !before[normalize(g)] {
					leaked = append(leaked, g)
				}
			}
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		for _, g := range leaked {
			t.Errorf("leaked goroutine:\n%s", g)
		}
	})
}
