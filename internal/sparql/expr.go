package sparql

import (
	"strconv"
	"strings"

	"rdfcube/internal/rdf"
)

// Expr is a SPARQL filter expression. Evaluation yields an rdf.Term value
// (booleans as xsd:boolean literals) or an error state represented by the
// zero Term, which propagates like SPARQL's type errors.
type Expr interface {
	eval(b binding, ev *evaluator) rdf.Term
}

// binding maps variable slots to terms; the zero Term means unbound.
type binding []rdf.Term

var (
	trueTerm  = rdf.NewTypedLiteral("true", rdf.XSDBoolean)
	falseTerm = rdf.NewTypedLiteral("false", rdf.XSDBoolean)
)

func boolTerm(b bool) rdf.Term {
	if b {
		return trueTerm
	}
	return falseTerm
}

// ebv is the SPARQL effective boolean value; the second result is false on
// a type error.
func ebv(t rdf.Term) (bool, bool) {
	if t.IsZero() {
		return false, false
	}
	if t.Kind != rdf.LiteralKind {
		return false, false
	}
	switch t.Datatype {
	case rdf.XSDBoolean:
		return t.Value == "true" || t.Value == "1", true
	case rdf.XSDInteger, rdf.XSDDecimal, rdf.XSDDouble:
		f, err := strconv.ParseFloat(t.Value, 64)
		if err != nil {
			return false, true
		}
		return f != 0, true
	default:
		return t.Value != "", true
	}
}

// varExpr references a variable slot.
type varExpr struct{ slot int }

func (e varExpr) eval(b binding, _ *evaluator) rdf.Term { return b[e.slot] }

// constExpr wraps a constant term.
type constExpr struct{ t rdf.Term }

func (e constExpr) eval(binding, *evaluator) rdf.Term { return e.t }

// logicalExpr is && or ||.
type logicalExpr struct {
	and  bool
	l, r Expr
}

func (e logicalExpr) eval(b binding, ev *evaluator) rdf.Term {
	lv, lok := ebv(e.l.eval(b, ev))
	rv, rok := ebv(e.r.eval(b, ev))
	if e.and {
		switch {
		case lok && rok:
			return boolTerm(lv && rv)
		case lok && !lv, rok && !rv:
			return falseTerm
		default:
			return rdf.Term{}
		}
	}
	switch {
	case lok && rok:
		return boolTerm(lv || rv)
	case lok && lv, rok && rv:
		return trueTerm
	default:
		return rdf.Term{}
	}
}

// notExpr is !e.
type notExpr struct{ e Expr }

func (e notExpr) eval(b binding, ev *evaluator) rdf.Term {
	v, ok := ebv(e.e.eval(b, ev))
	if !ok {
		return rdf.Term{}
	}
	return boolTerm(!v)
}

// cmpExpr is a comparison: = != < <= > >=.
type cmpExpr struct {
	op   string
	l, r Expr
}

func (e cmpExpr) eval(b binding, ev *evaluator) rdf.Term {
	lv := e.l.eval(b, ev)
	rv := e.r.eval(b, ev)
	if lv.IsZero() || rv.IsZero() {
		return rdf.Term{}
	}
	switch e.op {
	case "=":
		return boolTerm(termsEqual(lv, rv))
	case "!=":
		return boolTerm(!termsEqual(lv, rv))
	}
	// Ordering comparisons: numeric when both sides are numeric, string
	// comparison of lexical forms otherwise.
	lf, lnum := numericValue(lv)
	rf, rnum := numericValue(rv)
	var c int
	if lnum && rnum {
		switch {
		case lf < rf:
			c = -1
		case lf > rf:
			c = 1
		}
	} else {
		c = strings.Compare(lv.Value, rv.Value)
	}
	switch e.op {
	case "<":
		return boolTerm(c < 0)
	case "<=":
		return boolTerm(c <= 0)
	case ">":
		return boolTerm(c > 0)
	case ">=":
		return boolTerm(c >= 0)
	}
	return rdf.Term{}
}

// termsEqual implements SPARQL's RDFterm-equal with numeric value equality.
func termsEqual(a, b rdf.Term) bool {
	if a == b {
		return true
	}
	if af, aok := numericValue(a); aok {
		if bf, bok := numericValue(b); bok {
			return af == bf
		}
	}
	return false
}

func numericValue(t rdf.Term) (float64, bool) {
	if t.Kind != rdf.LiteralKind {
		return 0, false
	}
	switch t.Datatype {
	case rdf.XSDInteger, rdf.XSDDecimal, rdf.XSDDouble:
		f, err := strconv.ParseFloat(t.Value, 64)
		return f, err == nil
	}
	return 0, false
}

// boundExpr is BOUND(?v).
type boundExpr struct{ slot int }

func (e boundExpr) eval(b binding, _ *evaluator) rdf.Term {
	return boolTerm(!b[e.slot].IsZero())
}

// unaryFnExpr covers STR, LANG, DATATYPE, ISIRI, ISLITERAL, ISBLANK.
type unaryFnExpr struct {
	fn  string
	arg Expr
}

func (e unaryFnExpr) eval(b binding, ev *evaluator) rdf.Term {
	v := e.arg.eval(b, ev)
	if v.IsZero() {
		return rdf.Term{}
	}
	switch e.fn {
	case "STR":
		return rdf.NewLiteral(v.Value)
	case "LANG":
		return rdf.NewLiteral(v.Lang)
	case "DATATYPE":
		dt := v.Datatype
		if v.Kind == rdf.LiteralKind && dt == "" {
			dt = rdf.XSDString
		}
		return rdf.NewIRI(dt)
	case "ISIRI", "ISURI":
		return boolTerm(v.Kind == rdf.IRIKind)
	case "ISLITERAL":
		return boolTerm(v.Kind == rdf.LiteralKind)
	case "ISBLANK":
		return boolTerm(v.Kind == rdf.BlankKind)
	}
	return rdf.Term{}
}

// regexExpr is REGEX(str, pattern) with plain substring semantics for the
// common unanchored case and prefix/suffix anchors — not a full RE engine;
// enough for code-list matching in examples and tests.
type regexExpr struct {
	arg, pattern Expr
}

func (e regexExpr) eval(b binding, ev *evaluator) rdf.Term {
	v := e.arg.eval(b, ev)
	p := e.pattern.eval(b, ev)
	if v.IsZero() || p.IsZero() {
		return rdf.Term{}
	}
	pat := p.Value
	s := v.Value
	switch {
	case strings.HasPrefix(pat, "^") && strings.HasSuffix(pat, "$"):
		return boolTerm(s == pat[1:len(pat)-1])
	case strings.HasPrefix(pat, "^"):
		return boolTerm(strings.HasPrefix(s, pat[1:]))
	case strings.HasSuffix(pat, "$"):
		return boolTerm(strings.HasSuffix(s, pat[:len(pat)-1]))
	default:
		return boolTerm(strings.Contains(s, pat))
	}
}

// existsExpr is EXISTS { ... } / NOT EXISTS { ... }.
type existsExpr struct {
	neg   bool
	group *groupPattern
}

func (e existsExpr) eval(b binding, ev *evaluator) rdf.Term {
	found := false
	ev.evalGroup(e.group, b, func(binding) bool {
		found = true
		return false
	})
	return boolTerm(found != e.neg)
}

// inExpr is ?v IN (e1, e2, ...).
type inExpr struct {
	neg  bool
	l    Expr
	list []Expr
}

func (e inExpr) eval(b binding, ev *evaluator) rdf.Term {
	lv := e.l.eval(b, ev)
	if lv.IsZero() {
		return rdf.Term{}
	}
	for _, x := range e.list {
		if termsEqual(lv, x.eval(b, ev)) {
			return boolTerm(!e.neg)
		}
	}
	return boolTerm(e.neg)
}
