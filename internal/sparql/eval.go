package sparql

import (
	"context"

	"rdfcube/internal/rdf"
)

// cNode is a compiled pattern slot: either a constant term or a variable
// slot index.
type cNode struct {
	slot int // -1 for constants
	term rdf.Term
}

// cPattern is a compiled triple pattern.
type cPattern struct {
	s, p, o cNode
	path    *Path
}

// filterInfo is compile-time metadata for one filter expression.
type filterInfo struct {
	expr      Expr
	freeSlots []int
	hasExists bool
}

// evaluator executes a compiled query against a graph.
type evaluator struct {
	g *rdf.Graph
	q *Query

	vars     map[string]int
	varNames []string

	cPatterns map[*triplesElem][]cPattern
	cFilters  map[*groupPattern][]filterInfo

	ctx      context.Context
	ctxTick  int
	canceled bool
}

// checkCtx polls the context every few thousand pattern evaluations; once
// canceled, every emit chain aborts.
func (ev *evaluator) checkCtx() bool {
	if ev.ctx == nil {
		return true
	}
	if ev.canceled {
		return false
	}
	ev.ctxTick++
	if ev.ctxTick&0x3ff == 0 && ev.ctx.Err() != nil {
		ev.canceled = true
		return false
	}
	return true
}

func newEvaluator(g *rdf.Graph, q *Query, vars map[string]int, varNames []string) *evaluator {
	ev := &evaluator{
		g: g, q: q,
		vars:      vars,
		varNames:  varNames,
		cPatterns: map[*triplesElem][]cPattern{},
		cFilters:  map[*groupPattern][]filterInfo{},
	}
	ev.compileGroup(q.where)
	return ev
}

func (ev *evaluator) slot(name string) int {
	if i, ok := ev.vars[name]; ok {
		return i
	}
	i := len(ev.varNames)
	ev.vars[name] = i
	ev.varNames = append(ev.varNames, name)
	return i
}

func (ev *evaluator) compileNode(n Node) cNode {
	if n.IsVar() {
		return cNode{slot: ev.slot(n.Var())}
	}
	return cNode{slot: -1, term: n.Term()}
}

func (ev *evaluator) compileGroup(g *groupPattern) {
	for _, el := range g.elems {
		switch e := el.(type) {
		case *triplesElem:
			cs := make([]cPattern, len(e.patterns))
			for i, tp := range e.patterns {
				cs[i] = cPattern{s: ev.compileNode(tp.S), p: ev.compileNode(tp.P), o: ev.compileNode(tp.O), path: tp.Path}
			}
			ev.cPatterns[e] = cs
		case *optionalElem:
			ev.compileGroup(e.group)
		case *unionElem:
			for _, sub := range e.groups {
				ev.compileGroup(sub)
			}
		case *groupPattern:
			ev.compileGroup(e)
		}
	}
	infos := make([]filterInfo, len(g.filters))
	for i, f := range g.filters {
		fi := filterInfo{expr: f}
		collectExprInfo(f, &fi)
		infos[i] = fi
		if fi.hasExists {
			// compile nested EXISTS groups too
			compileExistsGroups(ev, f)
		}
	}
	ev.cFilters[g] = infos
}

func compileExistsGroups(ev *evaluator, e Expr) {
	switch x := e.(type) {
	case existsExpr:
		ev.compileGroup(x.group)
	case logicalExpr:
		compileExistsGroups(ev, x.l)
		compileExistsGroups(ev, x.r)
	case notExpr:
		compileExistsGroups(ev, x.e)
	case cmpExpr:
		compileExistsGroups(ev, x.l)
		compileExistsGroups(ev, x.r)
	case inExpr:
		compileExistsGroups(ev, x.l)
		for _, y := range x.list {
			compileExistsGroups(ev, y)
		}
	case unaryFnExpr:
		compileExistsGroups(ev, x.arg)
	case regexExpr:
		compileExistsGroups(ev, x.arg)
		compileExistsGroups(ev, x.pattern)
	}
}

func collectExprInfo(e Expr, fi *filterInfo) {
	switch x := e.(type) {
	case varExpr:
		fi.freeSlots = append(fi.freeSlots, x.slot)
	case boundExpr:
		fi.freeSlots = append(fi.freeSlots, x.slot)
	case logicalExpr:
		collectExprInfo(x.l, fi)
		collectExprInfo(x.r, fi)
	case notExpr:
		collectExprInfo(x.e, fi)
	case cmpExpr:
		collectExprInfo(x.l, fi)
		collectExprInfo(x.r, fi)
	case inExpr:
		collectExprInfo(x.l, fi)
		for _, y := range x.list {
			collectExprInfo(y, fi)
		}
	case unaryFnExpr:
		collectExprInfo(x.arg, fi)
	case regexExpr:
		collectExprInfo(x.arg, fi)
		collectExprInfo(x.pattern, fi)
	case existsExpr:
		fi.hasExists = true
	}
}

// evalGroup streams the group's solutions that extend binding b. Filters
// without EXISTS apply as soon as their free variables are bound (a safe
// monotone optimization); EXISTS-bearing filters apply at group end.
// Returns false when the emit chain aborted.
func (ev *evaluator) evalGroup(g *groupPattern, b binding, emit func(binding) bool) bool {
	infos := ev.cFilters[g]
	applied := make([]bool, len(infos))
	return ev.evalElems(g, 0, applied, b, emit)
}

func (ev *evaluator) checkReadyFilters(g *groupPattern, applied []bool, b binding, final bool) (ok bool, newApplied []bool) {
	infos := ev.cFilters[g]
	newApplied = applied
	copied := false
	for i := range infos {
		if applied[i] {
			continue
		}
		ready := final
		if !ready && !infos[i].hasExists {
			ready = true
			for _, s := range infos[i].freeSlots {
				if b[s].IsZero() {
					ready = false
					break
				}
			}
		}
		if !ready {
			continue
		}
		v, okv := ebv(infos[i].expr.eval(b, ev))
		if !okv || !v {
			return false, applied
		}
		if !copied {
			newApplied = append([]bool{}, newApplied...)
			copied = true
		}
		newApplied[i] = true
	}
	return true, newApplied
}

func (ev *evaluator) evalElems(g *groupPattern, idx int, applied []bool, b binding, emit func(binding) bool) bool {
	ok, applied := ev.checkReadyFilters(g, applied, b, idx == len(g.elems))
	if !ok {
		return true
	}
	if idx == len(g.elems) {
		return emit(b)
	}
	cont := func(b2 binding) bool {
		return ev.evalElems(g, idx+1, applied, b2, emit)
	}
	switch e := g.elems[idx].(type) {
	case *triplesElem:
		return ev.evalBGP(ev.cPatterns[e], b, cont)
	case *optionalElem:
		matched := false
		ok := ev.evalGroup(e.group, b, func(b2 binding) bool {
			matched = true
			return cont(b2)
		})
		if !ok {
			return false
		}
		if !matched {
			return cont(b)
		}
		return true
	case *unionElem:
		for _, sub := range e.groups {
			if !ev.evalGroup(sub, b, cont) {
				return false
			}
		}
		return true
	case *groupPattern:
		return ev.evalGroup(e, b, cont)
	}
	return true
}

// evalBGP joins the patterns with dynamic greedy ordering: at every level
// the most-bound remaining pattern runs next.
func (ev *evaluator) evalBGP(patterns []cPattern, b binding, emit func(binding) bool) bool {
	if len(patterns) == 0 {
		return emit(b)
	}
	best, bestScore := 0, -1
	for i, p := range patterns {
		s := ev.patternScore(p, b)
		if s > bestScore {
			best, bestScore = i, s
		}
	}
	rest := make([]cPattern, 0, len(patterns)-1)
	rest = append(rest, patterns[:best]...)
	rest = append(rest, patterns[best+1:]...)
	return ev.evalPattern(patterns[best], b, func(b2 binding) bool {
		return ev.evalBGP(rest, b2, emit)
	})
}

func (ev *evaluator) patternScore(p cPattern, b binding) int {
	score := 0
	bound := func(n cNode) bool { return n.slot < 0 || !b[n.slot].IsZero() }
	if bound(p.s) {
		score += 4
	}
	if p.path == nil && bound(p.p) {
		score += 2
	}
	if bound(p.o) {
		score += 3
	}
	if p.path != nil {
		score -= 2 // paths are expensive; bind their endpoints first
	}
	return score
}

func (ev *evaluator) resolve(n cNode, b binding) rdf.Term {
	if n.slot < 0 {
		return n.term
	}
	return b[n.slot]
}

// bindIfNeeded binds slot to t; reports false on conflict with an existing
// binding. undo receives the slot when a new binding was created.
func bindIfNeeded(b binding, n cNode, t rdf.Term, undo *[]int) bool {
	if n.slot < 0 {
		return n.term == t
	}
	cur := b[n.slot]
	if !cur.IsZero() {
		return cur == t
	}
	b[n.slot] = t
	*undo = append(*undo, n.slot)
	return true
}

func (ev *evaluator) evalPattern(p cPattern, b binding, emit func(binding) bool) bool {
	if !ev.checkCtx() {
		return false
	}
	if p.path != nil {
		return ev.evalPathPattern(p, b, emit)
	}
	s := ev.resolve(p.s, b)
	pr := ev.resolve(p.p, b)
	o := ev.resolve(p.o, b)
	ok := true
	ev.g.Match(s, pr, o, func(t rdf.Triple) bool {
		var undo []int
		if bindIfNeeded(b, p.s, t.S, &undo) &&
			bindIfNeeded(b, p.p, t.P, &undo) &&
			bindIfNeeded(b, p.o, t.O, &undo) {
			ok = emit(b)
		}
		for _, u := range undo {
			b[u] = rdf.Term{}
		}
		return ok
	})
	return ok
}

func (ev *evaluator) evalPathPattern(p cPattern, b binding, emit func(binding) bool) bool {
	s := ev.resolve(p.s, b)
	o := ev.resolve(p.o, b)
	switch {
	case !s.IsZero() && !o.IsZero():
		if pathHolds(ev.g, p.path, s, o) {
			return emit(b)
		}
		return true
	case !s.IsZero():
		ok := true
		evalPathForward(ev.g, p.path, s, func(t rdf.Term) bool {
			var undo []int
			if bindIfNeeded(b, p.o, t, &undo) {
				ok = emit(b)
			}
			for _, u := range undo {
				b[u] = rdf.Term{}
			}
			return ok
		})
		return ok
	case !o.IsZero():
		ok := true
		evalPathBackward(ev.g, p.path, o, func(t rdf.Term) bool {
			var undo []int
			if bindIfNeeded(b, p.s, t, &undo) {
				ok = emit(b)
			}
			for _, u := range undo {
				b[u] = rdf.Term{}
			}
			return ok
		})
		return ok
	default:
		ok := true
		pathStartCandidates(ev.g, p.path, func(start rdf.Term) bool {
			var undoS []int
			if !bindIfNeeded(b, p.s, start, &undoS) {
				for _, u := range undoS {
					b[u] = rdf.Term{}
				}
				return true
			}
			evalPathForward(ev.g, p.path, start, func(t rdf.Term) bool {
				var undo []int
				if bindIfNeeded(b, p.o, t, &undo) {
					ok = emit(b)
				}
				for _, u := range undo {
					b[u] = rdf.Term{}
				}
				return ok
			})
			for _, u := range undoS {
				b[u] = rdf.Term{}
			}
			return ok
		})
		return ok
	}
}
