package sparql

import "rdfcube/internal/rdf"

// PathOp is a property-path operator.
type PathOp int

// Path operators.
const (
	// PathLink is a single predicate IRI step.
	PathLink PathOp = iota
	// PathInverse reverses its operand (^p).
	PathInverse
	// PathSeq chains its operands (p1/p2).
	PathSeq
	// PathAlt branches over its operands (p1|p2).
	PathAlt
	// PathZeroOrMore is p*.
	PathZeroOrMore
	// PathOneOrMore is p+.
	PathOneOrMore
	// PathZeroOrOne is p?.
	PathZeroOrOne
)

// Path is a property-path expression tree.
type Path struct {
	Op   PathOp
	IRI  rdf.Term // PathLink only
	Subs []*Path  // operands for the composite operators
}

// linkPath returns a single-IRI path step.
func linkPath(iri rdf.Term) *Path { return &Path{Op: PathLink, IRI: iri} }

// evalPathForward streams every object reachable from subject s via the
// path, calling emit once per distinct target. It implements the SPARQL
// ALP semantics (cycle-safe, set results for * and +).
func evalPathForward(g *rdf.Graph, p *Path, s rdf.Term, emit func(rdf.Term) bool) bool {
	seen := map[rdf.Term]bool{}
	return pathStep(g, p, s, false, func(t rdf.Term) bool {
		if seen[t] {
			return true
		}
		seen[t] = true
		return emit(t)
	})
}

// evalPathBackward streams every subject that reaches object o via the path.
func evalPathBackward(g *rdf.Graph, p *Path, o rdf.Term, emit func(rdf.Term) bool) bool {
	seen := map[rdf.Term]bool{}
	return pathStep(g, p, o, true, func(t rdf.Term) bool {
		if seen[t] {
			return true
		}
		seen[t] = true
		return emit(t)
	})
}

// pathHolds reports whether the path connects s to o.
func pathHolds(g *rdf.Graph, p *Path, s, o rdf.Term) bool {
	found := false
	evalPathForward(g, p, s, func(t rdf.Term) bool {
		if t == o {
			found = true
			return false
		}
		return true
	})
	return found
}

// pathStep enumerates path targets from start. When reverse is true the
// path is traversed from object to subject. Emission may contain
// duplicates; callers dedupe. Returns false when the emit chain aborted.
func pathStep(g *rdf.Graph, p *Path, start rdf.Term, reverse bool, emit func(rdf.Term) bool) bool {
	switch p.Op {
	case PathLink:
		ok := true
		if reverse {
			g.Match(rdf.Term{}, p.IRI, start, func(t rdf.Triple) bool {
				ok = emit(t.S)
				return ok
			})
		} else {
			g.Match(start, p.IRI, rdf.Term{}, func(t rdf.Triple) bool {
				ok = emit(t.O)
				return ok
			})
		}
		return ok
	case PathInverse:
		return pathStep(g, p.Subs[0], start, !reverse, emit)
	case PathSeq:
		subs := p.Subs
		if reverse {
			subs = reversePaths(subs)
		}
		return seqStep(g, subs, start, reverse, emit)
	case PathAlt:
		for _, sub := range p.Subs {
			if !pathStep(g, sub, start, reverse, emit) {
				return false
			}
		}
		return true
	case PathZeroOrOne:
		if !emit(start) {
			return false
		}
		return pathStep(g, p.Subs[0], start, reverse, emit)
	case PathZeroOrMore, PathOneOrMore:
		visited := map[rdf.Term]bool{}
		frontier := []rdf.Term{}
		abort := false
		expand := func(from rdf.Term) {
			pathStep(g, p.Subs[0], from, reverse, func(t rdf.Term) bool {
				if !visited[t] {
					visited[t] = true
					frontier = append(frontier, t)
					if !emit(t) {
						abort = true
						return false
					}
				}
				return true
			})
		}
		if p.Op == PathZeroOrMore {
			visited[start] = true
			if !emit(start) {
				return false
			}
		}
		expand(start)
		for len(frontier) > 0 && !abort {
			next := frontier[0]
			frontier = frontier[1:]
			expand(next)
		}
		return !abort
	}
	return true
}

func seqStep(g *rdf.Graph, subs []*Path, start rdf.Term, reverse bool, emit func(rdf.Term) bool) bool {
	if len(subs) == 1 {
		return pathStep(g, subs[0], start, reverse, emit)
	}
	ok := true
	pathStep(g, subs[0], start, reverse, func(mid rdf.Term) bool {
		ok = seqStep(g, subs[1:], mid, reverse, emit)
		return ok
	})
	return ok
}

func reversePaths(subs []*Path) []*Path {
	out := make([]*Path, len(subs))
	for i, s := range subs {
		out[len(subs)-1-i] = s
	}
	return out
}

// pathStartCandidates enumerates terms that can start the path (used when
// both endpoints are unbound): subjects of the leftmost link, or every
// graph node for zero-length-admitting paths.
func pathStartCandidates(g *rdf.Graph, p *Path, emit func(rdf.Term) bool) {
	switch p.Op {
	case PathLink:
		seen := map[rdf.Term]bool{}
		g.Match(rdf.Term{}, p.IRI, rdf.Term{}, func(t rdf.Triple) bool {
			if !seen[t.S] {
				seen[t.S] = true
				if !emit(t.S) {
					return false
				}
			}
			return true
		})
	case PathInverse:
		// Subjects of the inverse are objects of the operand's links; fall
		// back to all terms for composite operands.
		allTerms(g, emit)
	case PathSeq:
		pathStartCandidates(g, p.Subs[0], emit)
	case PathAlt:
		for _, sub := range p.Subs {
			ok := true
			pathStartCandidates(g, sub, func(t rdf.Term) bool { ok = emit(t); return ok })
			if !ok {
				return
			}
		}
	default:
		// Zero-length admitting paths can start anywhere.
		allTerms(g, emit)
	}
}

func allTerms(g *rdf.Graph, emit func(rdf.Term) bool) {
	seen := map[rdf.Term]bool{}
	g.Match(rdf.Term{}, rdf.Term{}, rdf.Term{}, func(t rdf.Triple) bool {
		for _, x := range []rdf.Term{t.S, t.O} {
			if !seen[x] {
				seen[x] = true
				if !emit(x) {
					return false
				}
			}
		}
		return true
	})
}
