package sparql

import (
	"sort"
	"strings"
	"testing"

	"rdfcube/internal/rdf"
	"rdfcube/internal/turtle"
)

const testData = `
@prefix ex: <http://example.org/> .
@prefix skos: <http://www.w3.org/2004/02/skos/core#> .

ex:alice a ex:Person ; ex:name "Alice" ; ex:age 42 ; ex:knows ex:bob, ex:carol .
ex:bob   a ex:Person ; ex:name "Bob" ; ex:age 17 ; ex:knows ex:carol .
ex:carol a ex:Person ; ex:name "Carol" ; ex:age 30 .
ex:dave  a ex:Robot ; ex:name "Dave" .

ex:europe skos:broader ex:world .
ex:greece skos:broader ex:europe .
ex:athens skos:broader ex:greece .
ex:italy  skos:broader ex:europe .
ex:rome   skos:broader ex:italy .
`

func testGraph(t *testing.T) *rdf.Graph {
	t.Helper()
	g, err := turtle.Parse(testData, nil)
	if err != nil {
		t.Fatalf("parse test data: %v", err)
	}
	return g
}

func names(res *Results, v string) []string {
	var out []string
	for _, s := range res.Solutions {
		out = append(out, s[v].Local())
	}
	sort.Strings(out)
	return out
}

func mustExec(t *testing.T, g *rdf.Graph, q string) *Results {
	t.Helper()
	res, err := Exec(g, q)
	if err != nil {
		t.Fatalf("exec %q: %v", q, err)
	}
	return res
}

func TestSelectBasic(t *testing.T) {
	g := testGraph(t)
	res := mustExec(t, g, `PREFIX ex: <http://example.org/>
SELECT ?p WHERE { ?p a ex:Person }`)
	got := names(res, "p")
	want := []string{"alice", "bob", "carol"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestSelectJoin(t *testing.T) {
	g := testGraph(t)
	res := mustExec(t, g, `PREFIX ex: <http://example.org/>
SELECT ?n WHERE { ?p ex:knows ?q . ?q ex:name ?n }`)
	got := names(res, "n")
	want := []string{"Bob", "Carol", "Carol"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestSelectDistinct(t *testing.T) {
	g := testGraph(t)
	res := mustExec(t, g, `PREFIX ex: <http://example.org/>
SELECT DISTINCT ?n WHERE { ?p ex:knows ?q . ?q ex:name ?n }`)
	if res.Len() != 2 {
		t.Errorf("distinct returned %d rows, want 2", res.Len())
	}
}

func TestFilterComparisons(t *testing.T) {
	g := testGraph(t)
	res := mustExec(t, g, `PREFIX ex: <http://example.org/>
SELECT ?p WHERE { ?p ex:age ?a . FILTER(?a >= 30) }`)
	got := names(res, "p")
	want := []string{"alice", "carol"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("got %v, want %v", got, want)
	}

	res = mustExec(t, g, `PREFIX ex: <http://example.org/>
SELECT ?p WHERE { ?p ex:age ?a . FILTER(?a < 18 || ?a = 42) }`)
	got = names(res, "p")
	want = []string{"alice", "bob"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestFilterNotEquals(t *testing.T) {
	g := testGraph(t)
	res := mustExec(t, g, `PREFIX ex: <http://example.org/>
SELECT ?p ?q WHERE { ?p a ex:Person . ?q a ex:Person . FILTER(?p != ?q) }`)
	if res.Len() != 6 {
		t.Errorf("got %d pairs, want 6", res.Len())
	}
}

func TestVariablePredicate(t *testing.T) {
	g := testGraph(t)
	res := mustExec(t, g, `PREFIX ex: <http://example.org/>
SELECT DISTINCT ?d WHERE { ex:alice ?d ?v }`)
	got := names(res, "d")
	want := []string{"age", "knows", "name", "type"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestPropertyPathPlus(t *testing.T) {
	g := testGraph(t)
	res := mustExec(t, g, `PREFIX ex: <http://example.org/>
PREFIX skos: <http://www.w3.org/2004/02/skos/core#>
SELECT ?a WHERE { ex:athens skos:broader+ ?a }`)
	got := names(res, "a")
	want := []string{"europe", "greece", "world"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestPropertyPathStarIncludesSelf(t *testing.T) {
	g := testGraph(t)
	res := mustExec(t, g, `PREFIX ex: <http://example.org/>
PREFIX skos: <http://www.w3.org/2004/02/skos/core#>
SELECT ?a WHERE { ex:athens skos:broader* ?a }`)
	got := names(res, "a")
	want := []string{"athens", "europe", "greece", "world"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestPropertyPathSequenceAndBackward(t *testing.T) {
	g := testGraph(t)
	res := mustExec(t, g, `PREFIX ex: <http://example.org/>
PREFIX skos: <http://www.w3.org/2004/02/skos/core#>
SELECT ?a WHERE { ?a skos:broader/skos:broader ex:world }`)
	got := names(res, "a")
	want := []string{"greece", "italy"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestPropertyPathInverse(t *testing.T) {
	g := testGraph(t)
	res := mustExec(t, g, `PREFIX ex: <http://example.org/>
PREFIX skos: <http://www.w3.org/2004/02/skos/core#>
SELECT ?a WHERE { ex:europe ^skos:broader ?a }`)
	got := names(res, "a")
	want := []string{"greece", "italy"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestPropertyPathAlternative(t *testing.T) {
	g := testGraph(t)
	res := mustExec(t, g, `PREFIX ex: <http://example.org/>
SELECT DISTINCT ?v WHERE { ex:alice (ex:name|ex:age) ?v }`)
	if res.Len() != 2 {
		t.Errorf("got %d rows, want 2", res.Len())
	}
}

func TestNotExists(t *testing.T) {
	g := testGraph(t)
	// Persons nobody knows.
	res := mustExec(t, g, `PREFIX ex: <http://example.org/>
SELECT ?p WHERE { ?p a ex:Person . FILTER NOT EXISTS { ?q ex:knows ?p } }`)
	got := names(res, "p")
	want := []string{"alice"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestNestedNotExists(t *testing.T) {
	g := testGraph(t)
	// Persons all of whose acquaintances are adults: NOT EXISTS a known
	// minor. Carol knows nobody, Alice knows Bob (17).
	res := mustExec(t, g, `PREFIX ex: <http://example.org/>
SELECT ?p WHERE {
  ?p a ex:Person .
  FILTER NOT EXISTS { ?p ex:knows ?q . ?q ex:age ?a . FILTER(?a < 18) }
}`)
	got := names(res, "p")
	want := []string{"bob", "carol"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestOptional(t *testing.T) {
	g := testGraph(t)
	res := mustExec(t, g, `PREFIX ex: <http://example.org/>
SELECT ?p ?q WHERE { ?p a ex:Person . OPTIONAL { ?p ex:knows ?q } }`)
	// alice→bob, alice→carol, bob→carol, carol→(unbound) = 4 rows.
	if res.Len() != 4 {
		t.Fatalf("got %d rows, want 4", res.Len())
	}
	unbound := 0
	for _, s := range res.Solutions {
		if _, ok := s["q"]; !ok {
			unbound++
		}
	}
	if unbound != 1 {
		t.Errorf("got %d rows with unbound ?q, want 1", unbound)
	}
}

func TestUnion(t *testing.T) {
	g := testGraph(t)
	res := mustExec(t, g, `PREFIX ex: <http://example.org/>
SELECT ?x WHERE { { ?x a ex:Person } UNION { ?x a ex:Robot } }`)
	if res.Len() != 4 {
		t.Errorf("got %d rows, want 4", res.Len())
	}
}

func TestOrderLimitOffset(t *testing.T) {
	g := testGraph(t)
	res := mustExec(t, g, `PREFIX ex: <http://example.org/>
SELECT ?n WHERE { ?p ex:name ?n } ORDER BY ?n LIMIT 2 OFFSET 1`)
	got := []string{}
	for _, s := range res.Solutions {
		got = append(got, s["n"].Value)
	}
	if strings.Join(got, ",") != "Bob,Carol" {
		t.Errorf("got %v, want [Bob Carol]", got)
	}
	res = mustExec(t, g, `PREFIX ex: <http://example.org/>
SELECT ?n WHERE { ?p ex:name ?n } ORDER BY DESC(?n) LIMIT 1`)
	if res.Len() != 1 || res.Solutions[0]["n"].Value != "Dave" {
		t.Errorf("DESC order: got %v", res.Solutions)
	}
}

func TestAsk(t *testing.T) {
	g := testGraph(t)
	res := mustExec(t, g, `PREFIX ex: <http://example.org/>
ASK { ex:alice ex:knows ex:bob }`)
	if !res.Bool {
		t.Errorf("ASK known fact: got false")
	}
	res = mustExec(t, g, `PREFIX ex: <http://example.org/>
ASK { ex:bob ex:knows ex:alice }`)
	if res.Bool {
		t.Errorf("ASK unknown fact: got true")
	}
}

func TestBoundAndOptionalFilter(t *testing.T) {
	g := testGraph(t)
	res := mustExec(t, g, `PREFIX ex: <http://example.org/>
SELECT ?p WHERE {
  ?p a ex:Person .
  OPTIONAL { ?p ex:knows ?q }
  FILTER(!BOUND(?q))
}`)
	got := names(res, "p")
	if strings.Join(got, ",") != "carol" {
		t.Errorf("got %v, want [carol]", got)
	}
}

func TestBuiltinFunctions(t *testing.T) {
	g := testGraph(t)
	res := mustExec(t, g, `PREFIX ex: <http://example.org/>
SELECT ?v WHERE { ex:alice ?d ?v . FILTER(ISLITERAL(?v) && REGEX(STR(?v), "^Ali")) }`)
	if res.Len() != 1 || res.Solutions[0]["v"].Value != "Alice" {
		t.Errorf("got %v", res.Solutions)
	}
}

func TestInOperator(t *testing.T) {
	g := testGraph(t)
	res := mustExec(t, g, `PREFIX ex: <http://example.org/>
SELECT ?p WHERE { ?p ex:age ?a . FILTER(?a IN (17, 30)) }`)
	got := names(res, "p")
	want := []string{"bob", "carol"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT ?x",
		"SELECT ?x WHERE { ?x ex:p ?y }", // undefined prefix
		"SELECT ?x WHERE { ?x ",
		"FOO ?x WHERE { ?x ?p ?o }",
		"SELECT ?x WHERE { ?x ?p ?o } LIMIT x",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q): expected error", q)
		}
	}
}

func TestLessThanVsIRI(t *testing.T) {
	// '<' as comparison operator must not be lexed as an IRI opener.
	g := testGraph(t)
	res := mustExec(t, g, `PREFIX ex: <http://example.org/>
SELECT ?p WHERE { ?p ex:age ?a . FILTER(?a < 20) }`)
	got := names(res, "p")
	if strings.Join(got, ",") != "bob" {
		t.Errorf("got %v, want [bob]", got)
	}
}

func TestCountStar(t *testing.T) {
	g := testGraph(t)
	res := mustExec(t, g, `PREFIX ex: <http://example.org/>
SELECT (COUNT(*) AS ?n) WHERE { ?p a ex:Person }`)
	if res.Len() != 1 || res.Solutions[0]["n"].Value != "3" {
		t.Errorf("COUNT(*) = %v", res.Solutions)
	}
}

func TestCountVariableSkipsUnbound(t *testing.T) {
	g := testGraph(t)
	// carol has no ex:knows: COUNT(?q) over the OPTIONAL join counts only
	// bound rows.
	res := mustExec(t, g, `PREFIX ex: <http://example.org/>
SELECT (COUNT(?q) AS ?n) WHERE { ?p a ex:Person . OPTIONAL { ?p ex:knows ?q } }`)
	if res.Solutions[0]["n"].Value != "3" {
		t.Errorf("COUNT(?q) = %v, want 3", res.Solutions[0]["n"].Value)
	}
}

func TestCountDistinct(t *testing.T) {
	g := testGraph(t)
	// alice and bob both know carol: distinct acquaintances = 2.
	res := mustExec(t, g, `PREFIX ex: <http://example.org/>
SELECT (COUNT(DISTINCT ?q) AS ?n) WHERE { ?p ex:knows ?q }`)
	if res.Solutions[0]["n"].Value != "2" {
		t.Errorf("COUNT(DISTINCT ?q) = %v, want 2", res.Solutions[0]["n"].Value)
	}
}

func TestCountParseErrors(t *testing.T) {
	for _, q := range []string{
		`SELECT (COUNT(*) AS n) WHERE { ?s ?p ?o }`,
		`SELECT (COUNT() AS ?n) WHERE { ?s ?p ?o }`,
		`SELECT (COUNT(*) ?n) WHERE { ?s ?p ?o }`,
	} {
		if _, err := Parse(q); err == nil {
			t.Errorf("expected parse error for %q", q)
		}
	}
}

func TestFilterOnOptionalVarErrorSemantics(t *testing.T) {
	g := testGraph(t)
	// carol has no ex:knows; FILTER over the unbound ?q is a type error
	// and excludes her row (SPARQL error semantics).
	res := mustExec(t, g, `PREFIX ex: <http://example.org/>
SELECT ?p ?q WHERE {
  ?p a ex:Person .
  OPTIONAL { ?p ex:knows ?q }
  FILTER(?q != ex:carol)
}`)
	got := map[string]bool{}
	for _, s := range res.Solutions {
		got[s["p"].Local()+"→"+s["q"].Local()] = true
	}
	if len(got) != 1 || !got["alice→bob"] {
		t.Errorf("got %v, want only alice→bob", got)
	}
}

func TestFilterUnboundComparisonExcludes(t *testing.T) {
	g := testGraph(t)
	res := mustExec(t, g, `PREFIX ex: <http://example.org/>
SELECT ?p WHERE { ?p a ex:Person . OPTIONAL { ?p ex:missing ?v } FILTER(?v > 1) }`)
	if res.Len() != 0 {
		t.Errorf("unbound comparison must exclude all rows, got %d", res.Len())
	}
}

func TestFilterMixedTypeOrderingFallsBackToString(t *testing.T) {
	g := testGraph(t)
	// Name (string) compared with a numeric literal: lexical comparison.
	res := mustExec(t, g, `PREFIX ex: <http://example.org/>
SELECT ?p WHERE { ?p ex:name ?n . FILTER(?n > "Bob") }`)
	got := names(res, "p")
	want := []string{"carol", "dave"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestNumericEqualityAcrossDatatypes(t *testing.T) {
	g := testGraph(t)
	// 42 (integer) == 42.0 (decimal) under numeric value equality.
	res := mustExec(t, g, `PREFIX ex: <http://example.org/>
SELECT ?p WHERE { ?p ex:age ?a . FILTER(?a = 42.0) }`)
	got := names(res, "p")
	if strings.Join(got, ",") != "alice" {
		t.Errorf("got %v, want [alice]", got)
	}
}

func TestDistinctWithUnboundColumn(t *testing.T) {
	g := testGraph(t)
	res := mustExec(t, g, `PREFIX ex: <http://example.org/>
SELECT DISTINCT ?q WHERE { ?p a ex:Person . OPTIONAL { ?p ex:knows ?q } }`)
	// bob, carol, and the unbound row: 3 distinct rows.
	if res.Len() != 3 {
		t.Errorf("got %d rows, want 3", res.Len())
	}
}

func TestSameVariableTwiceInPattern(t *testing.T) {
	g := testGraph(t)
	// ?x ex:knows ?x matches nobody (no self-loops in the test data).
	res := mustExec(t, g, `PREFIX ex: <http://example.org/>
SELECT ?x WHERE { ?x ex:knows ?x }`)
	if res.Len() != 0 {
		t.Errorf("self-loop pattern matched %d", res.Len())
	}
	// Subject/object join on the same variable via two patterns.
	res = mustExec(t, g, `PREFIX ex: <http://example.org/>
SELECT ?x WHERE { ex:alice ex:knows ?x . ?x ex:knows ?y }`)
	got := names(res, "x")
	if strings.Join(got, ",") != "bob" {
		t.Errorf("got %v, want [bob]", got)
	}
}

func TestPathZeroOrOne(t *testing.T) {
	g := testGraph(t)
	res := mustExec(t, g, `PREFIX ex: <http://example.org/>
PREFIX skos: <http://www.w3.org/2004/02/skos/core#>
SELECT ?a WHERE { ex:greece skos:broader? ?a }`)
	got := names(res, "a")
	want := []string{"europe", "greece"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestPathBothEndpointsUnbound(t *testing.T) {
	g := testGraph(t)
	res := mustExec(t, g, `PREFIX ex: <http://example.org/>
PREFIX skos: <http://www.w3.org/2004/02/skos/core#>
SELECT ?a ?b WHERE { ?a skos:broader/skos:broader ?b }`)
	// athens→europe, greece→world, italy→world, rome→europe.
	if res.Len() != 4 {
		t.Errorf("got %d rows, want 4: %v", res.Len(), res.Solutions)
	}
}

func TestPathCycleSafety(t *testing.T) {
	g := testGraph(t)
	// Introduce a cycle and ensure * terminates with set semantics.
	g.Add(rdf.NewIRI("http://example.org/world"), rdf.NewIRI(rdf.SkosBroader), rdf.NewIRI("http://example.org/athens"))
	res := mustExec(t, g, `PREFIX ex: <http://example.org/>
PREFIX skos: <http://www.w3.org/2004/02/skos/core#>
SELECT ?a WHERE { ex:athens skos:broader+ ?a }`)
	got := names(res, "a")
	want := []string{"athens", "europe", "greece", "world"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("cycle handling: got %v, want %v", got, want)
	}
}

func TestDatatypeLangStrFunctions(t *testing.T) {
	g := testGraph(t)
	res := mustExec(t, g, `PREFIX ex: <http://example.org/>
PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
SELECT ?p WHERE { ?p ex:age ?a . FILTER(DATATYPE(?a) = xsd:integer && ?p = ex:alice) }`)
	if res.Len() != 1 {
		t.Errorf("DATATYPE filter: %d rows", res.Len())
	}
	res = mustExec(t, g, `PREFIX ex: <http://example.org/>
SELECT ?p WHERE { ?p ex:name ?n . FILTER(LANG(?n) = "") }`)
	if res.Len() != 4 {
		t.Errorf("LANG filter: %d rows, want 4", res.Len())
	}
	res = mustExec(t, g, `PREFIX ex: <http://example.org/>
SELECT ?p WHERE { ?p ex:name ?n . FILTER(ISIRI(?p) && !ISBLANK(?p)) }`)
	if res.Len() != 4 {
		t.Errorf("ISIRI/ISBLANK: %d rows", res.Len())
	}
}

func TestNotInOperator(t *testing.T) {
	g := testGraph(t)
	res := mustExec(t, g, `PREFIX ex: <http://example.org/>
SELECT ?p WHERE { ?p ex:age ?a . FILTER(?a NOT IN (17, 42)) }`)
	got := names(res, "p")
	if strings.Join(got, ",") != "carol" {
		t.Errorf("NOT IN: %v", got)
	}
}

func TestStringLiteralsInQueries(t *testing.T) {
	g := testGraph(t)
	res := mustExec(t, g, `PREFIX ex: <http://example.org/>
SELECT ?p WHERE { ?p ex:name "Alice" }`)
	if res.Len() != 1 {
		t.Errorf("literal object match: %d", res.Len())
	}
	// Escapes inside query strings.
	res = mustExec(t, g, `PREFIX ex: <http://example.org/>
SELECT ?p WHERE { ?p ex:name ?n . FILTER(?n = "Ali\tce" || ?n = "Bob") }`)
	if res.Len() != 1 {
		t.Errorf("escaped literal: %d", res.Len())
	}
}

func TestLangTaggedLiteralInQuery(t *testing.T) {
	g := testGraph(t)
	g.Add(rdf.NewIRI("http://example.org/eve"), rdf.NewIRI("http://example.org/name"),
		rdf.NewLangLiteral("Eva", "de"))
	res := mustExec(t, g, `PREFIX ex: <http://example.org/>
SELECT ?p WHERE { ?p ex:name "Eva"@de }`)
	if res.Len() != 1 {
		t.Errorf("lang literal match: %d", res.Len())
	}
	res = mustExec(t, g, `PREFIX ex: <http://example.org/>
SELECT ?p WHERE { ?p ex:name ?n . FILTER(LANG(?n) = "de") }`)
	if res.Len() != 1 {
		t.Errorf("LANG = de: %d", res.Len())
	}
}

func TestBooleanLiteralAndEBV(t *testing.T) {
	g := testGraph(t)
	g.Add(rdf.NewIRI("http://example.org/alice"), rdf.NewIRI("http://example.org/active"),
		rdf.NewTypedLiteral("true", rdf.XSDBoolean))
	res := mustExec(t, g, `PREFIX ex: <http://example.org/>
SELECT ?p WHERE { ?p ex:active ?v . FILTER(?v) }`)
	if res.Len() != 1 {
		t.Errorf("EBV of boolean literal: %d", res.Len())
	}
	res = mustExec(t, g, `PREFIX ex: <http://example.org/>
SELECT ?p WHERE { ?p ex:active true }`)
	if res.Len() != 1 {
		t.Errorf("boolean term match: %d", res.Len())
	}
}

func TestEBVNumericAndString(t *testing.T) {
	g := testGraph(t)
	// Numeric zero is false, non-zero true; empty string false.
	res := mustExec(t, g, `PREFIX ex: <http://example.org/>
SELECT ?p WHERE { ?p ex:age ?a . FILTER(?a) }`)
	if res.Len() != 3 {
		t.Errorf("EBV of nonzero ages: %d", res.Len())
	}
	res = mustExec(t, g, `PREFIX ex: <http://example.org/>
SELECT ?p WHERE { ?p ex:name ?n . FILTER(?n) }`)
	if res.Len() != 4 {
		t.Errorf("EBV of nonempty names: %d", res.Len())
	}
}

func TestExistsPositive(t *testing.T) {
	g := testGraph(t)
	res := mustExec(t, g, `PREFIX ex: <http://example.org/>
SELECT ?p WHERE { ?p a ex:Person . FILTER EXISTS { ?p ex:knows ?q } }`)
	got := names(res, "p")
	want := []string{"alice", "bob"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("EXISTS: %v", got)
	}
}

func TestLogicalOrWithErrorBranch(t *testing.T) {
	g := testGraph(t)
	// ?q unbound on some rows: (?q = ex:bob || ?a > 20) must still accept
	// rows where the right branch is true.
	res := mustExec(t, g, `PREFIX ex: <http://example.org/>
SELECT ?p WHERE {
  ?p ex:age ?a .
  OPTIONAL { ?p ex:knows ?q }
  FILTER(?q = ex:bob || ?a > 20)
}`)
	got := map[string]bool{}
	for _, s := range res.Solutions {
		got[s["p"].Local()] = true
	}
	if !got["alice"] || !got["carol"] {
		t.Errorf("error-tolerant OR: %v", got)
	}
}

func TestOffsetBeyondResults(t *testing.T) {
	g := testGraph(t)
	res := mustExec(t, g, `PREFIX ex: <http://example.org/>
SELECT ?p WHERE { ?p a ex:Person } ORDER BY ?p OFFSET 10`)
	if res.Len() != 0 {
		t.Errorf("offset past end: %d rows", res.Len())
	}
}
