// Package sparql implements the subset of SPARQL 1.1 the paper's
// comparator experiments require, plus the surrounding conveniences of a
// small query engine: SELECT/ASK queries over basic graph patterns with
// variable predicates, property paths (sequence, alternative, inverse,
// *, +, ?), FILTER expressions, EXISTS / NOT EXISTS (nested arbitrarily),
// OPTIONAL, UNION, DISTINCT, ORDER BY, LIMIT and OFFSET.
//
// The engine evaluates directly against the indexed rdf.Graph with a
// selectivity-ordered nested-loop strategy — deliberately the profile of a
// general-purpose store, since its role in the reproduction is to stand in
// for the paper's Virtuoso baseline (see DESIGN.md).
package sparql

import "fmt"

type tokenKind int

const (
	tokEOF      tokenKind = iota
	tokIRI                // <...>
	tokPName              // prefix:local or prefix:
	tokVar                // ?x or $x
	tokString             // "..." (lexical form, unescaped)
	tokLangTag            // @en
	tokDTypeSep           // ^^
	tokNumber             // 123, 4.5, 1e3
	tokKeyword            // SELECT, WHERE, FILTER, ... (upper-cased)
	tokA                  // the 'a' keyword
	tokPunct              // single/double char punctuation: { } ( ) . ; , / | ^ * + ? ! = != < > <= >= && || -
	tokBlank              // _:label
)

type token struct {
	kind tokenKind
	text string // normalized text: IRIs without <>, keywords upper-cased
	// lexical extras for literals
	lang  string
	line  int
	col   int
	isDec bool // number contains '.' or exponent
}

func (t token) String() string {
	return fmt.Sprintf("%v(%q)@%d:%d", t.kind, t.text, t.line, t.col)
}

// Error reports a SPARQL syntax or evaluation error.
type Error struct {
	Line, Col int
	Msg       string
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("sparql: line %d col %d: %s", e.Line, e.Col, e.Msg)
	}
	return "sparql: " + e.Msg
}
