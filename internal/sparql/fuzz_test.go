package sparql

import (
	"testing"

	"rdfcube/internal/turtle"
)

// FuzzParse exercises the SPARQL parser on arbitrary inputs: it must never
// panic; parses that succeed must also execute without panicking against a
// small graph.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT * WHERE { ?s ?p ?o }",
		"PREFIX ex: <http://x/> SELECT DISTINCT ?s WHERE { ?s a ex:T . FILTER(?s != ex:a) }",
		"ASK { ?s ?p ?o }",
		"SELECT ?s WHERE { ?s <http://x/p>+ ?o } ORDER BY DESC(?s) LIMIT 3",
		"SELECT ?s WHERE { { ?s ?p ?o } UNION { ?o ?p ?s } OPTIONAL { ?s ?q ?r } }",
		"SELECT (COUNT(DISTINCT ?s) AS ?n) WHERE { ?s ?p ?o . FILTER NOT EXISTS { ?s ?p 5 } }",
		PartialContainmentQuery,
		FullContainmentQuery,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	g, err := turtle.Parse(testData, nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		if _, err := ExecQuery(g, q); err != nil {
			t.Fatalf("parsed query failed to execute: %v\n%s", err, src)
		}
	})
}
