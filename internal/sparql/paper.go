package sparql

// The paper's §4 comparator queries. PartialContainmentQuery is the query
// printed in the paper (modulo a line-wrap artifact in the PDF);
// ComplementarityQuery is reconstructed from the paper's prose ("pairs of
// observations whose shared dimensions do not have different values") —
// the printed listing did not survive into the available text.
// FullContainmentQuery is our reconstruction of the third, unprinted query:
// universal quantification over shared dimensions is mimicked with the
// nested-negation construct the paper describes.
//
// Direction note: skos:broader(Transitive) points from the narrower to
// the broader concept, so "?v1 is a parent of ?v2" (the paper's stated
// intent) reads ?v2 skos:broaderTransitive… ?v1; the paper's printed
// listing has the endpoints the other way around, which under standard
// SKOS semantics returns the inverse pairs. The queries below follow the
// stated intent.
//
// The paper notes that its SPARQL conditions are *relaxed* relative to
// Definitions 3–4 (no schema-completion to code-list roots, partial
// containment only detected, not quantified); these queries therefore
// compute relaxed variants and are benchmarked for runtime, as in the
// paper, not for recall.
const (
	prologue = `PREFIX qb: <http://purl.org/linked-data/cube#>
PREFIX skos: <http://www.w3.org/2004/02/skos/core#>
`

	// PartialContainmentQuery detects ordered pairs with at least one
	// shared dimension whose value for ?o1 is a strict hierarchical
	// ancestor of the value for ?o2 (verbatim from the paper).
	PartialContainmentQuery = prologue + `SELECT DISTINCT ?o1 ?o2
WHERE {
  ?o1 a qb:Observation .
  ?o2 a qb:Observation .
  ?o1 ?d1 ?v1 .
  ?o2 ?d1 ?v2 .
  ?v2 skos:broaderTransitive/skos:broaderTransitive* ?v1 .
  FILTER(?o1 != ?o2)
}`

	// ComplementarityQuery selects ordered pairs whose shared dimensions
	// carry pairwise equal values. ?d1 is restricted to dimension
	// properties: without the restriction the universally quantified
	// NOT EXISTS also ranges over qb:dataSet and measure triples, whose
	// values differ for every interesting pair, and the query returns
	// nothing (see TestComplementarityNeedsDimensionRestriction).
	ComplementarityQuery = prologue + `SELECT DISTINCT ?o1 ?o2
WHERE {
  ?o1 a qb:Observation .
  ?o2 a qb:Observation .
  FILTER(?o1 != ?o2)
  FILTER NOT EXISTS {
    ?o1 ?d1 ?v1 .
    ?d1 a qb:DimensionProperty .
    ?o2 ?d1 ?v2 .
    FILTER(?v1 != ?v2)
  }
}`

	// ComplementarityQueryUnrestricted is the naive form with ?d1 ranging
	// over every predicate, kept for the restriction-necessity test.
	ComplementarityQueryUnrestricted = prologue + `SELECT DISTINCT ?o1 ?o2
WHERE {
  ?o1 a qb:Observation .
  ?o2 a qb:Observation .
  FILTER(?o1 != ?o2)
  FILTER NOT EXISTS {
    ?o1 ?d1 ?v1 .
    ?o2 ?d1 ?v2 .
    FILTER(?v1 != ?v2)
  }
}`

	// FullContainmentQuery detects ordered pairs sharing a measure
	// property where, for every shared dimension, ?o1's value is a
	// reflexive-or-transitive broader ancestor of ?o2's value.
	FullContainmentQuery = prologue + `SELECT DISTINCT ?o1 ?o2
WHERE {
  ?o1 a qb:Observation .
  ?o2 a qb:Observation .
  ?o1 ?m ?mv1 .
  ?m a qb:MeasureProperty .
  ?o2 ?m ?mv2 .
  FILTER(?o1 != ?o2)
  FILTER NOT EXISTS {
    ?o1 ?d ?v1 .
    ?d a qb:DimensionProperty .
    ?o2 ?d ?v2 .
    FILTER NOT EXISTS { ?v2 skos:broaderTransitive* ?v1 }
  }
}`
)
