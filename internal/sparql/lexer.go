package sparql

import (
	"strings"
	"unicode"
)

var keywords = map[string]bool{
	"SELECT": true, "ASK": true, "WHERE": true, "FILTER": true,
	"PREFIX": true, "BASE": true, "DISTINCT": true, "REDUCED": true,
	"LIMIT": true, "OFFSET": true, "ORDER": true, "BY": true,
	"ASC": true, "DESC": true, "OPTIONAL": true, "UNION": true,
	"EXISTS": true, "NOT": true, "BOUND": true, "STR": true,
	"ISIRI": true, "ISURI": true, "ISLITERAL": true, "ISBLANK": true,
	"REGEX": true, "LANG": true, "DATATYPE": true, "IN": true,
	"TRUE": true, "FALSE": true, "AS": true, "COUNT": true,
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) advance(n int) {
	for i := 0; i < n && l.pos < len(l.src); i++ {
		if l.src[l.pos] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.pos++
	}
}

func (l *lexer) skipWS() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.advance(1)
		} else if c == '#' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance(1)
			}
		} else {
			return
		}
	}
}

// tokens lexes the whole input.
func (l *lexer) tokens() ([]token, error) {
	var out []token
	for {
		l.skipWS()
		if l.pos >= len(l.src) {
			out = append(out, token{kind: tokEOF, line: l.line, col: l.col})
			return out, nil
		}
		line, col := l.line, l.col
		c := l.src[l.pos]
		switch {
		case isTwoCharPunct(l.src[l.pos:]):
			out = append(out, token{kind: tokPunct, text: l.src[l.pos : l.pos+2], line: line, col: col})
			l.advance(2)
		case c == '<' && iriEnd(l.src[l.pos:]) > 0:
			end := iriEnd(l.src[l.pos:])
			iri := l.src[l.pos+1 : l.pos+end]
			l.advance(end + 1)
			out = append(out, token{kind: tokIRI, text: iri, line: line, col: col})
		case c == '?' || c == '$':
			l.advance(1)
			start := l.pos
			for l.pos < len(l.src) && isNameChar(rune(l.src[l.pos])) {
				l.advance(1)
			}
			if l.pos == start {
				// '?' alone is the zero-or-one path operator.
				out = append(out, token{kind: tokPunct, text: "?", line: line, col: col})
				continue
			}
			out = append(out, token{kind: tokVar, text: l.src[start:l.pos], line: line, col: col})
		case c == '"' || c == '\'':
			s, err := l.lexString(c)
			if err != nil {
				return nil, err
			}
			out = append(out, token{kind: tokString, text: s, line: line, col: col})
			// Language tag or datatype separator handled as separate tokens.
			if l.pos < len(l.src) && l.src[l.pos] == '@' {
				l.advance(1)
				start := l.pos
				for l.pos < len(l.src) && (isNameChar(rune(l.src[l.pos])) || l.src[l.pos] == '-') {
					l.advance(1)
				}
				out = append(out, token{kind: tokLangTag, text: l.src[start:l.pos], line: line, col: col})
			} else if strings.HasPrefix(l.src[l.pos:], "^^") {
				l.advance(2)
				out = append(out, token{kind: tokDTypeSep, line: line, col: col})
			}
		case c == '_' && strings.HasPrefix(l.src[l.pos:], "_:"):
			l.advance(2)
			start := l.pos
			for l.pos < len(l.src) && isNameChar(rune(l.src[l.pos])) {
				l.advance(1)
			}
			out = append(out, token{kind: tokBlank, text: l.src[start:l.pos], line: line, col: col})
		case c >= '0' && c <= '9' || (c == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9'):
			start := l.pos
			dec := false
			for l.pos < len(l.src) {
				d := l.src[l.pos]
				if d >= '0' && d <= '9' {
					l.advance(1)
				} else if d == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
					dec = true
					l.advance(1)
				} else if d == 'e' || d == 'E' {
					dec = true
					l.advance(1)
					if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
						l.advance(1)
					}
				} else {
					break
				}
			}
			out = append(out, token{kind: tokNumber, text: l.src[start:l.pos], isDec: dec, line: line, col: col})
		case strings.IndexByte("{}().;,/|^*+?!=<>-&", c) >= 0:
			out = append(out, token{kind: tokPunct, text: string(c), line: line, col: col})
			l.advance(1)
		default:
			// Bare word: keyword, 'a', or prefixed name.
			start := l.pos
			for l.pos < len(l.src) && (isNameChar(rune(l.src[l.pos])) || l.src[l.pos] == '.') {
				// A dot ends the word when followed by non-name (statement dot).
				if l.src[l.pos] == '.' {
					if l.pos+1 >= len(l.src) || !isNameChar(rune(l.src[l.pos+1])) {
						break
					}
				}
				l.advance(1)
			}
			word := l.src[start:l.pos]
			if word == "" {
				return nil, &Error{line, col, "unexpected character " + string(c)}
			}
			if l.pos < len(l.src) && l.src[l.pos] == ':' {
				// prefixed name: word is the prefix
				l.advance(1)
				lstart := l.pos
				for l.pos < len(l.src) && (isNameChar(rune(l.src[l.pos])) || l.src[l.pos] == '.') {
					if l.src[l.pos] == '.' {
						if l.pos+1 >= len(l.src) || !isNameChar(rune(l.src[l.pos+1])) {
							break
						}
					}
					l.advance(1)
				}
				out = append(out, token{kind: tokPName, text: word + ":" + l.src[lstart:l.pos], line: line, col: col})
				continue
			}
			upper := strings.ToUpper(word)
			if word == "a" {
				out = append(out, token{kind: tokA, text: "a", line: line, col: col})
			} else if keywords[upper] {
				out = append(out, token{kind: tokKeyword, text: upper, line: line, col: col})
			} else {
				return nil, &Error{line, col, "unknown token " + word}
			}
		}
	}
}

func (l *lexer) lexString(quote byte) (string, error) {
	line, col := l.line, l.col
	l.advance(1)
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == quote {
			l.advance(1)
			return b.String(), nil
		}
		if c == '\\' {
			l.advance(1)
			if l.pos >= len(l.src) {
				break
			}
			e := l.src[l.pos]
			l.advance(1)
			switch e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '"', '\'', '\\':
				b.WriteByte(e)
			default:
				return "", &Error{line, col, "unknown escape in string"}
			}
			continue
		}
		b.WriteByte(c)
		l.advance(1)
	}
	return "", &Error{line, col, "unterminated string"}
}

func isNameChar(r rune) bool {
	return r == '_' || r == '-' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// iriEnd returns the index of the closing '>' of an IRIREF starting at
// s[0] == '<', or -1 when the candidate is not an IRI (whitespace, quote or
// end of input intervenes) — in that case '<' is the less-than operator.
func iriEnd(s string) int {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '>':
			return i
		case ' ', '\t', '\n', '\r', '"', '\'', '{', '}':
			return -1
		}
	}
	return -1
}

func isTwoCharPunct(s string) bool {
	if len(s) < 2 {
		return false
	}
	switch s[:2] {
	case "!=", "<=", ">=", "&&", "||":
		return true
	}
	return false
}
