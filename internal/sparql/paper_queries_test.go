package sparql

import (
	"sort"
	"strings"
	"testing"

	"rdfcube/internal/gen"
	"rdfcube/internal/qb"
)

// pairsOf renders (?o1, ?o2) solutions as "a→b" strings, sorted.
func pairsOf(res *Results) []string {
	var out []string
	for _, s := range res.Solutions {
		out = append(out, s["o1"].Local()+"→"+s["o2"].Local())
	}
	sort.Strings(out)
	return out
}

func contains(list []string, x string) bool {
	for _, s := range list {
		if s == x {
			return true
		}
	}
	return false
}

// TestPaperPartialContainmentQuery runs the paper's §4 partial-containment
// query (Q1) over the exported running-example corpus. The query computes
// the paper's *relaxed* variant: at least one shared dimension with a
// strict broader chain, no measure condition.
func TestPaperPartialContainmentQuery(t *testing.T) {
	g := qb.ExportGraph(gen.PaperExample())
	res, err := Exec(g, PartialContainmentQuery)
	if err != nil {
		t.Fatalf("exec: %v", err)
	}
	got := pairsOf(res)

	// Strict-ancestry pairs per dimension of the example:
	// refArea Greece≻{Athens,Ioannina}: o21→{o11,o31,o32,o34};
	// Italy≻Rome: o22→o33; refPeriod 2011≻{Jan11,Feb11}:
	// {o12,o13,o21,o22,o35}→{o32,o33,o34}; sex Total≻Male: {o11,o13}→o12.
	want := []string{
		"o21→o11", "o21→o31", "o21→o32", "o21→o34",
		"o22→o33",
		"o12→o32", "o12→o33", "o12→o34",
		"o13→o32", "o13→o33", "o13→o34",
		"o21→o33",
		"o22→o32", "o22→o34",
		"o35→o32", "o35→o33", "o35→o34",
		"o11→o12", "o13→o12",
	}
	sort.Strings(want)
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("partial containment pairs:\n got %v\nwant %v", got, want)
	}
}

// TestPaperComplementarityQuery runs the complementarity query (Q2,
// dimension-restricted) and checks it finds exactly the Figure 3
// complementary pairs, in both directions.
func TestPaperComplementarityQuery(t *testing.T) {
	g := qb.ExportGraph(gen.PaperExample())
	res, err := Exec(g, ComplementarityQuery)
	if err != nil {
		t.Fatalf("exec: %v", err)
	}
	got := pairsOf(res)
	// Relaxed semantics (no root completion for unshared dimensions) also
	// admit (o12, o35): their shared dimensions (refArea, refPeriod) agree
	// and o12's sex value is simply outside the shared schema.
	want := []string{"o11→o31", "o12→o35", "o13→o35", "o31→o11", "o35→o12", "o35→o13"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("complementarity pairs:\n got %v\nwant %v", got, want)
	}
}

// TestComplementarityNeedsDimensionRestriction documents why the ?d1
// restriction is necessary: unrestricted, the universally quantified
// pattern also ranges over qb:dataSet (and measure) triples, which differ
// for every cross-dataset pair, so the query returns nothing.
func TestComplementarityNeedsDimensionRestriction(t *testing.T) {
	g := qb.ExportGraph(gen.PaperExample())
	res, err := Exec(g, ComplementarityQueryUnrestricted)
	if err != nil {
		t.Fatalf("exec: %v", err)
	}
	if res.Len() != 0 {
		t.Errorf("unrestricted query found %d pairs; expected 0 (qb:dataSet breaks equality)", res.Len())
	}
}

// TestPaperFullContainmentQuery runs the reconstructed full-containment
// query (Q3) and compares with the relaxed expectation: shared measure and
// broader-or-equal values on all *shared* dimensions (no root completion
// for dimensions outside the shared schema).
func TestPaperFullContainmentQuery(t *testing.T) {
	g := qb.ExportGraph(gen.PaperExample())
	res, err := Exec(g, FullContainmentQuery)
	if err != nil {
		t.Fatalf("exec: %v", err)
	}
	got := pairsOf(res)

	// On the running example the relaxed shared-dimension semantics yield
	// exactly the canonical pairs.
	want := []string{"o13→o12", "o21→o32", "o21→o34", "o22→o33"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("full containment pairs:\n got %v\nwant %v", got, want)
	}
}

// TestPaperQueriesParse makes sure every published query text stays
// parseable as the engine evolves.
func TestPaperQueriesParse(t *testing.T) {
	for _, q := range []string{
		PartialContainmentQuery,
		ComplementarityQuery,
		ComplementarityQueryUnrestricted,
		FullContainmentQuery,
	} {
		if _, err := Parse(q); err != nil {
			t.Errorf("parse failed: %v\n%s", err, q)
		}
	}
}
