package sparql

import (
	"strings"

	"rdfcube/internal/rdf"
)

// Parse parses a SELECT or ASK query.
func Parse(src string) (*Query, error) {
	toks, err := newLexer(src).tokens()
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, prefixes: map[string]string{}, vars: map[string]int{}}
	q, err := p.query()
	if err != nil {
		return nil, err
	}
	return q, nil
}

type parser struct {
	toks     []token
	pos      int
	prefixes map[string]string
	base     string

	vars     map[string]int
	varNames []string
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(msg string) *Error {
	t := p.cur()
	return &Error{Line: t.line, Col: t.col, Msg: msg + " (at " + t.text + ")"}
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.cur().kind == tokKeyword && p.cur().text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected " + kw)
	}
	return nil
}

func (p *parser) acceptPunct(s string) bool {
	if p.cur().kind == tokPunct && p.cur().text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return p.errf("expected '" + s + "'")
	}
	return nil
}

func (p *parser) slot(name string) int {
	if i, ok := p.vars[name]; ok {
		return i
	}
	i := len(p.varNames)
	p.vars[name] = i
	p.varNames = append(p.varNames, name)
	return i
}

func (p *parser) query() (*Query, error) {
	q := &Query{Limit: -1}
	for {
		if p.acceptKeyword("PREFIX") {
			if p.cur().kind != tokPName {
				return nil, p.errf("expected prefix name")
			}
			pn := p.next().text
			name := strings.TrimSuffix(pn, ":")
			if i := strings.IndexByte(pn, ':'); i >= 0 {
				name = pn[:i]
			}
			if p.cur().kind != tokIRI {
				return nil, p.errf("expected IRI after PREFIX")
			}
			p.prefixes[name] = p.next().text
			continue
		}
		if p.acceptKeyword("BASE") {
			if p.cur().kind != tokIRI {
				return nil, p.errf("expected IRI after BASE")
			}
			p.base = p.next().text
			continue
		}
		break
	}

	switch {
	case p.acceptKeyword("SELECT"):
		if p.acceptKeyword("DISTINCT") {
			q.Distinct = true
		} else {
			p.acceptKeyword("REDUCED")
		}
		if p.acceptPunct("*") {
			// SELECT * — project every variable.
		} else if p.cur().kind == tokPunct && p.cur().text == "(" {
			if err := p.countProjection(q); err != nil {
				return nil, err
			}
		} else {
			for p.cur().kind == tokVar {
				q.Vars = append(q.Vars, p.next().text)
				p.acceptPunct(",")
			}
			if len(q.Vars) == 0 {
				return nil, p.errf("expected projection variables or *")
			}
		}
		p.acceptKeyword("WHERE")
	case p.acceptKeyword("ASK"):
		q.Ask = true
		p.acceptKeyword("WHERE")
	default:
		return nil, p.errf("expected SELECT or ASK")
	}

	g, err := p.groupGraphPattern()
	if err != nil {
		return nil, err
	}
	q.where = g

	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			switch {
			case p.acceptKeyword("ASC"), p.acceptKeyword("DESC"):
				desc := p.toks[p.pos-1].text == "DESC"
				if err := p.expectPunct("("); err != nil {
					return nil, err
				}
				if p.cur().kind != tokVar {
					return nil, p.errf("expected variable in ORDER BY")
				}
				q.OrderBy = append(q.OrderBy, OrderKey{Var: p.next().text, Desc: desc})
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
			case p.cur().kind == tokVar:
				q.OrderBy = append(q.OrderBy, OrderKey{Var: p.next().text})
			default:
				if len(q.OrderBy) == 0 {
					return nil, p.errf("expected ORDER BY key")
				}
				goto done
			}
		}
	done:
	}
	if p.acceptKeyword("LIMIT") {
		if p.cur().kind != tokNumber {
			return nil, p.errf("expected number after LIMIT")
		}
		q.Limit = atoiSafe(p.next().text)
	}
	if p.acceptKeyword("OFFSET") {
		if p.cur().kind != tokNumber {
			return nil, p.errf("expected number after OFFSET")
		}
		q.Offset = atoiSafe(p.next().text)
	}
	if p.cur().kind != tokEOF {
		return nil, p.errf("unexpected trailing input")
	}
	q.prefixes = p.prefixes
	q.vars = p.vars
	q.varNames = p.varNames
	return q, nil
}

// countProjection parses "( COUNT( [DISTINCT] * | ?v ) AS ?n )".
func (p *parser) countProjection(q *Query) error {
	if err := p.expectPunct("("); err != nil {
		return err
	}
	if err := p.expectKeyword("COUNT"); err != nil {
		return err
	}
	if err := p.expectPunct("("); err != nil {
		return err
	}
	if p.acceptKeyword("DISTINCT") {
		q.CountDistinct = true
	}
	switch {
	case p.acceptPunct("*"):
		q.CountArg = ""
	case p.cur().kind == tokVar:
		q.CountArg = p.next().text
	default:
		return p.errf("COUNT expects * or a variable")
	}
	if err := p.expectPunct(")"); err != nil {
		return err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return err
	}
	if p.cur().kind != tokVar {
		return p.errf("expected variable after AS")
	}
	q.CountVar = p.next().text
	return p.expectPunct(")")
}

func atoiSafe(s string) int {
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			break
		}
		n = n*10 + int(c-'0')
	}
	return n
}

func (p *parser) groupGraphPattern() (*groupPattern, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	g := &groupPattern{}
	for {
		switch {
		case p.acceptPunct("}"):
			return g, nil
		case p.cur().kind == tokKeyword && p.cur().text == "FILTER":
			p.pos++
			e, err := p.brackettedOrBuiltin()
			if err != nil {
				return nil, err
			}
			g.filters = append(g.filters, e)
			p.acceptPunct(".")
		case p.cur().kind == tokKeyword && p.cur().text == "OPTIONAL":
			p.pos++
			sub, err := p.groupGraphPattern()
			if err != nil {
				return nil, err
			}
			g.elems = append(g.elems, &optionalElem{group: sub})
			p.acceptPunct(".")
		case p.cur().kind == tokPunct && p.cur().text == "{":
			first, err := p.groupGraphPattern()
			if err != nil {
				return nil, err
			}
			u := &unionElem{groups: []*groupPattern{first}}
			for p.acceptKeyword("UNION") {
				nxt, err := p.groupGraphPattern()
				if err != nil {
					return nil, err
				}
				u.groups = append(u.groups, nxt)
			}
			if len(u.groups) == 1 {
				g.elems = append(g.elems, first)
			} else {
				g.elems = append(g.elems, u)
			}
			p.acceptPunct(".")
		default:
			tp, err := p.triplesSameSubject()
			if err != nil {
				return nil, err
			}
			g.elems = append(g.elems, &triplesElem{patterns: tp})
			if !p.acceptPunct(".") {
				// The block must end here.
				if p.cur().kind == tokPunct && p.cur().text == "}" {
					continue
				}
				if p.cur().kind == tokKeyword {
					continue
				}
				return nil, p.errf("expected '.' between triple patterns")
			}
		}
	}
}

func (p *parser) triplesSameSubject() ([]TriplePattern, error) {
	subj, err := p.nodeTermOrVar()
	if err != nil {
		return nil, err
	}
	var out []TriplePattern
	for {
		var pred Node
		var path *Path
		if p.cur().kind == tokVar {
			pred = varNode(p.next().text)
		} else {
			pt, err := p.path()
			if err != nil {
				return nil, err
			}
			if pt.Op == PathLink {
				pred = termNode(pt.IRI)
			} else {
				path = pt
			}
		}
		for {
			obj, err := p.nodeTermOrVar()
			if err != nil {
				return nil, err
			}
			out = append(out, TriplePattern{S: subj, P: pred, O: obj, Path: path})
			if !p.acceptPunct(",") {
				break
			}
		}
		if !p.acceptPunct(";") {
			return out, nil
		}
		// Allow trailing semicolon.
		if t := p.cur(); t.kind == tokPunct && (t.text == "." || t.text == "}") {
			return out, nil
		}
	}
}

// path parses a property path: alternatives of sequences of (possibly
// inverted, possibly modified) primaries.
func (p *parser) path() (*Path, error) {
	first, err := p.pathSeq()
	if err != nil {
		return nil, err
	}
	if !(p.cur().kind == tokPunct && p.cur().text == "|") {
		return first, nil
	}
	alt := &Path{Op: PathAlt, Subs: []*Path{first}}
	for p.acceptPunct("|") {
		nxt, err := p.pathSeq()
		if err != nil {
			return nil, err
		}
		alt.Subs = append(alt.Subs, nxt)
	}
	return alt, nil
}

func (p *parser) pathSeq() (*Path, error) {
	first, err := p.pathElt()
	if err != nil {
		return nil, err
	}
	if !(p.cur().kind == tokPunct && p.cur().text == "/") {
		return first, nil
	}
	seq := &Path{Op: PathSeq, Subs: []*Path{first}}
	for p.acceptPunct("/") {
		nxt, err := p.pathElt()
		if err != nil {
			return nil, err
		}
		seq.Subs = append(seq.Subs, nxt)
	}
	return seq, nil
}

func (p *parser) pathElt() (*Path, error) {
	inverse := p.acceptPunct("^")
	var prim *Path
	switch {
	case p.cur().kind == tokA:
		p.pos++
		prim = linkPath(rdf.NewIRI(rdf.RDFType))
	case p.cur().kind == tokIRI:
		prim = linkPath(rdf.NewIRI(p.resolveIRI(p.next().text)))
	case p.cur().kind == tokPName:
		iri, err := p.expandPName(p.next().text)
		if err != nil {
			return nil, err
		}
		prim = linkPath(rdf.NewIRI(iri))
	case p.acceptPunct("("):
		sub, err := p.path()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		prim = sub
	default:
		return nil, p.errf("expected path primary")
	}
	// Modifier.
	switch {
	case p.acceptPunct("*"):
		prim = &Path{Op: PathZeroOrMore, Subs: []*Path{prim}}
	case p.acceptPunct("+"):
		prim = &Path{Op: PathOneOrMore, Subs: []*Path{prim}}
	case p.acceptPunct("?"):
		prim = &Path{Op: PathZeroOrOne, Subs: []*Path{prim}}
	}
	if inverse {
		prim = &Path{Op: PathInverse, Subs: []*Path{prim}}
	}
	return prim, nil
}

func (p *parser) nodeTermOrVar() (Node, error) {
	t := p.cur()
	switch t.kind {
	case tokVar:
		p.pos++
		return varNode(t.text), nil
	case tokIRI:
		p.pos++
		return termNode(rdf.NewIRI(p.resolveIRI(t.text))), nil
	case tokPName:
		p.pos++
		iri, err := p.expandPName(t.text)
		if err != nil {
			return Node{}, err
		}
		return termNode(rdf.NewIRI(iri)), nil
	case tokBlank:
		p.pos++
		return termNode(rdf.NewBlank(t.text)), nil
	case tokString:
		p.pos++
		lex := t.text
		if p.cur().kind == tokLangTag {
			return termNode(rdf.NewLangLiteral(lex, p.next().text)), nil
		}
		if p.cur().kind == tokDTypeSep {
			p.pos++
			switch p.cur().kind {
			case tokIRI:
				return termNode(rdf.NewTypedLiteral(lex, p.resolveIRI(p.next().text))), nil
			case tokPName:
				iri, err := p.expandPName(p.next().text)
				if err != nil {
					return Node{}, err
				}
				return termNode(rdf.NewTypedLiteral(lex, iri)), nil
			default:
				return Node{}, p.errf("expected datatype IRI")
			}
		}
		return termNode(rdf.NewLiteral(lex)), nil
	case tokNumber:
		p.pos++
		dt := rdf.XSDInteger
		if t.isDec {
			dt = rdf.XSDDecimal
		}
		return termNode(rdf.NewTypedLiteral(t.text, dt)), nil
	case tokKeyword:
		if t.text == "TRUE" || t.text == "FALSE" {
			p.pos++
			return termNode(rdf.NewTypedLiteral(strings.ToLower(t.text), rdf.XSDBoolean)), nil
		}
	case tokA:
		p.pos++
		return termNode(rdf.NewIRI(rdf.RDFType)), nil
	}
	return Node{}, p.errf("expected term or variable")
}

func (p *parser) resolveIRI(iri string) string {
	if p.base != "" && !strings.Contains(iri, "://") && !strings.HasPrefix(iri, "urn:") {
		return p.base + iri
	}
	return iri
}

func (p *parser) expandPName(pn string) (string, error) {
	i := strings.IndexByte(pn, ':')
	if i < 0 {
		return "", p.errf("malformed prefixed name " + pn)
	}
	ns, ok := p.prefixes[pn[:i]]
	if !ok {
		return "", p.errf("undefined prefix " + pn[:i])
	}
	return ns + pn[i+1:], nil
}
