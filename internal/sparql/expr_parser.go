package sparql

// brackettedOrBuiltin parses FILTER's argument: a parenthesized expression
// or a builtin call (including EXISTS / NOT EXISTS).
func (p *parser) brackettedOrBuiltin() (Expr, error) {
	if p.cur().kind == tokPunct && p.cur().text == "(" {
		p.pos++
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return p.primaryExpr()
}

// expression parses with precedence: || < && < relational < unary.
func (p *parser) expression() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptPunct("||") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = logicalExpr{and: false, l: l, r: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.relationalExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptPunct("&&") {
		r, err := p.relationalExpr()
		if err != nil {
			return nil, err
		}
		l = logicalExpr{and: true, l: l, r: r}
	}
	return l, nil
}

func (p *parser) relationalExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	if t := p.cur(); t.kind == tokPunct {
		switch t.text {
		case "=", "!=", "<", "<=", ">", ">=":
			p.pos++
			r, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			return cmpExpr{op: t.text, l: l, r: r}, nil
		}
	}
	if p.cur().kind == tokKeyword && p.cur().text == "IN" {
		p.pos++
		list, err := p.exprList()
		if err != nil {
			return nil, err
		}
		return inExpr{l: l, list: list}, nil
	}
	if p.cur().kind == tokKeyword && p.cur().text == "NOT" &&
		p.toks[p.pos+1].kind == tokKeyword && p.toks[p.pos+1].text == "IN" {
		p.pos += 2
		list, err := p.exprList()
		if err != nil {
			return nil, err
		}
		return inExpr{neg: true, l: l, list: list}, nil
	}
	return l, nil
}

func (p *parser) exprList() ([]Expr, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var out []Expr
	for {
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		out = append(out, e)
		if p.acceptPunct(",") {
			continue
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return out, nil
	}
}

func (p *parser) unaryExpr() (Expr, error) {
	if p.acceptPunct("!") {
		e, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return notExpr{e: e}, nil
	}
	return p.primaryExpr()
}

func (p *parser) primaryExpr() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokPunct:
		if t.text == "(" {
			p.pos++
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	case tokVar:
		p.pos++
		return varExpr{slot: p.slot(t.text)}, nil
	case tokKeyword:
		switch t.text {
		case "BOUND":
			p.pos++
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			if p.cur().kind != tokVar {
				return nil, p.errf("BOUND expects a variable")
			}
			slot := p.slot(p.next().text)
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return boundExpr{slot: slot}, nil
		case "STR", "LANG", "DATATYPE", "ISIRI", "ISURI", "ISLITERAL", "ISBLANK":
			p.pos++
			fn := t.text
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			arg, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return unaryFnExpr{fn: fn, arg: arg}, nil
		case "REGEX":
			p.pos++
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			arg, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(","); err != nil {
				return nil, err
			}
			pat, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return regexExpr{arg: arg, pattern: pat}, nil
		case "EXISTS":
			p.pos++
			g, err := p.groupGraphPattern()
			if err != nil {
				return nil, err
			}
			return existsExpr{group: g}, nil
		case "NOT":
			p.pos++
			if err := p.expectKeyword("EXISTS"); err != nil {
				return nil, err
			}
			g, err := p.groupGraphPattern()
			if err != nil {
				return nil, err
			}
			return existsExpr{neg: true, group: g}, nil
		case "TRUE", "FALSE":
			n, err := p.nodeTermOrVar()
			if err != nil {
				return nil, err
			}
			return constExpr{t: n.Term()}, nil
		}
	case tokIRI, tokPName, tokString, tokNumber:
		n, err := p.nodeTermOrVar()
		if err != nil {
			return nil, err
		}
		return constExpr{t: n.Term()}, nil
	}
	return nil, p.errf("expected expression")
}
