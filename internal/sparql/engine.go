package sparql

import (
	"context"
	"sort"
	"strings"

	"rdfcube/internal/rdf"
)

// Solution is one result row: variable name → bound term. Variables left
// unbound (e.g. under OPTIONAL) are absent from the map.
type Solution map[string]rdf.Term

// Results is the outcome of executing a query.
type Results struct {
	// Vars are the projected variable names in projection order.
	Vars []string
	// Solutions holds the result rows (empty for ASK).
	Solutions []Solution
	// Bool is the ASK answer (false for SELECT).
	Bool bool
}

// Len returns the number of solutions.
func (r *Results) Len() int { return len(r.Solutions) }

// Exec parses and executes a query against g.
func Exec(g *rdf.Graph, query string) (*Results, error) {
	return ExecContext(context.Background(), g, query)
}

// ExecContext is Exec with cancellation: when ctx is done, evaluation
// stops at the next pattern boundary and ctx.Err() is returned.
func ExecContext(ctx context.Context, g *rdf.Graph, query string) (*Results, error) {
	q, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return ExecQueryContext(ctx, g, q)
}

// ExecQuery executes a parsed query against g. A parsed query may be
// executed repeatedly, also concurrently, against different graphs.
func ExecQuery(g *rdf.Graph, q *Query) (*Results, error) {
	return ExecQueryContext(context.Background(), g, q)
}

// ExecQueryContext is ExecQuery with cancellation.
func ExecQueryContext(ctx context.Context, g *rdf.Graph, q *Query) (*Results, error) {
	// Copy the variable table: evaluation may extend it.
	vars := make(map[string]int, len(q.vars))
	for k, v := range q.vars {
		vars[k] = v
	}
	varNames := append([]string{}, q.varNames...)
	ev := newEvaluator(g, q, vars, varNames)
	ev.ctx = ctx

	if q.Ask {
		res := &Results{}
		b := make(binding, len(ev.varNames))
		ev.evalGroup(q.where, b, func(binding) bool {
			res.Bool = true
			return false
		})
		if ev.canceled {
			return nil, ctx.Err()
		}
		return res, nil
	}

	if q.CountVar != "" {
		return execCount(ctx, ev, q)
	}

	proj := q.Vars
	if len(proj) == 0 {
		// SELECT *: every variable mentioned in the query, parse order.
		proj = append(proj, ev.varNames...)
	}
	projSlots := make([]int, len(proj))
	for i, v := range proj {
		projSlots[i] = ev.slot(v)
	}

	res := &Results{Vars: proj}
	seen := map[string]bool{}
	b := make(binding, len(ev.varNames))
	ev.evalGroup(q.where, b, func(sol binding) bool {
		row := make(Solution, len(projSlots))
		for i, s := range projSlots {
			if s < len(sol) && !sol[s].IsZero() {
				row[proj[i]] = sol[s]
			}
		}
		if q.Distinct {
			key := solutionKey(proj, row)
			if seen[key] {
				return true
			}
			seen[key] = true
		}
		res.Solutions = append(res.Solutions, row)
		// Without ORDER BY, LIMIT can stop the scan early.
		if q.Limit >= 0 && len(q.OrderBy) == 0 && q.Offset == 0 && len(res.Solutions) >= q.Limit {
			return false
		}
		return true
	})

	if ev.canceled {
		return nil, ctx.Err()
	}

	if len(q.OrderBy) > 0 {
		keys := q.OrderBy
		sort.SliceStable(res.Solutions, func(i, j int) bool {
			for _, k := range keys {
				a, b := res.Solutions[i][k.Var], res.Solutions[j][k.Var]
				c := a.Compare(b)
				if c == 0 {
					continue
				}
				if k.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}
	if q.Offset > 0 {
		if q.Offset >= len(res.Solutions) {
			res.Solutions = nil
		} else {
			res.Solutions = res.Solutions[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(res.Solutions) {
		res.Solutions = res.Solutions[:q.Limit]
	}
	return res, nil
}

// execCount evaluates an aggregate COUNT projection: one output row with
// the (distinct) solution count.
func execCount(ctx context.Context, ev *evaluator, q *Query) (*Results, error) {
	argSlot := -1
	if q.CountArg != "" {
		argSlot = ev.slot(q.CountArg)
	}
	n := 0
	var seen map[string]bool
	if q.CountDistinct {
		seen = map[string]bool{}
	}
	b := make(binding, len(ev.varNames))
	ev.evalGroup(q.where, b, func(sol binding) bool {
		if argSlot >= 0 {
			if argSlot >= len(sol) || sol[argSlot].IsZero() {
				return true // COUNT(?v) skips unbound rows
			}
			if q.CountDistinct {
				key := sol[argSlot].String()
				if seen[key] {
					return true
				}
				seen[key] = true
			}
		}
		n++
		return true
	})
	if ev.canceled {
		return nil, ctx.Err()
	}
	return &Results{
		Vars:      []string{q.CountVar},
		Solutions: []Solution{{q.CountVar: rdf.NewInteger(int64(n))}},
	}, nil
}

func solutionKey(vars []string, row Solution) string {
	var sb strings.Builder
	for _, v := range vars {
		t, ok := row[v]
		if ok {
			sb.WriteString(t.String())
		}
		sb.WriteByte('\x00')
	}
	return sb.String()
}
