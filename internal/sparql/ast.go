package sparql

import "rdfcube/internal/rdf"

// NodeKind discriminates pattern node kinds.
type nodeKind int

const (
	nodeTerm nodeKind = iota
	nodeVar
)

// Node is a term-or-variable slot in a triple pattern.
type Node struct {
	kind nodeKind
	term rdf.Term
	v    string
}

// termNode wraps a constant term.
func termNode(t rdf.Term) Node { return Node{kind: nodeTerm, term: t} }

// varNode wraps a variable name (without the '?').
func varNode(name string) Node { return Node{kind: nodeVar, v: name} }

// IsVar reports whether the node is a variable.
func (n Node) IsVar() bool { return n.kind == nodeVar }

// Var returns the variable name ("" for constant nodes).
func (n Node) Var() string {
	if n.kind == nodeVar {
		return n.v
	}
	return ""
}

// Term returns the constant term (zero for variables).
func (n Node) Term() rdf.Term {
	if n.kind == nodeTerm {
		return n.term
	}
	return rdf.Term{}
}

// TriplePattern is one pattern of a basic graph pattern. The predicate is
// either a Node (possibly a variable) or a property Path; Path takes
// precedence when non-nil.
type TriplePattern struct {
	S, P, O Node
	Path    *Path
}

// patternElem is one element of a group graph pattern.
type patternElem interface{ isPatternElem() }

// groupPattern is a { ... } group: triple patterns, filters and nested
// structures evaluated left to right (filters apply to the whole group).
type groupPattern struct {
	elems   []patternElem
	filters []Expr
}

func (*groupPattern) isPatternElem() {}

// triplesElem holds a run of triple patterns.
type triplesElem struct {
	patterns []TriplePattern
}

func (*triplesElem) isPatternElem() {}

// optionalElem is OPTIONAL { ... }.
type optionalElem struct {
	group *groupPattern
}

func (*optionalElem) isPatternElem() {}

// unionElem is { ... } UNION { ... } (n-ary).
type unionElem struct {
	groups []*groupPattern
}

func (*unionElem) isPatternElem() {}

// Query is a parsed SPARQL query.
type Query struct {
	// Ask is true for ASK queries (Select fields are then unused).
	Ask bool
	// Vars are the projected variable names; empty means SELECT *.
	Vars []string
	// CountVar, when non-empty, makes the query an aggregate
	// SELECT (COUNT(...) AS ?CountVar): the result is a single row binding
	// CountVar to the solution count. CountArg is the counted variable
	// ("" means COUNT(*)); CountDistinct applies DISTINCT inside COUNT.
	CountVar      string
	CountArg      string
	CountDistinct bool
	// Distinct applies solution deduplication after projection.
	Distinct bool
	// Where is the query's group graph pattern.
	where *groupPattern
	// OrderBy are ordering keys applied before LIMIT/OFFSET.
	OrderBy []OrderKey
	// Limit caps the number of solutions; negative means unlimited.
	Limit int
	// Offset skips leading solutions.
	Offset int

	prefixes map[string]string
	vars     map[string]int
	varNames []string
}

// OrderKey is one ORDER BY criterion.
type OrderKey struct {
	// Var is the ordering variable.
	Var string
	// Desc reverses the order.
	Desc bool
}
