package obsv

import (
	"sync"
	"time"
)

// TraceCollector is the per-request Recorder behind request tracing: it
// records a span tree exactly like Collector, but attributes every Count
// delta to the innermost open span, so one request's trace shows which
// phase did which work (e.g. a /v1/recompute trace carries the kernel's
// compare span with its cubes.pairs.pruned delta attached). One
// TraceCollector serves one request and is then read once; it is still
// safe for concurrent use because parallel kernels flush counters from
// worker goroutines while the compare span is open.
//
// Gauges and histogram observations are deliberately dropped: a trace is
// a tree of durations and work deltas, and point-in-time gauges or
// process-wide distributions belong to the global Collector it usually
// runs next to (via Multi).
type TraceCollector struct {
	mu    sync.Mutex
	roots []*Span
	stack []*Span
}

// NewTraceCollector returns an empty TraceCollector.
func NewTraceCollector() *TraceCollector {
	return &TraceCollector{}
}

// Start implements Recorder: the span nests under the innermost open
// span, like Collector's.
func (t *TraceCollector) Start(name string) func() {
	sp := &Span{Name: name, start: time.Now(), open: true}
	t.mu.Lock()
	if n := len(t.stack); n > 0 {
		parent := t.stack[n-1]
		parent.Children = append(parent.Children, sp)
	} else {
		t.roots = append(t.roots, sp)
	}
	t.stack = append(t.stack, sp)
	t.mu.Unlock()

	var once sync.Once
	return func() {
		once.Do(func() {
			t.mu.Lock()
			defer t.mu.Unlock()
			sp.Seconds = time.Since(sp.start).Seconds()
			sp.open = false
			for i := len(t.stack) - 1; i >= 0; i-- {
				top := t.stack[i]
				t.stack = t.stack[:i]
				if top == sp {
					break
				}
				if top.open {
					top.Seconds = time.Since(top.start).Seconds()
					top.open = false
				}
			}
		})
	}
}

// Count implements Recorder: the delta is charged to the innermost open
// span. Deltas arriving outside any span (possible when a kernel flushes
// its batch just after the request span closed) are charged to the most
// recent root so they are never lost.
func (t *TraceCollector) Count(name string, delta int64) {
	if delta == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var sp *Span
	if n := len(t.stack); n > 0 {
		sp = t.stack[n-1]
	} else if n := len(t.roots); n > 0 {
		sp = t.roots[n-1]
	} else {
		return
	}
	if sp.Counters == nil {
		sp.Counters = map[string]int64{}
	}
	sp.Counters[name] += delta
}

// Gauge implements Recorder (dropped; see the type comment).
func (t *TraceCollector) Gauge(string, float64) {}

// Spans returns a deep copy of the recorded tree; open spans report
// their elapsed time.
func (t *TraceCollector) Spans() []*Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, len(t.roots))
	for i, sp := range t.roots {
		out[i] = copySpan(sp)
	}
	return out
}
