package obsv

import (
	"fmt"
	"io"
	"math"
	"runtime/metrics"
	"strings"
)

// Runtime health exposition. Tail latency under load correlates with the
// runtime's own behavior — a cubeload run whose p999 spikes wants to know
// whether a GC pause or a goroutine pile-up was underneath it — so the
// debug server exports the relevant runtime/metrics samples next to the
// application metrics, in the same Prometheus text format.

// runtimeSamples are the runtime/metrics series exported, paired with
// their exposition names.
var runtimeSamples = []struct {
	source string // runtime/metrics name
	expo   string // exposition metric name
	kind   string // "gauge" or "histogram"
}{
	{"/sched/goroutines:goroutines", "rdfcube_go_goroutines", "gauge"},
	{"/memory/classes/heap/objects:bytes", "rdfcube_go_heap_objects_bytes", "gauge"},
	{"/memory/classes/total:bytes", "rdfcube_go_memory_total_bytes", "gauge"},
	{"/gc/cycles/total:gc-cycles", "rdfcube_go_gc_cycles_total", "gauge"},
	{"/gc/pauses:seconds", "rdfcube_go_gc_pause_seconds", "histogram"},
	{"/sched/latencies:seconds", "rdfcube_go_sched_latency_seconds", "histogram"},
}

// WriteRuntimeMetrics writes the Go runtime health metrics: goroutine
// count, heap in-use, total runtime-managed memory, GC cycle count, and
// the runtime-maintained GC-pause and scheduler-latency histograms
// (sparse buckets, Prometheus histogram convention).
func WriteRuntimeMetrics(w io.Writer) error {
	samples := make([]metrics.Sample, len(runtimeSamples))
	for i, rs := range runtimeSamples {
		samples[i].Name = rs.source
	}
	metrics.Read(samples)

	var b strings.Builder
	for i, rs := range runtimeSamples {
		switch samples[i].Value.Kind() {
		case metrics.KindUint64:
			if rs.kind != "gauge" {
				continue
			}
			fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", rs.expo, rs.expo, samples[i].Value.Uint64())
		case metrics.KindFloat64:
			if rs.kind != "gauge" {
				continue
			}
			fmt.Fprintf(&b, "# TYPE %s gauge\n%s %g\n", rs.expo, rs.expo, samples[i].Value.Float64())
		case metrics.KindFloat64Histogram:
			if rs.kind != "histogram" {
				continue
			}
			writeRuntimeHistogram(&b, rs.expo, samples[i].Value.Float64Histogram())
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeRuntimeHistogram renders a runtime/metrics Float64Histogram as
// cumulative Prometheus buckets, skipping empty ones.
func writeRuntimeHistogram(b *strings.Builder, name string, h *metrics.Float64Histogram) {
	if h == nil {
		return
	}
	fmt.Fprintf(b, "# TYPE %s histogram\n", name)
	var cum uint64
	var sum float64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		cum += c
		// Counts[i] covers (Buckets[i], Buckets[i+1]]; the upper edge is
		// the Prometheus `le` bound. The first/last edges can be ±Inf.
		upper := h.Buckets[i+1]
		if math.IsInf(upper, +1) {
			continue // folded into the +Inf sample below
		}
		fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", name, fmt.Sprintf("%g", upper), cum)
		lower := h.Buckets[i]
		if !math.IsInf(lower, -1) {
			sum += float64(c) * (lower + upper) / 2
		}
	}
	// Re-add any +Inf-bucket counts to the cumulative total.
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, total)
	fmt.Fprintf(b, "%s_sum %g\n", name, sum)
	fmt.Fprintf(b, "%s_count %d\n", name, total)
}
