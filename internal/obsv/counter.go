package obsv

import "sync/atomic"

// Counter is a monotonic counter safe for concurrent use — the unit the
// Collector hands to the parallel cubeMasking worker pool. The zero value
// is ready to use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }
