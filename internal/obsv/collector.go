package obsv

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Collector is the in-memory Recorder: atomic counters (safe for the
// parallel worker pool), gauges, and a phase-span tree. It renders a human
// run report (Report), expvar-style JSON (MarshalJSON) and a Prometheus-
// flavoured text exposition (WriteMetrics).
type Collector struct {
	cmu      sync.RWMutex
	counters map[string]*Counter

	gmu    sync.Mutex
	gauges map[string]float64

	hmu   sync.RWMutex
	hists map[string]*Histogram

	smu   sync.Mutex
	roots []*Span
	stack []*Span
}

// NewCollector returns an empty Collector.
func NewCollector() *Collector {
	return &Collector{
		counters: map[string]*Counter{},
		gauges:   map[string]float64{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it at zero on first use.
// The returned *Counter may be retained and Add-ed directly, bypassing
// the map lookup — that is what the worker pool does.
func (c *Collector) Counter(name string) *Counter {
	c.cmu.RLock()
	ctr, ok := c.counters[name]
	c.cmu.RUnlock()
	if ok {
		return ctr
	}
	c.cmu.Lock()
	defer c.cmu.Unlock()
	if ctr, ok = c.counters[name]; ok {
		return ctr
	}
	ctr = &Counter{}
	c.counters[name] = ctr
	return ctr
}

// Count implements Recorder.
func (c *Collector) Count(name string, delta int64) {
	if delta == 0 {
		return
	}
	c.Counter(name).Add(delta)
}

// Gauge implements Recorder.
func (c *Collector) Gauge(name string, value float64) {
	c.gmu.Lock()
	c.gauges[name] = value
	c.gmu.Unlock()
}

// Histogram returns the named histogram, creating it at zero on first
// use. Like Counter, the returned *Histogram may be retained and
// Observe-d directly, bypassing the map lookup.
func (c *Collector) Histogram(name string) *Histogram {
	c.hmu.RLock()
	h, ok := c.hists[name]
	c.hmu.RUnlock()
	if ok {
		return h
	}
	c.hmu.Lock()
	defer c.hmu.Unlock()
	if h, ok = c.hists[name]; ok {
		return h
	}
	h = &Histogram{}
	c.hists[name] = h
	return h
}

// Observe implements Observer: it records value into the named histogram.
func (c *Collector) Observe(name string, value int64) {
	c.Histogram(name).Observe(value)
}

// HistSnapshot returns a snapshot of the named histogram, or (nil, false)
// when nothing was ever observed under that name.
func (c *Collector) HistSnapshot(name string) (*HistSnapshot, bool) {
	c.hmu.RLock()
	h, ok := c.hists[name]
	c.hmu.RUnlock()
	if !ok {
		return nil, false
	}
	return h.Snapshot(), true
}

// Histograms snapshots every histogram.
func (c *Collector) Histograms() map[string]*HistSnapshot {
	c.hmu.RLock()
	defer c.hmu.RUnlock()
	out := make(map[string]*HistSnapshot, len(c.hists))
	for name, h := range c.hists {
		out[name] = h.Snapshot()
	}
	return out
}

// Start implements Recorder: it opens a span as a child of the innermost
// open span (or as a root) and returns the closer.
func (c *Collector) Start(name string) func() {
	sp := &Span{Name: name, start: time.Now(), open: true}
	c.smu.Lock()
	if n := len(c.stack); n > 0 {
		parent := c.stack[n-1]
		parent.Children = append(parent.Children, sp)
	} else {
		c.roots = append(c.roots, sp)
	}
	c.stack = append(c.stack, sp)
	c.smu.Unlock()

	var once sync.Once
	return func() {
		once.Do(func() {
			c.smu.Lock()
			sp.Seconds = time.Since(sp.start).Seconds()
			sp.open = false
			// Pop the stack down to (and including) this span. Spans left
			// open below it are closed defensively with their elapsed time.
			for i := len(c.stack) - 1; i >= 0; i-- {
				top := c.stack[i]
				c.stack = c.stack[:i]
				if top == sp {
					break
				}
				if top.open {
					top.Seconds = time.Since(top.start).Seconds()
					top.open = false
				}
			}
			c.smu.Unlock()
			// Every phase close feeds the per-phase duration histogram, so
			// long-running servers get kernel-phase latency distributions
			// (phase.compare.us, phase.replay.us, …) for free — one Observe
			// per phase, nowhere near the per-pair hot path.
			c.Observe("phase."+sp.Name+".us", int64(sp.Seconds*1e6))
		})
	}
}

// Snapshot returns a copy of every counter's current value.
func (c *Collector) Snapshot() map[string]int64 {
	c.cmu.RLock()
	defer c.cmu.RUnlock()
	out := make(map[string]int64, len(c.counters))
	for name, ctr := range c.counters {
		out[name] = ctr.Load()
	}
	return out
}

// Gauges returns a copy of every gauge's current value.
func (c *Collector) Gauges() map[string]float64 {
	c.gmu.Lock()
	defer c.gmu.Unlock()
	out := make(map[string]float64, len(c.gauges))
	for name, v := range c.gauges {
		out[name] = v
	}
	return out
}

// Spans returns a deep copy of the recorded phase tree. Spans still open
// report their elapsed time so live /metrics scrapes see progress.
func (c *Collector) Spans() []*Span {
	c.smu.Lock()
	defer c.smu.Unlock()
	out := make([]*Span, len(c.roots))
	for i, sp := range c.roots {
		out[i] = copySpan(sp)
	}
	return out
}

func copySpan(sp *Span) *Span {
	cp := &Span{Name: sp.Name, Seconds: sp.Seconds}
	if sp.open {
		cp.Seconds = time.Since(sp.start).Seconds()
	}
	if len(sp.Counters) > 0 {
		cp.Counters = make(map[string]int64, len(sp.Counters))
		for k, v := range sp.Counters {
			cp.Counters[k] = v
		}
	}
	cp.Children = make([]*Span, len(sp.Children))
	for i, ch := range sp.Children {
		cp.Children[i] = copySpan(ch)
	}
	if len(cp.Children) == 0 {
		cp.Children = nil
	}
	return cp
}

// snapshotJSON is the exported JSON shape of a Collector.
type snapshotJSON struct {
	Phases     []*Span                    `json:"phases,omitempty"`
	Counters   map[string]int64           `json:"counters,omitempty"`
	Gauges     map[string]float64         `json:"gauges,omitempty"`
	Histograms map[string]QuantileSummary `json:"histograms,omitempty"`
}

// MarshalJSON renders the collector expvar-style: a single JSON object
// with phases, counters, gauges and histogram quantile summaries.
func (c *Collector) MarshalJSON() ([]byte, error) {
	var summaries map[string]QuantileSummary
	if hists := c.Histograms(); len(hists) > 0 {
		summaries = make(map[string]QuantileSummary, len(hists))
		for name, s := range hists {
			summaries[name] = s.Summary()
		}
	}
	return json.Marshal(snapshotJSON{
		Phases:     c.Spans(),
		Counters:   c.Snapshot(),
		Gauges:     c.Gauges(),
		Histograms: summaries,
	})
}

// Report renders the human run report: the phase tree with durations,
// then the counter and gauge tables, sorted by name.
func (c *Collector) Report() string {
	var b strings.Builder
	spans := c.Spans()
	if len(spans) > 0 {
		b.WriteString("phases:\n")
		for _, sp := range spans {
			writeSpan(&b, sp, 1)
		}
	}
	counters := c.Snapshot()
	if len(counters) > 0 {
		b.WriteString("counters:\n")
		w := 0
		names := sortedKeys(counters)
		for _, n := range names {
			if len(n) > w {
				w = len(n)
			}
		}
		for _, n := range names {
			fmt.Fprintf(&b, "  %-*s  %s\n", w, n, groupDigits(counters[n]))
		}
	}
	gauges := c.Gauges()
	if len(gauges) > 0 {
		b.WriteString("gauges:\n")
		w := 0
		names := make([]string, 0, len(gauges))
		for n := range gauges {
			names = append(names, n)
			if len(n) > w {
				w = len(n)
			}
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(&b, "  %-*s  %g\n", w, n, gauges[n])
		}
	}
	return b.String()
}

func writeSpan(b *strings.Builder, sp *Span, depth int) {
	indent := strings.Repeat("  ", depth)
	fmt.Fprintf(b, "%s%-*s  %s\n", indent, 28-2*depth, sp.Name, FormatSeconds(sp.Seconds))
	for _, ch := range sp.Children {
		writeSpan(b, ch, depth+1)
	}
}

// WriteMetrics writes the Prometheus-flavoured text exposition: one
// rdfcube_counter / rdfcube_gauge / rdfcube_phase_seconds sample per
// metric, labelled with the dotted metric name.
func (c *Collector) WriteMetrics(w io.Writer) error {
	var b strings.Builder
	b.WriteString("# TYPE rdfcube_counter counter\n")
	counters := c.Snapshot()
	for _, n := range sortedKeys(counters) {
		fmt.Fprintf(&b, "rdfcube_counter{name=%q} %d\n", n, counters[n])
	}
	b.WriteString("# TYPE rdfcube_gauge gauge\n")
	gauges := c.Gauges()
	gnames := make([]string, 0, len(gauges))
	for n := range gauges {
		gnames = append(gnames, n)
	}
	sort.Strings(gnames)
	for _, n := range gnames {
		fmt.Fprintf(&b, "rdfcube_gauge{name=%q} %g\n", n, gauges[n])
	}
	// Histograms follow the Prometheus histogram convention — cumulative
	// _bucket samples with `le` upper bounds, then _sum and _count. Only
	// occupied buckets are emitted (sparse expositions are valid and keep
	// the page small); the dotted metric name carries the unit (.us).
	hists := c.Histograms()
	if len(hists) > 0 {
		b.WriteString("# TYPE rdfcube_hist histogram\n")
		hnames := make([]string, 0, len(hists))
		for n := range hists {
			hnames = append(hnames, n)
		}
		sort.Strings(hnames)
		for _, n := range hnames {
			s := hists[n]
			var total uint64
			s.Buckets(func(upper int64, cumulative uint64) bool {
				fmt.Fprintf(&b, "rdfcube_hist_bucket{name=%q,le=%q} %d\n", n, formatLe(upper), cumulative)
				total = cumulative
				return true
			})
			fmt.Fprintf(&b, "rdfcube_hist_bucket{name=%q,le=\"+Inf\"} %d\n", n, total)
			fmt.Fprintf(&b, "rdfcube_hist_sum{name=%q} %d\n", n, s.Sum)
			fmt.Fprintf(&b, "rdfcube_hist_count{name=%q} %d\n", n, total)
		}
	}
	b.WriteString("# TYPE rdfcube_phase_seconds gauge\n")
	var walk func(prefix string, sp *Span)
	walk = func(prefix string, sp *Span) {
		path := sp.Name
		if prefix != "" {
			path = prefix + "/" + sp.Name
		}
		fmt.Fprintf(&b, "rdfcube_phase_seconds{phase=%q} %.6f\n", path, sp.Seconds)
		for _, ch := range sp.Children {
			walk(path, ch)
		}
	}
	for _, sp := range c.Spans() {
		walk("", sp)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// formatLe renders a bucket upper bound the way Prometheus clients
// expect (no exponent for small integers, %g beyond).
func formatLe(v int64) string {
	return fmt.Sprintf("%g", float64(v))
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// groupDigits renders 1234567 as "1,234,567".
func groupDigits(v int64) string {
	s := fmt.Sprintf("%d", v)
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	var b strings.Builder
	for i, r := range s {
		if i > 0 && (len(s)-i)%3 == 0 {
			b.WriteByte(',')
		}
		b.WriteRune(r)
	}
	if neg {
		return "-" + b.String()
	}
	return b.String()
}

// FormatSeconds renders a duration in seconds at human scale (µs → h).
func FormatSeconds(sec float64) string {
	d := time.Duration(sec * float64(time.Second))
	switch {
	case d >= time.Hour:
		return fmt.Sprintf("%.2fh", d.Hours())
	case d >= time.Minute:
		return fmt.Sprintf("%.2fm", d.Minutes())
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}
