package obsv

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Progress is the streaming Recorder: it narrates phase starts/ends as
// they happen and prints a throttled one-line counter digest while a long
// phase runs, so an operator watching stderr sees live progress instead
// of a silent multi-minute gap. It is safe for concurrent use.
type Progress struct {
	mu       sync.Mutex
	w        io.Writer
	interval time.Duration
	last     time.Time
	counts   map[string]int64
	depth    int
}

// NewProgress returns a Progress recorder writing to w, emitting counter
// digests at most every 500 ms.
func NewProgress(w io.Writer) *Progress {
	return NewProgressInterval(w, 500*time.Millisecond)
}

// NewProgressInterval returns a Progress recorder with an explicit digest
// throttle interval.
func NewProgressInterval(w io.Writer, interval time.Duration) *Progress {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	return &Progress{w: w, interval: interval, counts: map[string]int64{}}
}

// Start implements Recorder.
func (p *Progress) Start(name string) func() {
	p.mu.Lock()
	fmt.Fprintf(p.w, "[obsv] %s> %s\n", strings.Repeat("  ", p.depth), name)
	p.depth++
	p.mu.Unlock()
	start := time.Now()
	var once sync.Once
	return func() {
		once.Do(func() {
			p.mu.Lock()
			if p.depth > 0 {
				p.depth--
			}
			fmt.Fprintf(p.w, "[obsv] %s< %s %s\n",
				strings.Repeat("  ", p.depth), name, FormatSeconds(time.Since(start).Seconds()))
			p.mu.Unlock()
		})
	}
}

// Count implements Recorder: it accumulates and, at most once per
// interval, prints a digest of the largest counters.
func (p *Progress) Count(name string, delta int64) {
	if delta == 0 {
		return
	}
	p.mu.Lock()
	p.counts[name] += delta
	now := time.Now()
	if now.Sub(p.last) < p.interval {
		p.mu.Unlock()
		return
	}
	p.last = now
	line := p.digestLocked()
	depth := p.depth
	p.mu.Unlock()
	fmt.Fprintf(p.w, "[obsv] %s… %s\n", strings.Repeat("  ", depth), line)
}

// Gauge implements Recorder.
func (p *Progress) Gauge(name string, value float64) {
	p.mu.Lock()
	fmt.Fprintf(p.w, "[obsv] %s= %s %g\n", strings.Repeat("  ", p.depth), name, value)
	p.mu.Unlock()
}

// digestLocked renders the top counters by value, largest first.
func (p *Progress) digestLocked() string {
	type kv struct {
		k string
		v int64
	}
	all := make([]kv, 0, len(p.counts))
	for k, v := range p.counts {
		all = append(all, kv{k, v})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].v != all[j].v {
			return all[i].v > all[j].v
		}
		return all[i].k < all[j].k
	})
	const maxShown = 4
	if len(all) > maxShown {
		all = all[:maxShown]
	}
	parts := make([]string, len(all))
	for i, e := range all {
		parts[i] = fmt.Sprintf("%s=%s", e.k, humanCount(e.v))
	}
	return strings.Join(parts, " ")
}

// humanCount renders large counts compactly: 1234 → "1.2k", 56789012 → "56.8M".
func humanCount(v int64) string {
	switch {
	case v >= 1_000_000_000:
		return fmt.Sprintf("%.1fG", float64(v)/1e9)
	case v >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(v)/1e6)
	case v >= 10_000:
		return fmt.Sprintf("%.1fk", float64(v)/1e3)
	default:
		return fmt.Sprintf("%d", v)
	}
}
