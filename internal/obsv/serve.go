package obsv

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns an http.Handler exposing the collector:
//
//	/metrics        Prometheus-flavoured text exposition
//	/metrics.json   expvar-style JSON snapshot (phases, counters, gauges)
//	/debug/vars     the process-wide expvar page
//	/debug/pprof/   the standard net/http/pprof index and profiles
func Handler(c *Collector) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = c.WriteMetrics(w)
		// Runtime health (goroutines, heap, GC pauses) rides along so a
		// scrape correlates tail latency with the runtime's behavior.
		_ = WriteRuntimeMetrics(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		data, err := c.MarshalJSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		_, _ = w.Write(data)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StartDebugServer starts the debug HTTP server on addr (e.g.
// "localhost:6060"; use port 0 for an ephemeral port) serving Handler(c).
// It returns the running server and the bound address; the caller shuts
// it down with srv.Close.
func StartDebugServer(addr string, c *Collector) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: Handler(c)}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}
