package obsv

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
)

// TestHistogramBucketRoundTrip: every value must land in a bucket whose
// [lo, hi) range contains it, and bucket bounds must tile the axis.
func TestHistogramBucketRoundTrip(t *testing.T) {
	values := []int64{0, 1, 2, 15, 16, 17, 31, 32, 100, 1000, 12345,
		1 << 20, 1<<40 + 3, math.MaxInt64}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		values = append(values, int64(r.Uint64()>>uint(r.Intn(63))))
	}
	for _, v := range values {
		if v < 0 {
			v = -v
		}
		i := bucketIndex(v)
		if i < 0 || i >= NumHistBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, i)
		}
		lo, hi := bucketBounds(i)
		if v < lo || (v >= hi && hi != math.MaxInt64) {
			t.Fatalf("value %d fell into bucket %d = [%d, %d)", v, i, lo, hi)
		}
	}
	// Buckets tile: bucket k's hi is bucket k+1's lo (until the clamped top).
	for i := 0; i < NumHistBuckets-1; i++ {
		_, hi := bucketBounds(i)
		lo, _ := bucketBounds(i + 1)
		if hi != lo && hi != math.MaxInt64 {
			t.Fatalf("gap between bucket %d (hi %d) and %d (lo %d)", i, hi, i+1, lo)
		}
	}
}

// TestHistogramQuantileAccuracy is the property test: on random
// distributions the histogram quantile must stay within the bucket
// relative-width bound of the exact sorted-reference quantile.
func TestHistogramQuantileAccuracy(t *testing.T) {
	dists := []struct {
		name string
		gen  func(r *rand.Rand) int64
	}{
		{"uniform", func(r *rand.Rand) int64 { return r.Int63n(1_000_000) }},
		{"exponential", func(r *rand.Rand) int64 { return int64(r.ExpFloat64() * 50_000) }},
		{"lognormal", func(r *rand.Rand) int64 { return int64(math.Exp(r.NormFloat64()*2 + 8)) }},
		{"bimodal", func(r *rand.Rand) int64 {
			if r.Intn(10) == 0 {
				return 500_000 + r.Int63n(100_000) // slow tail
			}
			return 100 + r.Int63n(400)
		}},
	}
	quantiles := []float64{0.5, 0.9, 0.99, 0.999}
	for _, d := range dists {
		for seed := int64(1); seed <= 3; seed++ {
			r := rand.New(rand.NewSource(seed))
			h := &Histogram{}
			vals := make([]int64, 20000)
			for i := range vals {
				v := d.gen(r)
				vals[i] = v
				h.Observe(v)
			}
			sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
			s := h.Snapshot()
			if s.Count != int64(len(vals)) {
				t.Fatalf("%s/%d: snapshot count %d, want %d", d.name, seed, s.Count, len(vals))
			}
			for _, q := range quantiles {
				exact := float64(vals[int(q*float64(len(vals)-1))])
				got := s.Quantile(q)
				// Bucket relative width is ≤ 1/8; allow that plus rank
				// discretization slack, and an absolute floor for the
				// exact small buckets.
				tol := exact*0.125 + 2
				if math.Abs(got-exact) > tol {
					t.Errorf("%s/seed%d p%g: histogram %.0f vs exact %.0f (tol %.0f)",
						d.name, seed, q*100, got, exact, tol)
				}
			}
		}
	}
}

// TestHistogramConcurrentMerge is the race test: N writers hammer one
// histogram while a reader snapshots and merges; the final merged state
// must account for every observation exactly once.
func TestHistogramConcurrentMerge(t *testing.T) {
	const writers = 8
	const perWriter = 20000
	h := &Histogram{}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Snapshot reader: merges successive snapshots; intermediate merges
	// only need to not crash or tear — the final check is exact.
	wg.Add(1)
	go func() {
		defer wg.Done()
		acc := &HistSnapshot{}
		for {
			select {
			case <-stop:
				return
			default:
				acc.Merge(h.Snapshot())
				_ = acc.Quantile(0.99)
			}
		}
	}()
	var writerWg sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWg.Add(1)
		go func(seed int64) {
			defer writerWg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < perWriter; i++ {
				h.Observe(r.Int63n(1 << 30))
			}
		}(int64(w + 1))
	}
	writerWg.Wait()
	close(stop)
	wg.Wait()

	s := h.Snapshot()
	if want := int64(writers * perWriter); s.Count != want {
		t.Fatalf("final count %d, want %d", s.Count, want)
	}
	// Merging two independent halves equals observing everything once.
	a, b := &Histogram{}, &Histogram{}
	for i := int64(0); i < 1000; i++ {
		a.Observe(i * 3)
		b.Observe(i * 7)
	}
	merged := a.Snapshot()
	merged.Merge(b.Snapshot())
	if merged.Count != 2000 {
		t.Fatalf("merged count %d, want 2000", merged.Count)
	}
	both := &Histogram{}
	for i := int64(0); i < 1000; i++ {
		both.Observe(i * 3)
		both.Observe(i * 7)
	}
	ref := both.Snapshot()
	if merged.Counts != ref.Counts || merged.Sum != ref.Sum {
		t.Fatal("merge of two halves differs from observing everything in one histogram")
	}
}

// TestCollectorHistogramExposition checks the Prometheus text shape:
// cumulative, monotone buckets ending in +Inf, plus _sum and _count.
func TestCollectorHistogramExposition(t *testing.T) {
	c := NewCollector()
	for i := int64(1); i <= 100; i++ {
		c.Observe("serve.latency.us", i*i)
	}
	var sb strings.Builder
	if err := c.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE rdfcube_hist histogram",
		`rdfcube_hist_bucket{name="serve.latency.us",le="+Inf"} 100`,
		`rdfcube_hist_count{name="serve.latency.us"} 100`,
		`rdfcube_hist_sum{name="serve.latency.us"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Cumulative counts must be monotone.
	s, ok := c.HistSnapshot("serve.latency.us")
	if !ok {
		t.Fatal("HistSnapshot missing")
	}
	last := uint64(0)
	s.Buckets(func(upper int64, cum uint64) bool {
		if cum < last {
			t.Errorf("cumulative count decreased at le=%d: %d < %d", upper, cum, last)
		}
		last = cum
		return true
	})
	if last != 100 {
		t.Errorf("final cumulative %d, want 100", last)
	}
}

// TestSpanCloseFeedsPhaseHistogram: Collector.Start's closer must feed
// the per-phase duration histogram.
func TestSpanCloseFeedsPhaseHistogram(t *testing.T) {
	c := NewCollector()
	end := c.Start("compare")
	end()
	s, ok := c.HistSnapshot("phase.compare.us")
	if !ok || s.Count != 1 {
		t.Fatalf("phase.compare.us histogram not recorded: ok=%v snapshot=%+v", ok, s)
	}
}

// TestWriteRuntimeMetrics smoke-checks the runtime exposition.
func TestWriteRuntimeMetrics(t *testing.T) {
	var sb strings.Builder
	if err := WriteRuntimeMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"rdfcube_go_goroutines", "rdfcube_go_heap_objects_bytes", "rdfcube_go_gc_pause_seconds"} {
		if !strings.Contains(out, want) {
			t.Errorf("runtime exposition missing %q in:\n%s", want, out)
		}
	}
}

// TestTraceCollectorAttribution: counters land on the innermost open
// span; nesting and deep-copying behave like Collector's.
func TestTraceCollectorAttribution(t *testing.T) {
	tc := NewTraceCollector()
	endRoot := tc.Start("related")
	tc.Count("resolve.hits", 1)
	endChild := tc.Start("compare")
	tc.Count("dim.tests", 42)
	tc.Count("dim.tests", 8)
	endChild()
	tc.Count("emit.full", 3)
	endRoot()

	spans := tc.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d roots, want 1", len(spans))
	}
	root := spans[0]
	if root.Name != "related" || root.Counters["resolve.hits"] != 1 || root.Counters["emit.full"] != 3 {
		t.Fatalf("root mis-recorded: %+v", root)
	}
	if len(root.Children) != 1 || root.Children[0].Name != "compare" || root.Children[0].Counters["dim.tests"] != 50 {
		t.Fatalf("child mis-recorded: %+v", root.Children[0])
	}
	// Counts after all spans closed attach to the last root, not vanish.
	tc.Count("late.flush", 5)
	if got := tc.Spans()[0].Counters["late.flush"]; got != 5 {
		t.Fatalf("late flush lost: got %d", got)
	}
}
