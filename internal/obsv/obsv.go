// Package obsv is the zero-dependency instrumentation layer of the
// relationship algorithms: phase spans, monotonic counters and gauges,
// recorded through a pluggable Recorder and exposed as a phase-tree run
// report, expvar-style text/JSON metrics, and an optional debug HTTP
// server (/metrics + net/http/pprof).
//
// The paper's central claims are about work avoided — cubeMasking wins
// because lattice pruning discards most cube pairs before any bit-vector
// test (§3.3, Fig. 5), and clustering trades recall for fewer comparisons
// (§3.2). The counters recorded here make that visible from the inside:
// cube pairs considered/pruned/compared, observation-pair comparisons,
// bit-AND subset tests, and so on, next to per-phase wall-clock spans.
//
// Recorders must be safe for concurrent use: the parallel cubeMasking
// worker pool calls Count from many goroutines. The hot paths batch
// counter increments locally and flush per outer iteration, so a Recorder
// call is never on a per-bit or per-dimension fast path.
package obsv

import "time"

// Recorder is the instrumentation hook consulted by the algorithms.
//
// Implementations must be safe for concurrent use by multiple goroutines.
// All methods must be cheap: hot loops batch their increments, but Count
// is still called once per outer-loop iteration.
type Recorder interface {
	// Start opens a phase span with the given name; the returned func
	// closes it. Spans may nest (compile → om.build); implementations
	// that track a span tree treat spans opened before the previous one
	// closed as children.
	Start(name string) func()
	// Count adds delta to the named monotonic counter.
	Count(name string, delta int64)
	// Gauge sets the named gauge to a point-in-time value.
	Gauge(name string, value float64)
}

// Observer is the optional Recorder extension for distribution metrics:
// implementations record value into the named histogram. It is separate
// from Recorder so existing Recorder implementations (and third-party
// ones) keep compiling; call sites use the Observe helper, which degrades
// to a no-op for recorders without distribution support.
type Observer interface {
	Observe(name string, value int64)
}

// Observe records value into r's named histogram when r supports
// distributions (implements Observer); otherwise it does nothing. A nil
// r is also fine.
func Observe(r Recorder, name string, value int64) {
	if o, ok := r.(Observer); ok {
		o.Observe(name, value)
	}
}

// Nop is the no-op Recorder: every method does nothing. Algorithms treat
// a nil Recorder the same way (they skip the call entirely), so Nop exists
// for call sites that want a non-nil Recorder unconditionally.
type Nop struct{}

// Start implements Recorder.
func (Nop) Start(string) func() { return nopEnd }

// Count implements Recorder.
func (Nop) Count(string, int64) {}

// Gauge implements Recorder.
func (Nop) Gauge(string, float64) {}

// Observe implements Observer.
func (Nop) Observe(string, int64) {}

var nopEnd = func() {}

// Multi fans recording out to several recorders; nil entries are skipped.
// It returns nil when every argument is nil, so callers can do
// opts.Obs = obsv.Multi(collector, progress) without a nil check.
func Multi(rs ...Recorder) Recorder {
	var live []Recorder
	for _, r := range rs {
		if r != nil {
			live = append(live, r)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multi(live)
}

type multi []Recorder

// Start implements Recorder.
func (m multi) Start(name string) func() {
	ends := make([]func(), len(m))
	for i, r := range m {
		ends[i] = r.Start(name)
	}
	return func() {
		// Close in reverse of open order, like deferred calls.
		for i := len(ends) - 1; i >= 0; i-- {
			ends[i]()
		}
	}
}

// Count implements Recorder.
func (m multi) Count(name string, delta int64) {
	for _, r := range m {
		r.Count(name, delta)
	}
}

// Gauge implements Recorder.
func (m multi) Gauge(name string, value float64) {
	for _, r := range m {
		r.Gauge(name, value)
	}
}

// Observe implements Observer, forwarding to the members that support
// distributions.
func (m multi) Observe(name string, value int64) {
	for _, r := range m {
		Observe(r, name, value)
	}
}

// Span is one node of the recorded phase tree.
type Span struct {
	// Name is the phase name passed to Start.
	Name string `json:"name"`
	// Seconds is the span's wall-clock duration.
	Seconds float64 `json:"seconds"`
	// Children are spans opened while this one was open.
	Children []*Span `json:"children,omitempty"`
	// Counters are the counter deltas attributed to this span (set by
	// TraceCollector, which charges each Count call to the innermost open
	// span; the global Collector leaves it nil — its counters are
	// process-wide, not per-span).
	Counters map[string]int64 `json:"counters,omitempty"`

	start time.Time
	open  bool
}

// Duration returns the span duration as a time.Duration.
func (s *Span) Duration() time.Duration {
	return time.Duration(s.Seconds * float64(time.Second))
}
