// Package obsv is the zero-dependency instrumentation layer of the
// relationship algorithms: phase spans, monotonic counters and gauges,
// recorded through a pluggable Recorder and exposed as a phase-tree run
// report, expvar-style text/JSON metrics, and an optional debug HTTP
// server (/metrics + net/http/pprof).
//
// The paper's central claims are about work avoided — cubeMasking wins
// because lattice pruning discards most cube pairs before any bit-vector
// test (§3.3, Fig. 5), and clustering trades recall for fewer comparisons
// (§3.2). The counters recorded here make that visible from the inside:
// cube pairs considered/pruned/compared, observation-pair comparisons,
// bit-AND subset tests, and so on, next to per-phase wall-clock spans.
//
// Recorders must be safe for concurrent use: the parallel cubeMasking
// worker pool calls Count from many goroutines. The hot paths batch
// counter increments locally and flush per outer iteration, so a Recorder
// call is never on a per-bit or per-dimension fast path.
package obsv

import "time"

// Recorder is the instrumentation hook consulted by the algorithms.
//
// Implementations must be safe for concurrent use by multiple goroutines.
// All methods must be cheap: hot loops batch their increments, but Count
// is still called once per outer-loop iteration.
type Recorder interface {
	// Start opens a phase span with the given name; the returned func
	// closes it. Spans may nest (compile → om.build); implementations
	// that track a span tree treat spans opened before the previous one
	// closed as children.
	Start(name string) func()
	// Count adds delta to the named monotonic counter.
	Count(name string, delta int64)
	// Gauge sets the named gauge to a point-in-time value.
	Gauge(name string, value float64)
}

// Nop is the no-op Recorder: every method does nothing. Algorithms treat
// a nil Recorder the same way (they skip the call entirely), so Nop exists
// for call sites that want a non-nil Recorder unconditionally.
type Nop struct{}

// Start implements Recorder.
func (Nop) Start(string) func() { return nopEnd }

// Count implements Recorder.
func (Nop) Count(string, int64) {}

// Gauge implements Recorder.
func (Nop) Gauge(string, float64) {}

var nopEnd = func() {}

// Multi fans recording out to several recorders; nil entries are skipped.
// It returns nil when every argument is nil, so callers can do
// opts.Obs = obsv.Multi(collector, progress) without a nil check.
func Multi(rs ...Recorder) Recorder {
	var live []Recorder
	for _, r := range rs {
		if r != nil {
			live = append(live, r)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multi(live)
}

type multi []Recorder

// Start implements Recorder.
func (m multi) Start(name string) func() {
	ends := make([]func(), len(m))
	for i, r := range m {
		ends[i] = r.Start(name)
	}
	return func() {
		// Close in reverse of open order, like deferred calls.
		for i := len(ends) - 1; i >= 0; i-- {
			ends[i]()
		}
	}
}

// Count implements Recorder.
func (m multi) Count(name string, delta int64) {
	for _, r := range m {
		r.Count(name, delta)
	}
}

// Gauge implements Recorder.
func (m multi) Gauge(name string, value float64) {
	for _, r := range m {
		r.Gauge(name, value)
	}
}

// Span is one node of the recorded phase tree.
type Span struct {
	// Name is the phase name passed to Start.
	Name string `json:"name"`
	// Seconds is the span's wall-clock duration.
	Seconds float64 `json:"seconds"`
	// Children are spans opened while this one was open.
	Children []*Span `json:"children,omitempty"`

	start time.Time
	open  bool
}

// Duration returns the span duration as a time.Duration.
func (s *Span) Duration() time.Duration {
	return time.Duration(s.Seconds * float64(time.Second))
}
