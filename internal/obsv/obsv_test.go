package obsv

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCollectorCounters(t *testing.T) {
	c := NewCollector()
	c.Count("a", 3)
	c.Count("a", 4)
	c.Count("b", 1)
	c.Count("zero", 0) // no-op, must not create the counter
	snap := c.Snapshot()
	if snap["a"] != 7 || snap["b"] != 1 {
		t.Errorf("snapshot = %v", snap)
	}
	if _, ok := snap["zero"]; ok {
		t.Errorf("zero-delta Count must not create a counter")
	}
}

func TestCollectorConcurrentCounts(t *testing.T) {
	c := NewCollector()
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Count("shared", 1)
			}
		}()
	}
	wg.Wait()
	if got := c.Snapshot()["shared"]; got != workers*per {
		t.Errorf("shared = %d, want %d", got, workers*per)
	}
}

func TestCollectorSpanTree(t *testing.T) {
	c := NewCollector()
	endA := c.Start("compile")
	endB := c.Start("om.build")
	endB()
	endA()
	endC := c.Start("compare")
	endC()

	spans := c.Spans()
	if len(spans) != 2 {
		t.Fatalf("roots = %d, want 2", len(spans))
	}
	if spans[0].Name != "compile" || spans[1].Name != "compare" {
		t.Errorf("root names: %s, %s", spans[0].Name, spans[1].Name)
	}
	if len(spans[0].Children) != 1 || spans[0].Children[0].Name != "om.build" {
		t.Errorf("compile children: %+v", spans[0].Children)
	}
	rep := c.Report()
	for _, want := range []string{"phases:", "compile", "om.build", "compare"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestCollectorDoubleEndIsSafe(t *testing.T) {
	c := NewCollector()
	end := c.Start("x")
	end()
	end() // second call must be a no-op
	if n := len(c.Spans()); n != 1 {
		t.Errorf("spans = %d, want 1", n)
	}
}

func TestCollectorJSON(t *testing.T) {
	c := NewCollector()
	c.Count("pairs", 42)
	c.Gauge("workers", 8)
	end := c.Start("compare")
	end()
	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Phases   []*Span            `json:"phases"`
		Counters map[string]int64   `json:"counters"`
		Gauges   map[string]float64 `json:"gauges"`
	}
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Counters["pairs"] != 42 || got.Gauges["workers"] != 8 || len(got.Phases) != 1 {
		t.Errorf("json round trip: %+v", got)
	}
}

func TestMulti(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Errorf("Multi of nils must be nil")
	}
	a, b := NewCollector(), NewCollector()
	if got := Multi(a, nil); got != Recorder(a) {
		t.Errorf("Multi with one live recorder must return it directly")
	}
	m := Multi(a, b)
	m.Count("x", 2)
	end := m.Start("phase")
	end()
	m.Gauge("g", 1)
	for _, c := range []*Collector{a, b} {
		if c.Snapshot()["x"] != 2 || len(c.Spans()) != 1 || c.Gauges()["g"] != 1 {
			t.Errorf("fan-out missed a recorder")
		}
	}
}

func TestNopRecorder(t *testing.T) {
	var n Nop
	n.Count("x", 1)
	n.Gauge("g", 2)
	n.Start("s")()
}

func TestProgressNarration(t *testing.T) {
	var sb strings.Builder
	var mu sync.Mutex
	w := lockedWriter{w: &sb, mu: &mu}
	p := NewProgressInterval(w, time.Nanosecond)
	end := p.Start("compare")
	p.Count("pairs", 123456)
	p.Count("pairs", 1)
	p.Gauge("workers", 4)
	end()
	mu.Lock()
	out := sb.String()
	mu.Unlock()
	for _, want := range []string{"> compare", "< compare", "pairs=", "workers"} {
		if !strings.Contains(out, want) {
			t.Errorf("progress output missing %q:\n%s", want, out)
		}
	}
}

type lockedWriter struct {
	w  io.Writer
	mu *sync.Mutex
}

func (l lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

func TestDebugServer(t *testing.T) {
	c := NewCollector()
	c.Count("obs.pairs.compared", 99)
	end := c.Start("compare")
	end()
	srv, addr, err := StartDebugServer("127.0.0.1:0", c)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	if body := get("/metrics"); !strings.Contains(body, `rdfcube_counter{name="obs.pairs.compared"} 99`) {
		t.Errorf("/metrics body:\n%s", body)
	}
	if body := get("/metrics.json"); !strings.Contains(body, `"obs.pairs.compared":99`) {
		t.Errorf("/metrics.json body:\n%s", body)
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ body:\n%s", body)
	}
}

func TestFormatHelpers(t *testing.T) {
	if got := groupDigits(1234567); got != "1,234,567" {
		t.Errorf("groupDigits = %q", got)
	}
	if got := groupDigits(-1000); got != "-1,000" {
		t.Errorf("groupDigits neg = %q", got)
	}
	if got := humanCount(56_789_012); got != "56.8M" {
		t.Errorf("humanCount = %q", got)
	}
	if got := FormatSeconds(0.0123); got != "12.3ms" {
		t.Errorf("FormatSeconds = %q", got)
	}
}
