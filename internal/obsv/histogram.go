package obsv

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Histogram is a fixed-memory, lock-free latency/size histogram with
// logarithmic buckets: values below histExact get one exact bucket each,
// larger values share histSubBuckets buckets per power of two, so the
// relative width of any bucket is at most 1/histSubBuckets (12.5%) and a
// quantile read off the bucket midpoint carries a bounded relative error
// no matter how wide the recorded range is. Memory is constant
// (NumHistBuckets atomic words, ~4 KiB) regardless of count.
//
// Observe is a few atomic adds — cheap enough for one call per HTTP
// request or per kernel phase, far off the per-pair hot path (which stays
// batched exactly as before; nothing here is consulted by the kernels'
// inner loops). Snapshots are consistent enough for monitoring: counts
// are read bucket-by-bucket while writers proceed, so a snapshot taken
// mid-Observe may be off by the in-flight observation — never torn, and
// quantile ranks always use the snapshot's own bucket total.
//
// The zero value is ready to use.
type Histogram struct {
	counts [NumHistBuckets]atomic.Uint64
	sum    atomic.Int64
}

// Bucket layout: 8 sub-buckets per octave after 16 exact unit buckets.
const (
	histSubBits    = 3
	histSubBuckets = 1 << histSubBits       // 8 buckets per power of two
	histExact      = 1 << (histSubBits + 1) // values in [0,16) get exact buckets
	// NumHistBuckets covers the full non-negative int64 range:
	// 16 exact buckets + 8 per octave for octaves 4..63.
	NumHistBuckets = histExact + (64-(histSubBits+1))*histSubBuckets
)

// bucketIndex maps a non-negative value to its bucket. Negative values
// clamp to bucket 0 (durations cannot be negative; a clock step should
// not corrupt the distribution's shape).
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < histExact {
		return int(u)
	}
	n := bits.Len64(u) // ≥ histSubBits+2
	shift := uint(n - histSubBits - 1)
	m := int(u>>shift) - histSubBuckets // 0..histSubBuckets-1
	return histExact + (n-histSubBits-2)*histSubBuckets + m
}

// bucketBounds returns bucket i's half-open value range [lo, hi).
func bucketBounds(i int) (lo, hi int64) {
	if i < histExact {
		return int64(i), int64(i) + 1
	}
	k := i - histExact
	n := k/histSubBuckets + histSubBits + 2 // bits.Len64 of members
	m := uint64(k % histSubBuckets)
	shift := uint(n - histSubBits - 1)
	ulo := (histSubBuckets + m) << shift
	uhi := ulo + 1<<shift
	// The very top octave overflows int64; clamp — no recordable value
	// lives there anyway.
	if ulo > math.MaxInt64 {
		ulo = math.MaxInt64
	}
	if uhi > math.MaxInt64 || uhi < ulo {
		uhi = math.MaxInt64
	}
	return int64(ulo), int64(uhi)
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.counts[bucketIndex(v)].Add(1)
	h.sum.Add(v)
}

// Snapshot copies the current state into an immutable, mergeable value.
func (h *Histogram) Snapshot() *HistSnapshot {
	s := &HistSnapshot{}
	var total uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		total += c
	}
	s.Count = int64(total)
	s.Sum = h.sum.Load()
	return s
}

// HistSnapshot is a point-in-time copy of a Histogram: plain integers,
// safe to merge, compare and serialize. Count is the bucket total of the
// snapshot (authoritative for quantile ranks); Sum is the sum of observed
// values (Mean = Sum/Count).
type HistSnapshot struct {
	Counts [NumHistBuckets]uint64 `json:"-"`
	Count  int64                  `json:"count"`
	Sum    int64                  `json:"sum"`
}

// Merge folds other into s — the shard/replica aggregation primitive.
func (s *HistSnapshot) Merge(other *HistSnapshot) {
	if other == nil {
		return
	}
	for i := range s.Counts {
		s.Counts[i] += other.Counts[i]
	}
	s.Count += other.Count
	s.Sum += other.Sum
}

// Mean returns the arithmetic mean of the observed values (0 when empty).
func (s *HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-quantile (q in [0,1]) by locating the bucket
// holding the target rank and interpolating linearly inside it. Exact
// buckets return their exact value; log buckets carry at most their
// relative width (≤ 1/8) of error. Returns 0 on an empty snapshot.
func (s *HistSnapshot) Quantile(q float64) float64 {
	if s.Count <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count-1)
	var cum uint64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) > rank {
			lo, hi := bucketBounds(i)
			if hi-lo <= 1 {
				return float64(lo)
			}
			within := (rank - float64(cum) + 0.5) / float64(c)
			return float64(lo) + within*float64(hi-lo)
		}
		cum += c
	}
	// Unreachable when Count matches Counts; fall back to the top bucket.
	for i := NumHistBuckets - 1; i >= 0; i-- {
		if s.Counts[i] > 0 {
			lo, _ := bucketBounds(i)
			return float64(lo)
		}
	}
	return 0
}

// Buckets calls fn for every non-empty bucket in ascending value order
// with the bucket's exclusive upper bound and the CUMULATIVE count up to
// and including it — exactly the shape a Prometheus histogram exposition
// needs. fn returning false stops the walk.
func (s *HistSnapshot) Buckets(fn func(upper int64, cumulative uint64) bool) {
	var cum uint64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		cum += c
		_, hi := bucketBounds(i)
		if !fn(hi, cum) {
			return
		}
	}
}

// QuantileSummary bundles the standard monitoring quantiles of one
// snapshot — the /v1/stats and load-report shape.
type QuantileSummary struct {
	Count  int64   `json:"count"`
	Mean   float64 `json:"mean"`
	P50    float64 `json:"p50"`
	P90    float64 `json:"p90"`
	P99    float64 `json:"p99"`
	P999   float64 `json:"p999"`
	MaxLow float64 `json:"maxLow"` // lower bound of the highest occupied bucket
}

// Summary computes the standard quantile summary.
func (s *HistSnapshot) Summary() QuantileSummary {
	out := QuantileSummary{
		Count: s.Count,
		Mean:  s.Mean(),
		P50:   s.Quantile(0.50),
		P90:   s.Quantile(0.90),
		P99:   s.Quantile(0.99),
		P999:  s.Quantile(0.999),
	}
	for i := NumHistBuckets - 1; i >= 0; i-- {
		if s.Counts[i] > 0 {
			lo, _ := bucketBounds(i)
			out.MaxLow = float64(lo)
			break
		}
	}
	return out
}
