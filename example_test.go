package rdfcube_test

import (
	"fmt"

	rdfcube "rdfcube"
)

// Example computes the paper's running example end to end and prints the
// complementary pairs of Figure 3.
func Example() {
	corpus := rdfcube.ExampleCorpus()
	comp, err := rdfcube.Compute(corpus, rdfcube.CubeMasking, rdfcube.Options{})
	if err != nil {
		panic(err)
	}
	for _, p := range comp.Result.ComplSet {
		fmt.Printf("%s complements %s\n", comp.Obs(p.A).URI.Local(), comp.Obs(p.B).URI.Local())
	}
	// Output:
	// o11 complements o31
	// o13 complements o35
}

// ExampleCompute_tasks restricts computation to full containment only.
func ExampleCompute_tasks() {
	comp, err := rdfcube.Compute(rdfcube.ExampleCorpus(), rdfcube.Baseline,
		rdfcube.Options{Tasks: rdfcube.TaskFull})
	if err != nil {
		panic(err)
	}
	f, p, c := comp.Result.Counts()
	fmt.Println(f, p, c)
	// Output: 4 0 0
}

// ExampleLoadTurtle round-trips a corpus through Turtle.
func ExampleLoadTurtle() {
	ttl := rdfcube.ExportTurtle(rdfcube.ExampleCorpus())
	corpus, err := rdfcube.LoadTurtle(ttl)
	if err != nil {
		panic(err)
	}
	fmt.Println(corpus.NumObservations(), "observations")
	// Output: 10 observations
}

// ExampleQuery runs a SPARQL aggregate over a corpus.
func ExampleQuery() {
	res, err := rdfcube.Query(rdfcube.ExampleCorpus(), `
PREFIX qb: <http://purl.org/linked-data/cube#>
SELECT (COUNT(*) AS ?n) WHERE { ?o a qb:Observation }`)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Solutions[0]["n"].Value)
	// Output: 10
}

// ExampleSkyline lists the top-level observations of the running example.
func ExampleSkyline() {
	space, err := rdfcube.Compile(rdfcube.ExampleCorpus())
	if err != nil {
		panic(err)
	}
	fmt.Println(len(rdfcube.Skyline(space)), "skyline points of", space.N())
	// Output: 6 skyline points of 10
}
