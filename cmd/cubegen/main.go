// Command cubegen generates the reproduction's corpora as Turtle: the
// paper's Figure 2 running example, the Table-4 real-world replica, or the
// §4.2 synthetic scalability workload.
//
// Usage:
//
//	cubegen -kind example -o example.ttl
//	cubegen -kind real -n 20000 -seed 1 -o real20k.ttl
//	cubegen -kind synthetic -n 100000 -o syn100k.ttl
//	cubegen -kind real -n 246500 -manifest
package main

import (
	"flag"
	"fmt"
	"os"

	"rdfcube/internal/bench"
	"rdfcube/internal/gen"
	"rdfcube/internal/qb"

	rdfcube "rdfcube"
)

func main() {
	var (
		kind     = flag.String("kind", "example", "corpus kind: example, real, synthetic")
		n        = flag.Int("n", 10000, "observation count (real, synthetic)")
		seed     = flag.Int64("seed", 1, "generator seed")
		out      = flag.String("o", "", "output Turtle file (default stdout)")
		manifest = flag.Bool("manifest", false, "print the Table 4 manifest instead of data")
		stats    = flag.Bool("stats", false, "print corpus statistics instead of data")
	)
	flag.Parse()

	if *manifest {
		fmt.Print(bench.TableFourManifest(*n, *seed))
		return
	}

	var corpus *qb.Corpus
	switch *kind {
	case "example":
		corpus = gen.PaperExample()
	case "real":
		corpus = gen.RealWorld(gen.RealWorldConfig{TotalObs: *n, Seed: *seed})
	case "synthetic":
		corpus = gen.Synthetic(gen.SyntheticConfig{N: *n, Seed: *seed})
	default:
		fmt.Fprintf(os.Stderr, "cubegen: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	if *stats {
		fmt.Printf("datasets:      %d\n", len(corpus.Datasets))
		fmt.Printf("observations:  %d\n", corpus.NumObservations())
		fmt.Printf("dimensions:    %d\n", len(corpus.AllDimensions()))
		fmt.Printf("measures:      %d\n", len(corpus.AllMeasures()))
		fmt.Printf("code values:   %d\n", corpus.Hierarchies.TotalCodes())
		return
	}

	ttl := rdfcube.ExportTurtle(corpus)
	if *out == "" {
		fmt.Print(ttl)
		return
	}
	if err := os.WriteFile(*out, []byte(ttl), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "cubegen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "cubegen: wrote %d observations to %s\n", corpus.NumObservations(), *out)
}
