// Command cubegen generates the reproduction's corpora as Turtle: the
// paper's Figure 2 running example, the Table-4 real-world replica, or the
// §4.2 synthetic scalability workload.
//
// Usage:
//
//	cubegen -kind example -o example.ttl
//	cubegen -kind real -n 20000 -seed 1 -o real20k.ttl
//	cubegen -kind synthetic -n 100000 -o syn100k.ttl
//	cubegen -kind real -n 246500 -manifest
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rdfcube/internal/bench"
	"rdfcube/internal/gen"
	"rdfcube/internal/qb"

	rdfcube "rdfcube"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cubegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		kind     = fs.String("kind", "example", "corpus kind: example, real, synthetic")
		n        = fs.Int("n", 10000, "observation count (real, synthetic)")
		seed     = fs.Int64("seed", 1, "generator seed")
		out      = fs.String("o", "", "output Turtle file (default stdout)")
		manifest = fs.Bool("manifest", false, "print the Table 4 manifest instead of data")
		stats    = fs.Bool("stats", false, "print corpus statistics instead of data")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *manifest {
		fmt.Fprint(stdout, bench.TableFourManifest(*n, *seed))
		return 0
	}

	var corpus *qb.Corpus
	switch *kind {
	case "example":
		corpus = gen.PaperExample()
	case "real":
		corpus = gen.RealWorld(gen.RealWorldConfig{TotalObs: *n, Seed: *seed})
	case "synthetic":
		corpus = gen.Synthetic(gen.SyntheticConfig{N: *n, Seed: *seed})
	default:
		fmt.Fprintf(stderr, "cubegen: unknown kind %q\n", *kind)
		return 2
	}

	if *stats {
		fmt.Fprintf(stdout, "datasets:      %d\n", len(corpus.Datasets))
		fmt.Fprintf(stdout, "observations:  %d\n", corpus.NumObservations())
		fmt.Fprintf(stdout, "dimensions:    %d\n", len(corpus.AllDimensions()))
		fmt.Fprintf(stdout, "measures:      %d\n", len(corpus.AllMeasures()))
		fmt.Fprintf(stdout, "code values:   %d\n", corpus.Hierarchies.TotalCodes())
		return 0
	}

	ttl := rdfcube.ExportTurtle(corpus)
	if *out == "" {
		fmt.Fprint(stdout, ttl)
		return 0
	}
	if err := os.WriteFile(*out, []byte(ttl), 0o644); err != nil {
		fmt.Fprintf(stderr, "cubegen: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "cubegen: wrote %d observations to %s\n", corpus.NumObservations(), *out)
	return 0
}
