package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	rdfcube "rdfcube"
)

// TestGenerateExampleRoundTrips generates the example corpus to stdout
// and feeds the Turtle back through the parser.
func TestGenerateExampleRoundTrips(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-kind", "example"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, errOut.String())
	}
	corpus, err := rdfcube.LoadTurtle(out.String())
	if err != nil {
		t.Fatalf("generated Turtle does not parse: %v", err)
	}
	if corpus.NumObservations() != 10 {
		t.Fatalf("round trip kept %d observations, want 10", corpus.NumObservations())
	}
	if len(corpus.Datasets) != 3 {
		t.Fatalf("round trip kept %d datasets, want 3", len(corpus.Datasets))
	}
}

// TestGenerateSyntheticToFile exercises -o plus a tiny synthetic corpus.
func TestGenerateSyntheticToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tiny.ttl")
	var out, errOut bytes.Buffer
	if code := run([]string{"-kind", "synthetic", "-n", "50", "-seed", "7", "-o", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, errOut.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := rdfcube.LoadTurtle(string(data))
	if err != nil {
		t.Fatalf("generated Turtle does not parse: %v", err)
	}
	if corpus.NumObservations() != 50 {
		t.Fatalf("got %d observations, want 50", corpus.NumObservations())
	}
	// The generated corpus must be computable end to end.
	if _, err := rdfcube.Compute(corpus, rdfcube.CubeMasking, rdfcube.Options{}); err != nil {
		t.Fatalf("Compute over generated corpus: %v", err)
	}
}

// TestStatsAndManifest covers the two non-Turtle outputs.
func TestStatsAndManifest(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-kind", "example", "-stats"}, &out, &errOut); code != 0 {
		t.Fatalf("stats: exit %d", code)
	}
	if !strings.Contains(out.String(), "observations:  10") {
		t.Fatalf("stats output: %q", out.String())
	}
	out.Reset()
	if code := run([]string{"-manifest", "-n", "1000"}, &out, &errOut); code != 0 {
		t.Fatalf("manifest: exit %d", code)
	}
	if out.Len() == 0 {
		t.Fatal("empty manifest")
	}
}

// TestUnknownKind pins the usage error.
func TestUnknownKind(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-kind", "bogus"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown kind") {
		t.Fatalf("stderr: %q", errOut.String())
	}
}
