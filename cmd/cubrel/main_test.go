package main

import (
	"testing"

	rdfcube "rdfcube"
)

func TestParseTasks(t *testing.T) {
	cases := map[string]rdfcube.Tasks{
		"all":             rdfcube.TaskAll,
		"full":            rdfcube.TaskFull,
		"partial":         rdfcube.TaskPartial,
		"compl":           rdfcube.TaskCompl,
		"complementarity": rdfcube.TaskCompl,
		"full,compl":      rdfcube.TaskFull | rdfcube.TaskCompl,
		"full,partial":    rdfcube.TaskFull | rdfcube.TaskPartial,
		"":                rdfcube.TaskAll,
	}
	for in, want := range cases {
		if got := parseTasks(in); got != want {
			t.Errorf("parseTasks(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestSplitComma(t *testing.T) {
	got := splitComma("a,b,,c")
	want := []string{"a", "b", "", "c"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("part %d: %q", i, got[i])
		}
	}
}

func TestLoadCorpusGenerators(t *testing.T) {
	for _, kind := range []string{"example", "real", "synthetic"} {
		c, err := loadCorpus("", kind, 50, 1)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if c.NumObservations() == 0 {
			t.Errorf("%s: empty corpus", kind)
		}
	}
	if _, err := loadCorpus("", "", 0, 0); err == nil {
		t.Errorf("no source must fail")
	}
	if _, err := loadCorpus("x.ttl", "example", 0, 0); err == nil {
		t.Errorf("both -in and -gen must fail")
	}
}
