// Command cubrel computes containment and complementarity relationships
// over QB data: load a Turtle corpus (or generate one), run an algorithm,
// and print a summary, a CSV pair listing, or an RDF export in the qbr:
// vocabulary.
//
// Usage:
//
//	cubrel -in data.ttl -alg cubemasking -format summary
//	cubrel -gen real -n 5000 -alg baseline -format csv
//	cubrel -gen example -format ttl > relationships.ttl
//	cubrel -in data.ttl -query 'SELECT ?o WHERE { ?o a qb:Observation } LIMIT 5'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	rdfcube "rdfcube"
	"rdfcube/internal/core"
	"rdfcube/internal/sigctx"
)

func main() {
	var (
		in      = flag.String("in", "", "input Turtle file with QB datasets and SKOS code lists")
		inCSV   = flag.String("in-csv", "", "input CSV table (header row first); requires -hierarchies")
		hier    = flag.String("hierarchies", "", "Turtle file with SKOS code lists for -in-csv")
		genK    = flag.String("gen", "", "generate instead of loading: example, real, synthetic")
		n       = flag.Int("n", 5000, "observation count for -gen real/synthetic")
		seed    = flag.Int64("seed", 1, "generator seed")
		algStr  = flag.String("alg", "cubemasking", "algorithm: "+core.AlgorithmNames())
		workers = flag.Int("workers", 0, "worker-pool size for baseline, clustering and parallel (0 = serial for baseline/clustering, GOMAXPROCS for parallel); output is identical to a serial run")
		tasks   = flag.String("tasks", "all", "relationships: full, partial, compl, all (comma-separated)")
		format  = flag.String("format", "summary", "output: summary, csv, ttl")
		query   = flag.String("query", "", "run a SPARQL query against the corpus instead of computing relationships")
		check   = flag.Bool("check", false, "validate QB integrity constraints and exit")
		explore = flag.String("explore", "", "observation URI (or local name) to explore: prints its containment/complementarity neighborhood")
		related = flag.Bool("relatedness", false, "print the dataset-pair relatedness ranking and matrix")
		rollup  = flag.String("rollup", "", "roll every dataset up before computing: <dimensionLocalName>:<level> (e.g. refArea:2)")
		aggStr  = flag.String("agg", "sum", "roll-up aggregation: sum, avg, count")
		vocab   = flag.Bool("vocab", false, "print the qbr: relationship vocabulary definition and exit")

		metrics   = flag.Bool("metrics", false, "print a run report (phase tree + counter table) to stderr after computing")
		progress  = flag.Bool("progress", false, "stream phase transitions and counter digests to stderr while computing")
		debugAddr = flag.String("debug-addr", "", "serve live /metrics, /metrics.json, /debug/vars and /debug/pprof/ on this address (e.g. localhost:6060) for the duration of the run")
	)
	flag.Parse()

	if *vocab {
		fmt.Print(rdfcube.QBRVocabularyTurtle())
		return
	}

	corpus, err := loadCorpusAll(*in, *inCSV, *hier, *genK, *n, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cubrel: %v\n", err)
		os.Exit(1)
	}

	if *check {
		vs, err := rdfcube.CheckIntegrity(corpus)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cubrel: %v\n", err)
			os.Exit(1)
		}
		if len(vs) == 0 {
			fmt.Println("ok: no integrity violations")
			return
		}
		for _, v := range vs {
			fmt.Println(v)
		}
		os.Exit(1)
	}

	if *query != "" {
		res, err := rdfcube.Query(corpus, *query)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cubrel: query: %v\n", err)
			os.Exit(1)
		}
		for _, v := range res.Vars {
			fmt.Printf("%s\t", v)
		}
		fmt.Println()
		for _, sol := range res.Solutions {
			for _, v := range res.Vars {
				fmt.Printf("%s\t", sol[v])
			}
			fmt.Println()
		}
		return
	}

	if *rollup != "" {
		corpus, err = applyRollUp(corpus, *rollup, *aggStr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cubrel: %v\n", err)
			os.Exit(1)
		}
	}

	if *related {
		if err := printRelatedness(corpus); err != nil {
			fmt.Fprintf(os.Stderr, "cubrel: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *explore != "" {
		if err := exploreObservation(corpus, *explore); err != nil {
			fmt.Fprintf(os.Stderr, "cubrel: %v\n", err)
			os.Exit(1)
		}
		return
	}

	opts := rdfcube.Options{Tasks: parseTasks(*tasks), Workers: *workers}
	opts.Clustering.Config.Seed = *seed

	var col *rdfcube.Collector
	if *metrics || *debugAddr != "" {
		col = rdfcube.NewCollector()
	}
	var rec rdfcube.Recorder
	if col != nil {
		rec = col
	}
	if *progress {
		rec = rdfcube.MultiRecorder(rec, rdfcube.NewProgress(os.Stderr))
	}
	opts.Obs = rec
	if *debugAddr != "" {
		srv, url, err := rdfcube.StartDebugServer(*debugAddr, col)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cubrel: debug server: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "cubrel: debug server listening at %s (metrics at %s/metrics, profiles at %s/debug/pprof/)\n", url, url, url)
	}

	// Two-stage interrupt: the first ^C cancels the compute cooperatively
	// — the partial result (an exact serial-order prefix of the full run)
	// is salvaged and printed below — and a second ^C force-quits.
	ctx, stopSig := sigctx.Install(context.Background(), func(second bool) {
		if second {
			fmt.Fprintln(os.Stderr, "cubrel: second interrupt, exiting now")
			return
		}
		fmt.Fprintln(os.Stderr, "cubrel: interrupt: canceling compute, will report the salvaged partial result; interrupt again to force-quit")
	}, nil)

	start := time.Now()
	comp, err := rdfcube.ComputeContext(ctx, corpus, rdfcube.Algorithm(*algStr), opts)
	stopSig()
	canceled := errors.Is(err, rdfcube.ErrCanceled)
	if err != nil && !canceled {
		fmt.Fprintf(os.Stderr, "cubrel: %v\n", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)
	if canceled {
		f, p, c := comp.Result.Counts()
		fmt.Fprintf(os.Stderr, "cubrel: canceled after %s: %v\n", elapsed.Round(time.Millisecond), err)
		fmt.Fprintf(os.Stderr, "cubrel: salvaged %d full, %d partial, %d complementarity pairs (an exact prefix of the full run's output)\n", f, p, c)
	}
	if *metrics {
		fmt.Fprint(os.Stderr, col.Report())
	}

	switch *format {
	case "summary":
		f, p, c := comp.Result.Counts()
		fmt.Printf("algorithm:            %s\n", *algStr)
		fmt.Printf("observations:         %d\n", comp.Space.N())
		fmt.Printf("dimensions:           %d\n", comp.Space.NumDims())
		fmt.Printf("full containment:     %d pairs\n", f)
		fmt.Printf("partial containment:  %d pairs\n", p)
		fmt.Printf("complementarity:      %d pairs\n", c)
		fmt.Printf("elapsed:              %s\n", elapsed)
	case "csv":
		fmt.Println("relationship,source,target,degree")
		for _, pr := range comp.Result.FullSet {
			fmt.Printf("full,%s,%s,1\n", comp.Obs(pr.A).URI.Value, comp.Obs(pr.B).URI.Value)
		}
		for _, pr := range comp.Result.PartialSet {
			fmt.Printf("partial,%s,%s,%.4f\n", comp.Obs(pr.A).URI.Value, comp.Obs(pr.B).URI.Value,
				comp.Result.PartialDegree[pr])
		}
		for _, pr := range comp.Result.ComplSet {
			fmt.Printf("complementarity,%s,%s,1\n", comp.Obs(pr.A).URI.Value, comp.Obs(pr.B).URI.Value)
		}
	case "ttl":
		fmt.Print(rdfcube.ExportRelationships(comp))
	case "merged":
		rows := rdfcube.MergeComplements(comp)
		fmt.Printf("%d combined data points from complementary observations:\n", len(rows))
		for _, row := range rows {
			for _, v := range row.DimValues {
				fmt.Printf("%s ", v.Local())
			}
			measures := make([]rdfcube.Term, 0, len(row.Measures))
			for m := range row.Measures {
				measures = append(measures, m)
			}
			sort.Slice(measures, func(i, j int) bool { return measures[i].Compare(measures[j]) < 0 })
			for _, m := range measures {
				fmt.Printf(" %s=%s", m.Local(), row.Measures[m].Value)
			}
			if len(row.Conflicts) > 0 {
				fmt.Printf(" (conflicts: %d)", len(row.Conflicts))
			}
			fmt.Println()
		}
	default:
		fmt.Fprintf(os.Stderr, "cubrel: unknown format %q\n", *format)
		os.Exit(2)
	}
	if canceled {
		os.Exit(sigctx.ExitCodeInterrupted)
	}
}

// applyRollUp rolls every dataset that carries the named dimension up to
// the given level and returns a corpus of the aggregated datasets (other
// datasets pass through unchanged).
func applyRollUp(corpus *rdfcube.Corpus, spec, aggName string) (*rdfcube.Corpus, error) {
	colon := -1
	for i := 0; i < len(spec); i++ {
		if spec[i] == ':' {
			colon = i
		}
	}
	if colon < 1 || colon == len(spec)-1 {
		return nil, fmt.Errorf("-rollup wants <dimension>:<level>, got %q", spec)
	}
	dimName := spec[:colon]
	level := 0
	for _, c := range spec[colon+1:] {
		if c < '0' || c > '9' {
			return nil, fmt.Errorf("bad level in %q", spec)
		}
		level = level*10 + int(c-'0')
	}
	var agg rdfcube.Aggregation
	switch aggName {
	case "sum":
		agg = rdfcube.AggSum
	case "avg":
		agg = rdfcube.AggAvg
	case "count":
		agg = rdfcube.AggCount
	default:
		return nil, fmt.Errorf("unknown aggregation %q", aggName)
	}
	space, err := rdfcube.Compile(corpus)
	if err != nil {
		return nil, err
	}
	out := rdfcube.NewCorpus(corpus.Hierarchies)
	for i, ds := range corpus.Datasets {
		var dim rdfcube.Term
		for _, d := range ds.Schema.Dimensions {
			if d.Local() == dimName {
				dim = d
			}
		}
		if dim.IsZero() {
			out.AddDataset(ds)
			continue
		}
		up, err := rdfcube.RollUp(space, i, dim, level, agg)
		if err != nil {
			return nil, err
		}
		out.AddDataset(up)
	}
	return out, nil
}

// printRelatedness computes all relationships and prints the source
// relatedness ranking and score matrix.
func printRelatedness(corpus *rdfcube.Corpus) error {
	space, err := rdfcube.Compile(corpus)
	if err != nil {
		return err
	}
	res := core.NewResult()
	core.CubeMasking(space, core.TaskAll, res, core.CubeMaskOptions{})
	rel := core.ComputeRelatedness(space, res)
	fmt.Println("most related dataset pairs:")
	for i, e := range rel.MostRelated() {
		if i >= 10 {
			break
		}
		fmt.Println("  " + e.String())
	}
	fmt.Println("\nscore matrix:")
	fmt.Print(rel.Table())
	return nil
}

// exploreObservation prints one observation's materialized neighborhood:
// its roll-ups, drill-downs and complementary partners.
func exploreObservation(corpus *rdfcube.Corpus, target string) error {
	ix, err := rdfcube.BuildExplorationIndex(corpus)
	if err != nil {
		return err
	}
	s := ix.Space()
	pick := -1
	for i, o := range s.Obs {
		if o.URI.Value == target || o.URI.Local() == target {
			pick = i
			break
		}
	}
	if pick < 0 {
		return fmt.Errorf("observation %q not found", target)
	}
	describe := func(i int) string {
		o := s.Obs[i]
		out := o.URI.Local()
		for _, d := range o.Dataset.Schema.Dimensions {
			out += " " + o.Value(d).Local()
		}
		return out
	}
	fmt.Printf("observation: %s\n", describe(pick))
	fmt.Println("rolls up to (immediate containers):")
	for _, j := range ix.RollUp(pick) {
		fmt.Println("  " + describe(j))
	}
	fmt.Println("drills down to (immediate details):")
	for _, j := range ix.DrillDown(pick) {
		fmt.Println("  " + describe(j))
	}
	fmt.Println("complemented by:")
	for _, j := range ix.Complements(pick) {
		fmt.Println("  " + describe(j))
	}
	return nil
}

func loadCorpusAll(in, inCSV, hier, genKind string, n int, seed int64) (*rdfcube.Corpus, error) {
	if inCSV != "" {
		if hier == "" {
			return nil, fmt.Errorf("-in-csv requires -hierarchies with the SKOS code lists")
		}
		hdata, err := os.ReadFile(hier)
		if err != nil {
			return nil, err
		}
		reg, err := rdfcube.LoadHierarchiesTurtle(string(hdata))
		if err != nil {
			return nil, err
		}
		f, err := os.Open(inCSV)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return rdfcube.LoadCSV(f, reg, rdfcube.CSVOptions{FuzzyCodes: true})
	}
	return loadCorpus(in, genKind, n, seed)
}

func loadCorpus(in, genKind string, n int, seed int64) (*rdfcube.Corpus, error) {
	switch {
	case in != "" && genKind != "":
		return nil, fmt.Errorf("use either -in or -gen, not both")
	case in != "":
		data, err := os.ReadFile(in)
		if err != nil {
			return nil, err
		}
		return rdfcube.LoadTurtle(string(data))
	case genKind == "example":
		return rdfcube.ExampleCorpus(), nil
	case genKind == "real":
		return rdfcube.GenerateRealWorld(n, seed), nil
	case genKind == "synthetic":
		return rdfcube.GenerateSynthetic(n, seed), nil
	default:
		return nil, fmt.Errorf("need -in FILE or -gen example|real|synthetic")
	}
}

func parseTasks(s string) rdfcube.Tasks {
	var t rdfcube.Tasks
	for _, part := range splitComma(s) {
		switch part {
		case "full":
			t |= rdfcube.TaskFull
		case "partial":
			t |= rdfcube.TaskPartial
		case "compl", "complementarity":
			t |= rdfcube.TaskCompl
		case "all", "":
			t |= rdfcube.TaskAll
		default:
			fmt.Fprintf(os.Stderr, "cubrel: unknown task %q\n", part)
			os.Exit(2)
		}
	}
	return t
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}
