package main

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// startDaemon boots run() in a goroutine against dir/idx.bin and waits
// for the bound address. Extra args are appended after the defaults.
func startDaemon(t *testing.T, ctx context.Context, snap string, extra ...string) (base string, errOut *syncBuffer, done chan int) {
	t.Helper()
	args := append([]string{"-gen", "example", "-snapshot", snap, "-addr", "127.0.0.1:0", "-checkpoint", "0"}, extra...)
	var out syncBuffer
	errOut = &syncBuffer{}
	done = make(chan int, 1)
	go func() { done <- run(ctx, args, &out, errOut) }()
	base = waitForAddr(t, errOut, done)
	waitForOK(t, base+"/readyz")
	return base, errOut, done
}

// insertLive posts one valid observation with the given URI suffix and
// requires a 201.
func insertLive(t *testing.T, base string, i int) string {
	t.Helper()
	uri := fmt.Sprintf("http://example.org/obs/crash%d", i)
	body := fmt.Sprintf(`{"dataset":"http://example.org/dataset/D3","uri":%q,`+
		`"dimensions":{"http://example.org/dim/refArea":"http://example.org/code/area/Rome",`+
		`"http://example.org/dim/refPeriod":"http://example.org/code/time/Feb2011"},`+
		`"measures":{"http://example.org/measure/unemployment":"0.07"}}`, uri)
	resp, err := http.Post(base+"/v1/observations", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("insert %d: %v", i, err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("insert %d: status %d", i, resp.StatusCode)
	}
	return uri
}

// copyDir copies every regular file of src into dst — the crash
// simulation: the copy sees exactly the bytes on "disk" mid-run, and the
// original daemon never gets to run its shutdown checkpoint against it.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCrashRestartReplaysWAL is the daemon-level kill-restart test: a
// running daemon acknowledges inserts, the data directory is copied
// mid-run (so the copy holds the pre-insert snapshot generation plus the
// fsynced WAL, but never a shutdown checkpoint), and a fresh daemon over
// the copy must replay the log and serve every acknowledged insert.
func TestCrashRestartReplaysWAL(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "idx.bin")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	base, _, done := startDaemon(t, ctx, snap)

	const inserts = 3
	var uris []string
	for i := 0; i < inserts; i++ {
		uris = append(uris, insertLive(t, base, i))
	}

	// "Crash": image the data directory while the daemon is still up.
	crashDir := t.TempDir()
	copyDir(t, dir, crashDir)
	cancel()
	<-done

	// Restart over the crash image.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	base2, errOut2, done2 := startDaemon(t, ctx2, filepath.Join(crashDir, "idx.bin"))
	if !strings.Contains(errOut2.String(), fmt.Sprintf("replayed %d WAL records", inserts)) {
		t.Fatalf("no replay log line, stderr: %s", errOut2.String())
	}
	for _, uri := range uris {
		resp, err := http.Get(base2 + "/v1/contains?obs=" + uri)
		if err != nil {
			t.Fatalf("query %s: %v", uri, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("acked insert %s lost across crash: status %d", uri, resp.StatusCode)
		}
	}
	cancel2()
	if code := <-done2; code != 0 {
		t.Fatalf("restarted daemon exit %d", code)
	}

	// After the restarted daemon's shutdown checkpoint, the WAL records
	// are folded into a generation: a third start must load them from the
	// snapshot without replaying.
	var out3, errOut3 syncBuffer
	done3 := make(chan int, 1)
	ctx3, cancel3 := context.WithCancel(context.Background())
	defer cancel3()
	go func() {
		done3 <- run(ctx3, []string{"-snapshot", filepath.Join(crashDir, "idx.bin"), "-once"}, &out3, &errOut3)
	}()
	if code := <-done3; code != 0 {
		t.Fatalf("third start: exit %d\nstderr: %s", code, errOut3.String())
	}
	if !strings.Contains(out3.String(), fmt.Sprintf("%d observations", 10+inserts)) {
		t.Fatalf("checkpoint after replay lost observations: %q", out3.String())
	}
}

// TestShutdownDuringTimerCheckpoints is the regression test for the
// SIGTERM-vs-timer checkpoint race: with an aggressive checkpoint
// interval, cancellation arriving between (or during) timer checkpoints
// must still exit cleanly and leave a loadable snapshot.
func TestShutdownDuringTimerCheckpoints(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "idx.bin")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	base, errOut, done := startDaemon(t, ctx, snap, "-checkpoint", "5ms")

	insertLive(t, base, 100)
	// Let a few timer checkpoints fire, then yank the daemon mid-stream.
	time.Sleep(25 * time.Millisecond)
	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("daemon exit %d\nstderr: %s", code, errOut.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit")
	}

	// Whatever interleaving happened, the surviving state must verify.
	var out2, errOut2 syncBuffer
	if code := run(context.Background(), []string{"-snapshot", snap, "-check"}, &out2, &errOut2); code != 0 {
		t.Fatalf("post-race check failed: exit %d\nstderr: %s", code, errOut2.String())
	}
	if !strings.Contains(out2.String(), "11 observations") {
		t.Fatalf("post-race state lost the insert: %q", out2.String())
	}
}

// TestCorruptWALIsQuarantinedAtStartup: a WAL whose header is garbage
// must not stop the daemon — it is renamed aside (evidence intact) and a
// fresh log replaces it.
func TestCorruptWALIsQuarantinedAtStartup(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "idx.bin")
	if err := os.WriteFile(snap+".wal", []byte("this is not a wal header"), 0o644); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	base, errOut, done := startDaemon(t, ctx, snap)
	if !strings.Contains(errOut.String(), "quarantined") {
		t.Fatalf("no quarantine log line: %s", errOut.String())
	}
	if data, err := os.ReadFile(snap + ".wal.corrupt"); err != nil || string(data) != "this is not a wal header" {
		t.Fatalf("quarantined WAL evidence missing or altered: %v", err)
	}
	// Inserts work against the fresh log.
	insertLive(t, base, 200)
	cancel()
	if code := <-done; code != 0 {
		t.Fatalf("exit %d", code)
	}
}

// TestWALOffDisablesDurability: -wal off serves without creating a log.
func TestWALOffDisablesDurability(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "idx.bin")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	base, _, done := startDaemon(t, ctx, snap, "-wal", "off")
	insertLive(t, base, 300)
	if _, err := os.Stat(snap + ".wal"); !os.IsNotExist(err) {
		t.Fatalf("-wal off still created a log: %v", err)
	}
	cancel()
	if code := <-done; code != 0 {
		t.Fatalf("exit %d", code)
	}
}
