package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	rdfcube "rdfcube"
)

// syncBuffer is a goroutine-safe bytes.Buffer: the daemon goroutine
// writes log lines while the test polls String.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestOnceBuildsSnapshotAndCheckPasses drives the batch path: -gen
// example -once writes a snapshot, -check verifies it, and a second
// -once run loads it instead of recomputing.
func TestOnceBuildsSnapshotAndCheckPasses(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "idx.bin")

	var out, errOut bytes.Buffer
	if code := run(context.Background(), []string{"-gen", "example", "-snapshot", snap, "-once"}, &out, &errOut); code != 0 {
		t.Fatalf("build: exit %d\nstderr: %s", code, errOut.String())
	}
	// Rotation artifacts: the first generation plus the CURRENT pointer.
	if _, err := os.Stat(snap + ".000001"); err != nil {
		t.Fatalf("snapshot generation not written: %v", err)
	}
	if cur, err := os.ReadFile(snap + ".CURRENT"); err != nil || strings.TrimSpace(string(cur)) != "idx.bin.000001" {
		t.Fatalf("CURRENT pointer: %q, %v", cur, err)
	}
	if !strings.Contains(out.String(), "snapshot ready") {
		t.Fatalf("unexpected stdout: %q", out.String())
	}

	out.Reset()
	errOut.Reset()
	if code := run(context.Background(), []string{"-snapshot", snap, "-check"}, &out, &errOut); code != 0 {
		t.Fatalf("check: exit %d\nstderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "ok:") {
		t.Fatalf("check stdout: %q", out.String())
	}

	// A second -once run must load, not recompute.
	out.Reset()
	errOut.Reset()
	if code := run(context.Background(), []string{"-snapshot", snap, "-once"}, &out, &errOut); code != 0 {
		t.Fatalf("reload: exit %d\nstderr: %s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "loaded snapshot") {
		t.Fatalf("expected snapshot load on second run, stderr: %q", errOut.String())
	}
}

// TestBadFlags pins the usage-error exits.
func TestBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-definitely-not-a-flag"},
		{"-once"},                                  // no corpus and no snapshot
		{"-load", "a.ttl", "-gen", "example"},      // mutually exclusive
		{"-check"},                                 // -check without -snapshot
		{"-gen", "nope", "-once"},                  // unknown generator
		{"-load", "/does/not/exist.ttl", "-once"},  // missing file
		{"-snapshot", "/does/not/exist", "-check"}, // missing snapshot
		{"-tasks", "bogus", "-gen", "example"},     // unknown task
		{"-tasks", ",", "-gen", "example"},         // empty task list
	} {
		var out, errOut bytes.Buffer
		if code := run(context.Background(), args, &out, &errOut); code == 0 {
			t.Errorf("args %v: expected non-zero exit", args)
		}
	}
}

// TestServeEndToEnd boots the daemon on an ephemeral port, queries it,
// inserts an observation, cancels the context (the SIGTERM stand-in) and
// verifies a clean exit plus a reloadable shutdown checkpoint that
// includes the insert.
func TestServeEndToEnd(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "idx.bin")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var out, errOut syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{"-gen", "example", "-snapshot", snap, "-addr", "127.0.0.1:0", "-checkpoint", "0"}, &out, &errOut)
	}()

	base := waitForAddr(t, &errOut, done)

	// Readiness and a relationship query.
	waitForOK(t, base+"/readyz")
	resp, err := http.Get(base + "/v1/related?obs=0")
	if err != nil {
		t.Fatalf("related: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("related: status %d", resp.StatusCode)
	}

	// The PR-1 observability surface shares the address.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}

	// Live insert.
	body := `{"dataset":"http://example.org/dataset/D3","uri":"http://example.org/obs/live1",` +
		`"dimensions":{"http://example.org/dim/refArea":"http://example.org/code/area/Rome",` +
		`"http://example.org/dim/refPeriod":"http://example.org/code/time/Feb2011"},` +
		`"measures":{"http://example.org/measure/unemployment":"0.07"}}`
	resp, err = http.Post(base+"/v1/observations", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("insert: %v", err)
	}
	var created struct {
		Obs int `json:"obs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatalf("insert response: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("insert: status %d", resp.StatusCode)
	}

	// Visible without restart.
	resp, err = http.Get(base + "/v1/contains?obs=http://example.org/obs/live1")
	if err != nil {
		t.Fatalf("query after insert: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query after insert: status %d", resp.StatusCode)
	}

	// Graceful shutdown writes a checkpoint.
	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("daemon exit %d\nstderr: %s", code, errOut.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after cancel")
	}
	if !strings.Contains(errOut.String(), "checkpoint (shutdown) written") {
		t.Fatalf("no shutdown checkpoint, stderr: %s", errOut.String())
	}

	// The checkpoint reloads and still knows the live insert.
	var out2, errOut2 bytes.Buffer
	if code := run(context.Background(), []string{"-snapshot", snap, "-once"}, &out2, &errOut2); code != 0 {
		t.Fatalf("reload: exit %d\nstderr: %s", code, errOut2.String())
	}
	if !strings.Contains(out2.String(), "11 observations") {
		t.Fatalf("reloaded snapshot missing the live insert: %q", out2.String())
	}
}

var addrRe = regexp.MustCompile(`serving on (\S+)`)

// waitForAddr polls the daemon's stderr for the bound address.
func waitForAddr(t *testing.T, errOut *syncBuffer, done <-chan int) string {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if m := addrRe.FindStringSubmatch(errOut.String()); m != nil {
			return "http://" + m[1]
		}
		select {
		case code := <-done:
			t.Fatalf("daemon exited early with %d: %s", code, errOut.String())
		case <-time.After(10 * time.Millisecond):
		}
	}
	t.Fatalf("daemon never reported its address: %s", errOut.String())
	return ""
}

func waitForOK(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("%s never became ready", url)
}

// TestLoadTurtleRoundTrip feeds a corpus exported by the library back
// through -load.
func TestLoadTurtleRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ttl := filepath.Join(dir, "corpus.ttl")
	snap := filepath.Join(dir, "idx.bin")

	// Export the example corpus with the cubegen logic's underlying API.
	data := exportExample(t)
	if err := os.WriteFile(ttl, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if code := run(context.Background(), []string{"-load", ttl, "-snapshot", snap, "-once"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "10 observations") {
		t.Fatalf("stdout: %q", out.String())
	}
}

func exportExample(t *testing.T) []byte {
	t.Helper()
	// Reuse the daemon's own loader plumbing via gen + turtle export.
	corpus, err := loadCorpus("", "example", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	return []byte(rdfcube.ExportTurtle(corpus))
}

// TestTasksSubsetCheck builds a full+compl snapshot and verifies it with
// the matching -tasks selection (the CI round-trip path at scale).
func TestTasksSubsetCheck(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "fc.bin")
	var out, errOut bytes.Buffer
	if code := run(context.Background(), []string{"-gen", "example", "-tasks", "full,compl", "-snapshot", snap, "-once"}, &out, &errOut); code != 0 {
		t.Fatalf("build: exit %d\nstderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "4/0/2 full/partial/compl") {
		t.Fatalf("unexpected counts: %q", out.String())
	}
	out.Reset()
	if code := run(context.Background(), []string{"-snapshot", snap, "-tasks", "full,compl", "-check"}, &out, &errOut); code != 0 {
		t.Fatalf("check: exit %d\nstderr: %s", code, errOut.String())
	}
	// A mismatched task selection must fail the check: the fresh
	// recomputation includes partial pairs the snapshot never stored.
	if code := run(context.Background(), []string{"-snapshot", snap, "-tasks", "all", "-check"}, &out, &errOut); code == 0 {
		t.Fatal("check with mismatched tasks unexpectedly passed")
	}
}

var followAddrRe = regexp.MustCompile(`following \S+ on (\S+) `)

// TestFollowerEndToEnd drives replication through the daemon flags: a
// primary and a -follow replica, live insert convergence, write
// rejection with the Leader hint, and the follower surviving the
// primary's shutdown.
func TestFollowerEndToEnd(t *testing.T) {
	dir := t.TempDir()
	pctx, pcancel := context.WithCancel(context.Background())
	defer pcancel()
	var pOut, pErr syncBuffer
	pDone := make(chan int, 1)
	go func() {
		pDone <- run(pctx, []string{"-gen", "example", "-snapshot", filepath.Join(dir, "primary.bin"),
			"-addr", "127.0.0.1:0", "-checkpoint", "0"}, &pOut, &pErr)
	}()
	primary := waitForAddr(t, &pErr, pDone)
	waitForOK(t, primary+"/readyz")

	fctx, fcancel := context.WithCancel(context.Background())
	defer fcancel()
	var fOut, fErr syncBuffer
	fDone := make(chan int, 1)
	go func() {
		fDone <- run(fctx, []string{"-follow", primary, "-snapshot", filepath.Join(dir, "replica.bin"),
			"-addr", "127.0.0.1:0", "-max-staleness", "1m", "-poll-wait", "200ms"}, &fOut, &fErr)
	}()
	follower := func() string {
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			if m := followAddrRe.FindStringSubmatch(fErr.String()); m != nil {
				return "http://" + m[1]
			}
			select {
			case code := <-fDone:
				t.Fatalf("follower exited early with %d: %s", code, fErr.String())
			case <-time.After(10 * time.Millisecond):
			}
		}
		t.Fatalf("follower never reported its address: %s", fErr.String())
		return ""
	}()
	waitForOK(t, follower+"/readyz")

	// An insert acked by the primary must become visible on the follower.
	body := `{"dataset":"http://example.org/dataset/D3","uri":"http://example.org/obs/repl1",` +
		`"dimensions":{"http://example.org/dim/refArea":"http://example.org/code/area/Rome",` +
		`"http://example.org/dim/refPeriod":"http://example.org/code/time/Feb2011"},` +
		`"measures":{"http://example.org/measure/unemployment":"0.07"}}`
	resp, err := http.Post(primary+"/v1/observations", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("insert: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("insert: status %d", resp.StatusCode)
	}
	waitForOK(t, follower+"/v1/contains?obs=http://example.org/obs/repl1")

	// Writes on the follower are refused toward the leader.
	resp, err = http.Post(follower+"/v1/observations", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("follower insert: %v", err)
	}
	leader := resp.Header.Get("Leader")
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("follower insert: status %d, want 503", resp.StatusCode)
	}
	if leader != primary {
		t.Fatalf("Leader hint %q, want %q", leader, primary)
	}

	// The follower's stats carry its replication posture.
	resp, err = http.Get(follower + "/v1/stats")
	if err != nil {
		t.Fatalf("follower stats: %v", err)
	}
	var stats struct {
		Replication struct {
			Role   string `json:"role"`
			Leader string `json:"leader"`
		} `json:"replication"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatalf("follower stats: %v", err)
	}
	resp.Body.Close()
	if stats.Replication.Role != "follower" || stats.Replication.Leader != primary {
		t.Fatalf("follower stats replication: %+v", stats.Replication)
	}

	// Kill the primary; the generous staleness bound keeps the follower
	// serving ready reads.
	pcancel()
	select {
	case code := <-pDone:
		if code != 0 {
			t.Fatalf("primary exit %d\nstderr: %s", code, pErr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("primary did not exit")
	}
	waitForOK(t, follower+"/readyz")
	waitForOK(t, follower+"/v1/contains?obs=http://example.org/obs/repl1")

	fcancel()
	select {
	case code := <-fDone:
		if code != 0 {
			t.Fatalf("follower exit %d\nstderr: %s", code, fErr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("follower did not exit")
	}
}
