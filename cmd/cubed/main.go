// Command cubed is the relationship daemon: it computes (or reloads) the
// containment/complementarity sets over a QB corpus once, then serves
// them over HTTP while accepting live observation inserts — the paper's
// batch job turned into a long-running service.
//
// Usage:
//
//	cubed -load corpus.ttl -alg cubemasking -snapshot idx.bin -addr :8080
//	cubed -gen synthetic -n 10000 -snapshot idx.bin -once        # build only
//	cubed -snapshot idx.bin -check                               # verify
//	cubed -snapshot idx.bin -addr :8080 -checkpoint 2m
//
// Startup: the snapshot is resolved through generation rotation — the
// CURRENT pointer's generation, else older generations newest-first,
// else a legacy plain file — quarantining (never deleting) any corrupt
// candidate along the way. When nothing loads, the corpus is loaded or
// generated, the algorithm runs, and the state is committed as the first
// generation. The write-ahead log (-wal, defaulting to <snapshot>.wal)
// is then replayed on top, so inserts acknowledged before a crash
// survive the restart. While serving, every accepted insert is fsynced
// to the WAL before its 201; the state is checkpointed on the
// -checkpoint interval and once more during graceful shutdown
// (SIGINT/SIGTERM) — each checkpoint commits a new generation atomically
// and only then truncates the WAL. If the WAL fails mid-flight the
// daemon degrades to read-only: queries keep working, inserts get 503.
//
// The main address serves the /v1 query API (see internal/serve) next to
// the observability endpoints (/metrics, /metrics.json, /debug/vars,
// /debug/pprof/) backed by the same collector the algorithms and handlers
// report into.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rdfcube/internal/core"
	"rdfcube/internal/faultfs"
	"rdfcube/internal/gen"
	"rdfcube/internal/lattice"
	"rdfcube/internal/obsv"
	"rdfcube/internal/qb"
	"rdfcube/internal/replica"
	"rdfcube/internal/serve"
	"rdfcube/internal/snapshot"
	"rdfcube/internal/wal"

	rdfcube "rdfcube"
)

func main() {
	os.Exit(run(context.Background(), os.Args[1:], os.Stdout, os.Stderr))
}

// run is the daemon body; ctx cancellation is treated like a termination
// signal (tests use it in place of SIGTERM).
func run(parent context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cubed", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		load     = fs.String("load", "", "Turtle corpus to load when no snapshot exists yet")
		genK     = fs.String("gen", "", "generate a corpus instead of loading: example, real, synthetic")
		n        = fs.Int("n", 10000, "observation count for -gen real/synthetic")
		seed     = fs.Int64("seed", 1, "generator seed")
		algStr   = fs.String("alg", "cubemasking", "initial computation algorithm: "+core.AlgorithmNames())
		taskStr  = fs.String("tasks", "all", "relationship tasks: all, or a comma list of full,partial,compl")
		snapPath = fs.String("snapshot", "", "snapshot base path: generations <path>.NNNNNN rotate under a <path>.CURRENT pointer")
		walPath  = fs.String("wal", "", "write-ahead log path for live inserts (default <snapshot>.wal; \"off\" disables durability)")
		addr     = fs.String("addr", ":8080", "HTTP listen address (port 0 for ephemeral)")
		interval = fs.Duration("checkpoint", 5*time.Minute, "checkpoint interval while serving (0 disables)")
		timeout  = fs.Duration("timeout", 5*time.Second, "per-request timeout")
		inflight = fs.Int("max-inflight", 128, "max concurrently executing requests before 429 shedding")
		once     = fs.Bool("once", false, "compute or load the snapshot, write it, and exit without serving")
		check    = fs.Bool("check", false, "load the snapshot, recompute relationships from its space, verify they match, and exit")
		workers  = fs.Int("workers", 0, "worker-pool size for POST /v1/recompute (0 keeps the serial scan)")
		recompTO = fs.Duration("recompute-timeout", 60*time.Second, "deadline for one POST /v1/recompute batch pass")
		shutTO   = fs.Duration("shutdown-timeout", 10*time.Second, "bound on the final shutdown checkpoint (0 waits forever; a hung disk then hangs shutdown)")
		traceN   = fs.Int("trace-ring", 128, "recent request traces retained for GET /debug/traces")
		slowTh   = fs.Duration("slow-threshold", 0, "write requests at least this slow to the slow-query log as JSON lines (0 disables)")
		slowPath = fs.String("slow-log", "", "slow-query log file (default stderr when -slow-threshold is set)")
		dsCreate = fs.Bool("allow-dataset-create", true, "serve POST /v1/datasets (live schema registration; needed as a migration target)")
		follow   = fs.String("follow", "", "run as a read replica of this primary base URL (e.g. http://leader:8080)")
		maxStale = fs.Duration("max-staleness", 0, "follower readiness bound: /readyz answers 503 once replication staleness exceeds this (0 never trips)")
		pollWait = fs.Duration("poll-wait", 5*time.Second, "follower long-poll budget per WAL tail request")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	logf := func(format string, a ...any) { fmt.Fprintf(stderr, "cubed: "+format+"\n", a...) }

	alg := normalizeAlg(*algStr)
	tasks, err := parseTasks(*taskStr)
	if err != nil {
		logf("%v", err)
		return 2
	}
	col := obsv.NewCollector()
	disk := faultfs.OS{}

	// The termination context is armed before the first compute: a SIGTERM
	// during the startup batch pass (minutes on a large corpus) cancels it
	// at the next pair-budget poll instead of being ignored until serving
	// starts. Tests cancel parent in place of a signal.
	ctx, stop := signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *follow != "" {
		return runFollower(ctx, stop, followerFlags{
			primary:  strings.TrimRight(*follow, "/"),
			snapPath: *snapPath,
			walPath:  *walPath,
			addr:     *addr,
			maxStale: *maxStale,
			pollWait: *pollWait,
			timeout:  *timeout,
			inflight: *inflight,
			tasks:    tasks,
		}, disk, col, logf)
	}

	// The rotator owns all snapshot artifacts around the base path:
	// generations, the CURRENT pointer, quarantined corpses, and the
	// legacy plain file a pre-rotation daemon may have left behind.
	var rot *snapshot.Rotator
	if *snapPath != "" {
		rot = snapshot.NewRotator(disk, *snapPath)
		rot.Logf = logf
	}

	if *check {
		if rot == nil {
			logf("-check requires -snapshot")
			return 2
		}
		return runCheck(rot, alg, tasks, stdout, logf)
	}

	sn, err := loadOrCompute(ctx, rot, *load, *genK, *n, *seed, alg, tasks, col, logf)
	if err != nil {
		if errors.Is(err, core.ErrCanceled) {
			logf("startup compute canceled by termination signal; nothing written")
			return 130
		}
		logf("%v", err)
		return 1
	}
	if *once {
		fmt.Fprintf(stdout, "snapshot ready: %d observations, %d/%d/%d full/partial/compl pairs\n",
			sn.Space.N(), len(sn.Result.FullSet), len(sn.Result.PartialSet), len(sn.Result.ComplSet))
		return 0
	}

	// Open the write-ahead log and recover whatever suffix survived the
	// last run. A log whose header is unreadable is quarantined — the
	// evidence survives — and a fresh log replaces it; replay failures
	// (the log disagrees with the snapshot) stop the daemon instead of
	// silently dropping acknowledged writes.
	wpath := *walPath
	if wpath == "" && *snapPath != "" {
		wpath = *snapPath + ".wal"
	}
	var wlog *wal.Log
	var recs []wal.Record
	if wpath != "" && wpath != "off" {
		wlog, recs, err = wal.Open(disk, wpath)
		if errors.Is(err, wal.ErrCorrupt) {
			q := wpath + ".corrupt"
			if rerr := disk.Rename(wpath, q); rerr != nil {
				logf("quarantining corrupt wal %s: %v", wpath, rerr)
				return 1
			}
			logf("wal %s is corrupt (%v); quarantined to %s, starting a fresh log", wpath, err, q)
			wlog, recs, err = wal.Open(disk, wpath)
		}
		if err != nil {
			logf("opening wal %s: %v", wpath, err)
			return 1
		}
		defer wlog.Close()
		if wlog.RepairedBytes() > 0 {
			logf("wal %s: truncated %d torn trailing bytes from an interrupted append", wpath, wlog.RepairedBytes())
		}
	}

	// Slow-query log destination: an explicit file, else stderr whenever a
	// threshold is set.
	var slowLog io.Writer
	if *slowTh > 0 {
		slowLog = stderr
		if *slowPath != "" {
			f, err := os.OpenFile(*slowPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				logf("opening slow-query log %s: %v", *slowPath, err)
				return 1
			}
			defer f.Close()
			slowLog = f
		}
	}

	var snapGen func() uint64
	if rot != nil {
		snapGen = func() uint64 { g, _ := rot.CurrentGen(); return g }
	}
	// Dataset registration needs a synchronous checkpoint on a durable
	// server (registrations do not ride the WAL; the checkpoint is what
	// makes them crash-safe before they are published). Wire it through
	// the rotator when one exists; srv is captured after serve.New fills
	// it in.
	var srv *serve.Server
	var ckptNow func() error
	if rot != nil {
		ckptNow = func() error { return srv.CheckpointWith(rot.Write) }
	}
	srv, err = serve.New(sn, serve.Config{
		Tasks:                tasks,
		Recorder:             col,
		RequestTimeout:       *timeout,
		MaxInFlight:          *inflight,
		WAL:                  wlog,
		SnapshotGen:          snapGen,
		CheckpointNow:        ckptNow,
		DisableDatasetCreate: !*dsCreate,
		Logf:                 logf,
		Algorithm:            alg,
		Workers:              *workers,
		RecomputeTimeout:     *recompTO,
		TraceRing:            *traceN,
		SlowThreshold:        *slowTh,
		SlowLog:              slowLog,
	})
	if err != nil {
		logf("%v", err)
		return 1
	}
	if len(recs) > 0 {
		applied, err := srv.Replay(recs)
		if err != nil {
			logf("replaying wal %s: %v", wpath, err)
			return 1
		}
		logf("replayed %d WAL records from %s (%d already in the snapshot)", applied, wpath, len(recs)-applied)
	}

	// The query API and the PR-1 observability surface share the address.
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	obsHandler := obsv.Handler(col)
	mux.Handle("/metrics", obsHandler)
	mux.Handle("/metrics.json", obsHandler)
	mux.Handle("/debug/", obsHandler)
	// The trace ring lives on the serve.Server, not the collector, so it
	// needs an explicit mount in front of the /debug/ catch-all.
	mux.Handle("/debug/traces", srv.Handler())

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logf("listen: %v", err)
		return 1
	}
	httpSrv := &http.Server{Handler: mux}
	go func() { _ = httpSrv.Serve(ln) }()
	logf("serving on %s (%d observations, %d lattice cubes)", ln.Addr(), sn.Space.N(), srv.Incremental().Lattice().Len())

	// checkpoint commits a new snapshot generation, optionally bounded by
	// a wall-clock deadline. CheckpointWith holds the server's checkpoint
	// mutex, so a SIGTERM arriving mid-way through a timer checkpoint
	// queues the shutdown checkpoint behind it instead of racing it; the
	// WAL is truncated only after the generation commits. The shutdown
	// call passes -shutdown-timeout: an fsync wedged against a dead disk
	// is uninterruptible, and the daemon must exit anyway — the WAL covers
	// every acknowledged write, so abandoning the checkpoint loses nothing.
	checkpoint := func(reason string, bound time.Duration) {
		if rot == nil {
			return
		}
		start := time.Now()
		if err := srv.CheckpointWithin(bound, rot.Write); err != nil {
			logf("checkpoint (%s): %v", reason, err)
			return
		}
		logf("checkpoint (%s) written to %s in %s", reason, *snapPath, time.Since(start).Round(time.Millisecond))
	}

	if *interval > 0 && *snapPath != "" {
		go func() {
			t := time.NewTicker(*interval)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					checkpoint("timer", 0)
				}
			}
		}()
	}

	<-ctx.Done()
	stop()
	logf("shutting down, draining in-flight requests")
	// Cancel in-flight recomputes FIRST: Shutdown waits for in-flight
	// requests, and an Θ(n²) batch pass would otherwise hold it hostage.
	// The canceled recompute discards its partial result and answers 503.
	srv.BeginShutdown()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		logf("shutdown: %v", err)
	}
	checkpoint("shutdown", *shutTO)
	logf("bye")
	return 0
}

// followerFlags carries the subset of flags a read replica uses.
type followerFlags struct {
	primary  string
	snapPath string
	walPath  string
	addr     string
	maxStale time.Duration
	pollWait time.Duration
	timeout  time.Duration
	inflight int
	tasks    core.Tasks
}

// runFollower runs cubed as a read replica: bootstrap from the primary's
// snapshot, tail its WAL, serve the read API locally, refuse writes with
// a Leader hint. The follower persists its own snapshot/WAL chain under
// -snapshot/-wal so a restart resumes from the last applied offset
// instead of re-transferring the whole image; `-wal off` disables the
// chain (every restart then re-bootstraps).
func runFollower(ctx context.Context, stop func(), ff followerFlags, disk faultfs.FS, col *obsv.Collector, logf func(string, ...any)) int {
	snapPath, walPath := ff.snapPath, ff.walPath
	if walPath == "off" {
		snapPath, walPath = "", ""
		logf("follower: -wal off disables the local chain; every restart re-bootstraps")
	}
	fol, err := replica.New(replica.Config{
		Primary:        ff.primary,
		FS:             disk,
		SnapshotPath:   snapPath,
		WALPath:        walPath,
		Tasks:          ff.tasks,
		Recorder:       col,
		MaxStaleness:   ff.maxStale,
		PollWait:       ff.pollWait,
		RequestTimeout: ff.timeout,
		MaxInFlight:    ff.inflight,
		Logf:           logf,
	})
	if err != nil {
		logf("%v", err)
		return 2
	}

	mux := http.NewServeMux()
	mux.Handle("/", fol.Handler())
	obsHandler := obsv.Handler(col)
	mux.Handle("/metrics", obsHandler)
	mux.Handle("/metrics.json", obsHandler)
	mux.Handle("/debug/", obsHandler)

	ln, err := net.Listen("tcp", ff.addr)
	if err != nil {
		logf("listen: %v", err)
		return 1
	}
	httpSrv := &http.Server{Handler: mux}
	go func() { _ = httpSrv.Serve(ln) }()
	if ff.maxStale > 0 {
		logf("following %s on %s (readiness flips after %s of staleness)", ff.primary, ln.Addr(), ff.maxStale)
	} else {
		logf("following %s on %s (no staleness bound)", ff.primary, ln.Addr())
	}

	runDone := make(chan struct{})
	go func() { defer close(runDone); _ = fol.Run(ctx) }()

	<-ctx.Done()
	stop()
	logf("follower shutting down, draining in-flight requests")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		logf("shutdown: %v", err)
	}
	// Run's exit path checkpoints the local chain so the next start
	// resumes instead of re-bootstrapping.
	<-runDone
	logf("bye")
	return 0
}

// normalizeAlg accepts a few spelling shortcuts for algorithm names.
func normalizeAlg(s string) core.Algorithm {
	switch s {
	case "cubemask":
		return core.AlgorithmCubeMasking
	case "cubemask-prefetch":
		return core.AlgorithmCubeMaskingPrefetch
	}
	return core.Algorithm(s)
}

// parseTasks parses the -tasks flag: "all" or a comma list of
// full, partial, compl.
func parseTasks(s string) (core.Tasks, error) {
	if s == "" || s == "all" {
		return core.TaskAll, nil
	}
	var tasks core.Tasks
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(part) {
		case "full":
			tasks |= core.TaskFull
		case "partial":
			tasks |= core.TaskPartial
		case "compl", "complementarity":
			tasks |= core.TaskCompl
		case "":
		default:
			return 0, fmt.Errorf("unknown task %q (want full, partial, compl or all)", part)
		}
	}
	if tasks == 0 {
		return 0, fmt.Errorf("empty -tasks selection")
	}
	return tasks, nil
}

// loadOrCompute resolves the startup state through the rotator: the
// freshest readable generation wins (corrupt candidates are quarantined
// and fallen past); when nothing exists yet the corpus is loaded or
// generated, the algorithm runs, and the result is committed as the
// first generation. When candidates exist but none decodes, startup
// stops with a clean error rather than recomputing — a recompute from
// the base corpus would silently drop every previously checkpointed
// live insert, and the quarantined files deserve an operator's look.
func loadOrCompute(ctx context.Context, rot *snapshot.Rotator, load, genK string, n int, seed int64, alg core.Algorithm, tasks core.Tasks, col *obsv.Collector, logf func(string, ...any)) (*snapshot.Snapshot, error) {
	if rot != nil {
		start := time.Now()
		sn, from, err := rot.Load()
		switch {
		case err == nil:
			logf("loaded snapshot %s in %s (%d observations)", from, time.Since(start).Round(time.Millisecond), sn.Space.N())
			return sn, nil
		case errors.Is(err, fs.ErrNotExist):
			// Nothing on disk yet: compute from the corpus below.
		default:
			return nil, fmt.Errorf("loading snapshot %s: %w", rot.Path, err)
		}
	}

	corpus, err := loadCorpus(load, genK, n, seed)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	s, err := core.NewSpaceObs(corpus, col)
	if err != nil {
		return nil, err
	}
	res := core.NewResult()
	var l *lattice.Lattice
	switch alg {
	case core.AlgorithmCubeMasking:
		l, err = core.CubeMaskingCtx(ctx, s, tasks, res, core.CubeMaskOptions{})
	case core.AlgorithmCubeMaskingPrefetch:
		l, err = core.CubeMaskingCtx(ctx, s, tasks, res, core.CubeMaskOptions{PrefetchChildren: true})
	default:
		err = core.ComputeCtx(ctx, s, alg, core.Options{Tasks: tasks, Obs: col}, res)
	}
	if err != nil {
		return nil, err
	}
	res.Sort()
	logf("computed %d/%d/%d full/partial/compl pairs over %d observations with %s in %s",
		len(res.FullSet), len(res.PartialSet), len(res.ComplSet), s.N(), alg, time.Since(start).Round(time.Millisecond))
	sn := snapshot.New(s, res, l)
	if rot != nil {
		data, err := sn.Encode()
		if err != nil {
			return nil, err
		}
		if err := rot.Write(data); err != nil {
			return nil, err
		}
		logf("wrote snapshot %s", rot.Path)
	}
	return sn, nil
}

func loadCorpus(load, genK string, n int, seed int64) (*qb.Corpus, error) {
	switch {
	case load != "" && genK != "":
		return nil, fmt.Errorf("use either -load or -gen, not both")
	case load != "":
		data, err := os.ReadFile(load)
		if err != nil {
			return nil, err
		}
		return rdfcube.LoadTurtle(string(data))
	case genK == "example":
		return gen.PaperExample(), nil
	case genK == "real":
		return gen.RealWorld(gen.RealWorldConfig{TotalObs: n, Seed: seed}), nil
	case genK == "synthetic":
		return gen.Synthetic(gen.SyntheticConfig{N: n, Seed: seed}), nil
	default:
		return nil, fmt.Errorf("no snapshot found: need -load FILE or -gen example|real|synthetic")
	}
}

// runCheck verifies a snapshot round trip: the persisted relationship
// sets must equal a fresh recomputation over the reconstructed space.
// The snapshot is resolved through the same rotation fallback the
// serving path uses, so -check exercises exactly what a restart loads.
func runCheck(rot *snapshot.Rotator, alg core.Algorithm, tasks core.Tasks, stdout io.Writer, logf func(string, ...any)) int {
	sn, from, err := rot.Load()
	if err != nil {
		logf("%v", err)
		return 1
	}
	logf("checking snapshot %s", from)
	fresh := core.NewResult()
	switch alg {
	case core.AlgorithmCubeMasking, core.AlgorithmCubeMaskingPrefetch:
		core.CubeMasking(sn.Space, tasks, fresh, core.CubeMaskOptions{})
	default:
		if err := core.Compute(sn.Space, alg, core.Options{Tasks: tasks}, fresh); err != nil {
			logf("%v", err)
			return 1
		}
	}
	fresh.Sort()
	persisted := &core.Result{
		FullSet:    append([]core.Pair{}, sn.Result.FullSet...),
		PartialSet: append([]core.Pair{}, sn.Result.PartialSet...),
		ComplSet:   append([]core.Pair{}, sn.Result.ComplSet...),
	}
	persisted.Sort()
	if !equalPairs(persisted.FullSet, fresh.FullSet) {
		logf("check failed: full containment differs (persisted %d, fresh %d)", len(persisted.FullSet), len(fresh.FullSet))
		return 1
	}
	if !equalPairs(persisted.PartialSet, fresh.PartialSet) {
		logf("check failed: partial containment differs (persisted %d, fresh %d)", len(persisted.PartialSet), len(fresh.PartialSet))
		return 1
	}
	if !equalPairs(persisted.ComplSet, fresh.ComplSet) {
		logf("check failed: complementarity differs (persisted %d, fresh %d)", len(persisted.ComplSet), len(fresh.ComplSet))
		return 1
	}
	fmt.Fprintf(stdout, "ok: %d observations, %d/%d/%d full/partial/compl pairs match a fresh recomputation\n",
		sn.Space.N(), len(fresh.FullSet), len(fresh.PartialSet), len(fresh.ComplSet))
	return 0
}

// equalPairs compares two sorted pair sets, treating nil and empty as
// equal (the decoder returns nil for empty sections).
func equalPairs(a, b []core.Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
