package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"rdfcube/internal/core"
	"rdfcube/internal/gen"
	"rdfcube/internal/serve"
	"rdfcube/internal/snapshot"
)

// syncBuffer is a goroutine-safe bytes.Buffer: the daemon goroutine
// writes log lines while the test polls String.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func startShard(t *testing.T, w *gen.ShardWorld) string {
	t.Helper()
	s, err := core.NewSpace(w.Corpus)
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	res := core.NewResult()
	l := core.CubeMasking(s, core.TaskAll, res, core.CubeMaskOptions{})
	res.Sort()
	srv, err := serve.New(snapshot.New(s, res, l), serve.Config{})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	httpSrv, addr, err := serve.Start("127.0.0.1:0", srv)
	if err != nil {
		t.Fatalf("serve.Start: %v", err)
	}
	t.Cleanup(func() {
		srv.BeginShutdown()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
	})
	return "http://" + addr
}

func writeShardMap(t *testing.T, worlds []*gen.ShardWorld, urls []string) string {
	t.Helper()
	type entry struct {
		Name     string   `json:"name"`
		Primary  string   `json:"primary"`
		Datasets []string `json:"datasets"`
	}
	var m struct {
		Shards []entry `json:"shards"`
	}
	for i, w := range worlds {
		m.Shards = append(m.Shards, entry{Name: w.Name, Primary: urls[i], Datasets: w.Datasets})
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "shards.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestGateEndToEnd boots three real shard daemons over a relationship-
// closed corpus, points cubegate at them via a shard-map file, and
// drives reads, a write, and the observability surface over real TCP.
func TestGateEndToEnd(t *testing.T) {
	worlds, _ := gen.ShardWorlds(gen.ShardWorldsConfig{Seed: 3, ObsPerDataset: 20})
	var urls []string
	for _, w := range worlds {
		urls = append(urls, startShard(t, w))
	}
	mapPath := writeShardMap(t, worlds, urls)

	// -validate path first: summary and clean exit, no serving.
	var out, errOut bytes.Buffer
	if code := run(context.Background(), []string{"-shard-map", mapPath, "-validate"}, &out, &errOut); code != 0 {
		t.Fatalf("validate: exit %d\nstderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "shard map ok: 3 shards") {
		t.Fatalf("validate stdout: %q", out.String())
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	logs := &syncBuffer{}
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{
			"-shard-map", mapPath,
			"-addr", "127.0.0.1:0",
			"-probe-interval", "50ms",
		}, io.Discard, logs)
	}()

	addrRe := regexp.MustCompile(`gate serving on ([0-9.:]+)`)
	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if m := addrRe.FindStringSubmatch(logs.String()); m != nil {
			base = "http://" + m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("gate never started:\n%s", logs.String())
		}
		time.Sleep(20 * time.Millisecond)
	}

	client := &http.Client{Timeout: 5 * time.Second}
	getJSON := func(path string, into any) int {
		t.Helper()
		resp, err := client.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if into != nil {
			if err := json.Unmarshal(body, into); err != nil {
				t.Fatalf("GET %s: undecodable body %s: %v", path, body, err)
			}
		}
		return resp.StatusCode
	}

	var ready struct {
		Status string `json:"status"`
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		if code := getJSON("/readyz", &ready); code == http.StatusOK && ready.Status == "ready" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("gate never became ready: %+v\n%s", ready, logs.String())
		}
		time.Sleep(20 * time.Millisecond)
	}

	uri := worlds[0].Corpus.Datasets[0].Observations[0].URI.Value
	var rel struct {
		URI     string `json:"uri"`
		Partial bool   `json:"partial"`
	}
	if code := getJSON("/v1/related?obs="+uri, &rel); code != http.StatusOK {
		t.Fatalf("related: status %d", code)
	}
	if rel.URI != uri || rel.Partial {
		t.Fatalf("related: %+v", rel)
	}

	// A write routes to the owning shard: insert a twin of an existing
	// observation into its own dataset.
	src := worlds[1].Corpus.Datasets[0]
	o := src.Observations[0]
	dims := map[string]string{}
	for k, d := range src.Schema.Dimensions {
		dims[d.Value] = o.DimValues[k].Value
	}
	ins, _ := json.Marshal(map[string]any{
		"dataset":    src.URI.Value,
		"uri":        "http://example.org/cubegate-e2e/obs/1",
		"dimensions": dims,
		"measures":   map[string]string{src.Schema.Measures[0].Value: "99"},
	})
	resp, err := client.Post(base+"/v1/observations", "application/json", bytes.NewReader(ins))
	if err != nil {
		t.Fatalf("insert: %v", err)
	}
	insBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("insert: status %d body %s", resp.StatusCode, insBody)
	}

	var stats struct {
		Role            string `json:"role"`
		AvailableShards int    `json:"availableShards"`
	}
	if code := getJSON("/v1/stats", &stats); code != http.StatusOK || stats.Role != "gate" || stats.AvailableShards != 3 {
		t.Fatalf("stats: %+v", stats)
	}
	if code := getJSON("/metrics.json", nil); code != http.StatusOK {
		t.Fatalf("metrics.json: status %d", code)
	}

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("gate exit %d\n%s", code, logs.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("gate never exited\n%s", logs.String())
	}
	if !strings.Contains(logs.String(), "bye") {
		t.Fatalf("no clean shutdown line:\n%s", logs.String())
	}
}

// TestBadFlags pins the usage-error exits.
func TestBadFlags(t *testing.T) {
	cases := [][]string{
		{"-nope"},
		{},
		{"-shard-map", filepath.Join(t.TempDir(), "missing.json")},
	}
	for _, args := range cases {
		var out, errOut bytes.Buffer
		if code := run(context.Background(), args, &out, &errOut); code != 2 {
			t.Fatalf("args %v: exit %d, want 2\nstderr: %s", args, code, errOut.String())
		}
	}

	// A syntactically valid map that fails gate validation (dup name).
	path := filepath.Join(t.TempDir(), "dup.json")
	os.WriteFile(path, []byte(`[{"name":"a","primary":"http://x"},{"name":"a","primary":"http://y"}]`), 0o644)
	var out, errOut bytes.Buffer
	if code := run(context.Background(), []string{"-shard-map", path, "-validate"}, &out, &errOut); code != 2 {
		t.Fatalf("dup map: exit %d\nstderr: %s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "duplicate shard name") {
		t.Fatalf("dup map stderr: %q", errOut.String())
	}
}

// TestLoadShardMapShapes accepts both the wrapped and bare JSON shapes;
// the bare PR 8 format loads as epoch 0 with no migrations.
func TestLoadShardMapShapes(t *testing.T) {
	dir := t.TempDir()
	bare := filepath.Join(dir, "bare.json")
	os.WriteFile(bare, []byte(`[{"name":"a","primary":"http://x","datasets":["d1"]}]`), 0o644)
	wrapped := filepath.Join(dir, "wrapped.json")
	os.WriteFile(wrapped, []byte(`{"shards":[{"name":"a","primary":"http://x","datasets":["d1"]}]}`), 0o644)
	for _, p := range []string{bare, wrapped} {
		f, err := loadShardMap(p)
		if err != nil || len(f.Shards) != 1 || f.Shards[0].Name != "a" || f.Epoch != 0 || len(f.Migrations) != 0 {
			t.Fatalf("%s: %v %+v", p, err, f)
		}
	}
	full := filepath.Join(dir, "full.json")
	os.WriteFile(full, []byte(`{
		"epoch": 4,
		"shards": [{"name":"a","primary":"http://x","datasets":["d1"]},{"name":"b","primary":"http://y"}],
		"migrations": [{"id":"m1","datasets":["d1"],"from":"a","to":"b"}]
	}`), 0o644)
	f, err := loadShardMap(full)
	if err != nil || f.Epoch != 4 || len(f.Shards) != 2 || len(f.Migrations) != 1 || f.Migrations[0].ID != "m1" {
		t.Fatalf("full map: %v %+v", err, f)
	}
	junk := filepath.Join(dir, "junk.json")
	os.WriteFile(junk, []byte(`"not a map"`), 0o644)
	if _, err := loadShardMap(junk); err == nil {
		t.Fatalf("junk map accepted")
	}
}

// TestValidateEpochAndMigrations pins -validate's rebalance checks:
// overlapping ownership, epoch regressions (a negative epoch), and
// migrations referencing unknown shards or unowned datasets are all
// refused with a message naming the problem; a well-formed file with an
// epoch and a migration validates with both counted in the summary.
func TestValidateEpochAndMigrations(t *testing.T) {
	write := func(name, content string) string {
		p := filepath.Join(t.TempDir(), name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	rejects := []struct {
		name, content, want string
	}{
		{"overlapping ownership", `{
			"epoch": 1,
			"shards": [{"name":"a","primary":"http://x","datasets":["d1"]},
			           {"name":"b","primary":"http://y","datasets":["d1"]}]
		}`, "owned by both"},
		{"negative epoch", `{
			"epoch": -3,
			"shards": [{"name":"a","primary":"http://x","datasets":["d1"]}]
		}`, "negative"},
		{"migration unknown target", `{
			"epoch": 1,
			"shards": [{"name":"a","primary":"http://x","datasets":["d1"]}],
			"migrations": [{"id":"m1","datasets":["d1"],"from":"a","to":"ghost"}]
		}`, "unknown target shard"},
		{"migration unknown source", `{
			"epoch": 1,
			"shards": [{"name":"a","primary":"http://x","datasets":["d1"]}],
			"migrations": [{"id":"m1","datasets":["d1"],"from":"ghost","to":"a"}]
		}`, "unknown source shard"},
		{"migration unowned dataset", `{
			"epoch": 1,
			"shards": [{"name":"a","primary":"http://x","datasets":["d1"]},
			           {"name":"b","primary":"http://y"}],
			"migrations": [{"id":"m1","datasets":["d9"],"from":"a","to":"b"}]
		}`, "not owned by source"},
	}
	for _, tc := range rejects {
		path := write("map.json", tc.content)
		var out, errOut bytes.Buffer
		if code := run(context.Background(), []string{"-shard-map", path, "-validate"}, &out, &errOut); code != 2 {
			t.Fatalf("%s: exit %d, want 2\nstderr: %s", tc.name, code, errOut.String())
		}
		if !strings.Contains(errOut.String(), tc.want) {
			t.Fatalf("%s: stderr %q, want containing %q", tc.name, errOut.String(), tc.want)
		}
	}

	good := write("good.json", `{
		"epoch": 3,
		"shards": [{"name":"a","primary":"http://x","datasets":["d1","d2"]},
		           {"name":"b","primary":"http://y"}],
		"migrations": [{"id":"m1","datasets":["d2"],"from":"a","to":"b"}]
	}`)
	var out, errOut bytes.Buffer
	if code := run(context.Background(), []string{"-shard-map", good, "-validate"}, &out, &errOut); code != 0 {
		t.Fatalf("good map: exit %d\nstderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "epoch 3") || !strings.Contains(out.String(), "1 migrations") {
		t.Fatalf("good map summary: %q", out.String())
	}
}

// TestMapFileWatchReload boots the daemon with -watch-map, rewrites the
// map file with an epoch bump moving one dataset between shards, and
// watches the swap land on /v1/shardmap — the tentpole's file-driven
// reload path over real TCP. A stale rewrite (no epoch bump) must be
// refused and leave the installed epoch alone.
func TestMapFileWatchReload(t *testing.T) {
	worlds, _ := gen.ShardWorlds(gen.ShardWorldsConfig{Seed: 9, ObsPerDataset: 10})
	var urls []string
	for _, w := range worlds {
		urls = append(urls, startShard(t, w))
	}
	mapPath := writeShardMap(t, worlds, urls)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	logs := &syncBuffer{}
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{
			"-shard-map", mapPath,
			"-addr", "127.0.0.1:0",
			"-probe-interval", "-1ms",
			"-watch-map", "20ms",
		}, io.Discard, logs)
	}()

	addrRe := regexp.MustCompile(`gate serving on ([0-9.:]+)`)
	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if m := addrRe.FindStringSubmatch(logs.String()); m != nil {
			base = "http://" + m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("gate never started:\n%s", logs.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	client := &http.Client{Timeout: 5 * time.Second}
	getMap := func() (int64, map[string]string) {
		resp, err := client.Get(base + "/v1/shardmap")
		if err != nil {
			t.Fatalf("GET /v1/shardmap: %v", err)
		}
		defer resp.Body.Close()
		var m struct {
			Epoch  int64 `json:"epoch"`
			Shards []struct {
				Name     string   `json:"name"`
				Datasets []string `json:"datasets"`
			} `json:"shards"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatalf("decode shardmap: %v", err)
		}
		owners := map[string]string{}
		for _, sc := range m.Shards {
			for _, ds := range sc.Datasets {
				owners[ds] = sc.Name
			}
		}
		return m.Epoch, owners
	}

	epoch, owners := getMap()
	if epoch != 0 {
		t.Fatalf("boot epoch %d, want 0 (bare-compat file)", epoch)
	}
	moved := worlds[0].Datasets[0]
	if owners[moved] != worlds[0].Name {
		t.Fatalf("dataset %s owned by %s at boot", moved, owners[moved])
	}

	// Rewrite the file: epoch 1, the dataset moves to the second shard.
	type entry struct {
		Name     string   `json:"name"`
		Primary  string   `json:"primary"`
		Datasets []string `json:"datasets"`
	}
	build := func(epoch int64, movedTo string) []byte {
		var f struct {
			Epoch  int64   `json:"epoch"`
			Shards []entry `json:"shards"`
		}
		f.Epoch = epoch
		for i, w := range worlds {
			e := entry{Name: w.Name, Primary: urls[i]}
			for _, ds := range w.Datasets {
				if ds != moved {
					e.Datasets = append(e.Datasets, ds)
				}
			}
			if w.Name == movedTo {
				e.Datasets = append(e.Datasets, moved)
			}
			f.Shards = append(f.Shards, e)
		}
		data, err := json.MarshalIndent(f, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	if err := os.WriteFile(mapPath, build(1, worlds[1].Name), 0o644); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		epoch, owners = getMap()
		if epoch == 1 && owners[moved] == worlds[1].Name {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("watched map change never landed: epoch %d, owner %s\n%s", epoch, owners[moved], logs.String())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// A changed map WITHOUT an epoch bump is refused: the file watcher
	// logs the refusal and the installed map stays at epoch 1.
	if err := os.WriteFile(mapPath, build(1, worlds[2].Name), 0o644); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(10 * time.Second)
	for !strings.Contains(logs.String(), "refused") {
		if time.Now().After(deadline) {
			t.Fatalf("stale map rewrite never refused:\n%s", logs.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if epoch, owners = getMap(); epoch != 1 || owners[moved] != worlds[1].Name {
		t.Fatalf("stale rewrite moved the map: epoch %d, owner %s", epoch, owners[moved])
	}

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("gate exit %d\n%s", code, logs.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("gate never exited\n%s", logs.String())
	}
}
