// Command cubegate is the stateless scatter/gather router in front of a
// fleet of cubed shards. Each shard owns a disjoint set of datasets;
// the gate routes writes to the owning shard's primary, fans reads out
// to every shard, merges the answers deterministically, and degrades to
// explicit partial results ("partial": true plus the missing shard
// list) when part of the fleet is unreachable. See internal/gate for
// the routing, hedging, breaker and live-rebalance machinery.
//
// Usage:
//
//	cubegate -shard-map shards.json -addr :8081
//	cubegate -shard-map shards.json -validate        # check the map and exit
//	cubegate -shard-map shards.json -watch-map 2s -migration-state-dir /var/lib/cubegate
//
// The shard map is a JSON file, either a bare array of shard entries
// (epoch 0, no migrations) or an object with "epoch", "shards" and
// optional "migrations" keys:
//
//	{
//	  "epoch": 4,
//	  "shards": [
//	    {
//	      "name": "g0",
//	      "primary": "http://10.0.0.1:8080",
//	      "replica": "http://10.0.0.2:8080",
//	      "datasets": ["http://example.org/dataset/shard/g0/D0", "..."]
//	    }
//	  ],
//	  "migrations": [
//	    {"id": "m1", "datasets": ["..."], "from": "g0", "to": "g1"}
//	  ]
//	}
//
// The map is live: editing the file (with an epoch bump) and sending
// SIGHUP — or letting -watch-map notice the change — swaps the routing
// table atomically, and any new "migrations" entries start. Migrations
// persist their phase under -migration-state-dir and resume across
// restarts; when a migration cuts over, the gate rewrites the map file
// in place so the installed epoch survives a crash.
//
// The gate address serves the merged /v1 query API next to the usual
// observability endpoints (/metrics, /metrics.json, /debug/vars,
// /debug/pprof/) plus the gate-specific /v1/stats fleet-health view and
// the rebalance admin surface (/v1/shardmap, /v1/migrations).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"rdfcube/internal/gate"
	"rdfcube/internal/obsv"
)

func main() {
	os.Exit(run(context.Background(), os.Args[1:], os.Stdout, os.Stderr))
}

// run is the daemon body; ctx cancellation is treated like a
// termination signal (tests use it in place of SIGTERM).
func run(parent context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cubegate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		mapPath   = fs.String("shard-map", "", "JSON shard map file (required)")
		addr      = fs.String("addr", ":8081", "HTTP listen address (port 0 for ephemeral)")
		validate  = fs.Bool("validate", false, "load and validate the shard map (epoch, ownership, migrations), print a summary, and exit")
		watchMap  = fs.Duration("watch-map", 0, "poll the map file for edits at this interval (0 disables; SIGHUP always reloads)")
		stateDir  = fs.String("migration-state-dir", "", "directory for migration state files (enables crash-resumable rebalancing)")
		timeout   = fs.Duration("timeout", 5*time.Second, "per-request budget")
		shardTO   = fs.Duration("shard-timeout", 2*time.Second, "per-upstream-call budget")
		reserve   = fs.Duration("merge-reserve", 100*time.Millisecond, "budget held back for merging and rendering")
		probe     = fs.Duration("probe-interval", 2*time.Second, "shard /readyz probe interval (0 default, negative disables)")
		brkN      = fs.Int("breaker-threshold", 3, "consecutive failures before a target's breaker opens")
		brkWait   = fs.Duration("breaker-backoff", 5*time.Second, "base backoff of an open breaker")
		hedgeQ    = fs.Float64("hedge-quantile", 0.9, "primary latency quantile after which the replica is hedged")
		hedgeMin  = fs.Duration("hedge-min", 5*time.Millisecond, "hedge delay floor")
		hedgeMax  = fs.Duration("hedge-max", 250*time.Millisecond, "hedge delay ceiling (and cold-start delay)")
		retries   = fs.Int("write-retries", 3, "max write re-sends after a retryable refusal")
		retryBase = fs.Duration("retry-base", 100*time.Millisecond, "write retry backoff base")
		retryMax  = fs.Duration("max-retry-wait", 2*time.Second, "cap on one honored Retry-After hint")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	logf := func(format string, a ...any) { fmt.Fprintf(stderr, "cubegate: "+format+"\n", a...) }

	if *mapPath == "" {
		logf("-shard-map is required")
		return 2
	}
	mapFile, err := loadShardMap(*mapPath)
	if err != nil {
		logf("%v", err)
		return 2
	}
	m := mapFile.Map()

	if *validate {
		// A validation run checks everything a live swap would: map
		// structure, disjoint ownership, and every migration spec against
		// the map's current ownership. It must not probe live hosts.
		if err := gate.ValidateShardMap(m); err != nil {
			logf("%v", err)
			return 2
		}
		if err := gate.ValidateMigrations(m, mapFile.Migrations); err != nil {
			logf("%v", err)
			return 2
		}
		datasets := 0
		for _, sc := range m.Shards {
			datasets += len(sc.Datasets)
		}
		fmt.Fprintf(stdout, "shard map ok: %d shards, %d datasets, epoch %d, %d migrations\n",
			len(m.Shards), datasets, m.Epoch, len(mapFile.Migrations))
		return 0
	}

	// On every installed map change (admin POST, file reload, or a
	// migration's cutover) the file is rewritten in place, so the epoch a
	// crash interrupts is the epoch a restart boots from. The migrations
	// list rides along verbatim: completed entries are inert at the next
	// boot (their state files are terminal) until the operator prunes
	// them.
	var fileMu sync.Mutex
	rewriteMapFile := func(installed gate.ShardMap) {
		fileMu.Lock()
		defer fileMu.Unlock()
		out := gate.ShardMapFile{Epoch: installed.Epoch, Shards: installed.Shards, Migrations: mapFile.Migrations}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			logf("rewriting shard map: %v", err)
			return
		}
		tmp := *mapPath + ".tmp"
		if err := os.WriteFile(tmp, data, 0o644); err != nil {
			logf("rewriting shard map: %v", err)
			return
		}
		if err := os.Rename(tmp, *mapPath); err != nil {
			logf("rewriting shard map: %v", err)
			return
		}
		logf("shard map file rewritten at epoch %d", installed.Epoch)
	}

	col := obsv.NewCollector()
	cfg := gate.Config{
		Shards:            m.Shards,
		Epoch:             m.Epoch,
		Recorder:          col,
		RequestTimeout:    *timeout,
		ShardTimeout:      *shardTO,
		MergeReserve:      *reserve,
		ProbeInterval:     *probe,
		BreakerThreshold:  *brkN,
		BreakerBackoff:    *brkWait,
		HedgeQuantile:     *hedgeQ,
		HedgeMin:          *hedgeMin,
		HedgeMax:          *hedgeMax,
		WriteRetries:      *retries,
		WriteRetryBase:    *retryBase,
		MaxRetryWait:      *retryMax,
		MigrationStateDir: *stateDir,
		OnMapChange:       rewriteMapFile,
		Logf:              logf,
	}
	g, err := gate.New(cfg)
	if err != nil {
		logf("%v", err)
		return 2
	}
	defer g.Close()

	// Boot-time rebalance recovery: interrupted migrations resume first
	// (their persisted phase wins), then the file's specs start. A spec
	// whose migration already ran — resumed above, or terminal in the
	// state dir — answers ErrMigrationExists and is skipped quietly.
	startFileMigrations := func(migs []gate.MigrationSpec) {
		for _, spec := range migs {
			switch _, err := g.StartMigration(spec); {
			case err == nil:
				logf("migration %s started (%d datasets, %s -> %s)", spec.ID, len(spec.Datasets), spec.From, spec.To)
			case errors.Is(err, gate.ErrMigrationExists):
				// already running or already finished; nothing to do
			default:
				logf("migration %s not started: %v", spec.ID, err)
			}
		}
	}
	if resumed, err := g.ResumeMigrations(); err != nil {
		logf("resuming migrations: %v", err)
	} else if len(resumed) > 0 {
		logf("resumed %d interrupted migrations", len(resumed))
	}
	startFileMigrations(mapFile.Migrations)

	ctx, stop := signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Live map reload: SIGHUP always; -watch-map additionally polls the
	// file's mtime. A reload validates and swaps atomically — a stale
	// epoch or overlapping ownership is logged and refused, and the
	// running table is untouched. Re-reading the file the gate itself
	// just rewrote swaps an identical map, which is a silent no-op.
	reload := func(why string) {
		fileMu.Lock()
		f, err := loadShardMap(*mapPath)
		if err == nil {
			mapFile.Migrations = f.Migrations
		}
		fileMu.Unlock()
		if err != nil {
			logf("map reload (%s): %v", why, err)
			return
		}
		if err := g.SwapMap(f.Map()); err != nil {
			logf("map reload (%s): refused: %v", why, err)
			return
		}
		startFileMigrations(f.Migrations)
	}
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	watcherDone := make(chan struct{})
	go func() {
		defer close(watcherDone)
		var tick <-chan time.Time
		if *watchMap > 0 {
			t := time.NewTicker(*watchMap)
			defer t.Stop()
			tick = t.C
		}
		lastStat := statKey(*mapPath)
		for {
			select {
			case <-ctx.Done():
				return
			case <-hup:
				lastStat = statKey(*mapPath)
				reload("SIGHUP")
			case <-tick:
				if now := statKey(*mapPath); now != lastStat {
					lastStat = now
					reload("file changed")
				}
			}
		}
	}()

	mux := http.NewServeMux()
	mux.Handle("/", g.Handler())
	obsHandler := obsv.Handler(col)
	mux.Handle("/metrics", obsHandler)
	mux.Handle("/metrics.json", obsHandler)
	mux.Handle("/debug/", obsHandler)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logf("listen: %v", err)
		return 1
	}
	httpSrv := &http.Server{Handler: mux}
	go func() { _ = httpSrv.Serve(ln) }()
	logf("gate serving on %s (%d shards, epoch %d)", ln.Addr(), len(m.Shards), g.Epoch())

	<-ctx.Done()
	stop()
	logf("shutting down, draining in-flight requests")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		logf("shutdown: %v", err)
	}
	<-watcherDone
	logf("bye")
	return 0
}

// statKey summarizes a file's identity for cheap change polling.
func statKey(path string) string {
	fi, err := os.Stat(path)
	if err != nil {
		return "err:" + err.Error()
	}
	return fmt.Sprintf("%d/%d", fi.ModTime().UnixNano(), fi.Size())
}

// loadShardMap reads a shard-map file: either a bare JSON array of
// shard entries (epoch 0, no migrations) or an object wrapping them
// under "shards" with optional "epoch" and "migrations".
func loadShardMap(path string) (gate.ShardMapFile, error) {
	var f gate.ShardMapFile
	data, err := os.ReadFile(path)
	if err != nil {
		return f, fmt.Errorf("reading shard map: %w", err)
	}
	if err := json.Unmarshal(data, &f); err == nil && len(f.Shards) > 0 {
		return f, nil
	}
	var bare []gate.ShardConfig
	if err := json.Unmarshal(data, &bare); err != nil {
		return f, fmt.Errorf("shard map %s: want a JSON array of shards or {\"shards\": [...]}: %w", path, err)
	}
	return gate.ShardMapFile{Shards: bare}, nil
}
