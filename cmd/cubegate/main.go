// Command cubegate is the stateless scatter/gather router in front of a
// fleet of cubed shards. Each shard owns a disjoint set of datasets;
// the gate routes writes to the owning shard's primary, fans reads out
// to every shard, merges the answers deterministically, and degrades to
// explicit partial results ("partial": true plus the missing shard
// list) when part of the fleet is unreachable. See internal/gate for
// the routing, hedging and breaker machinery.
//
// Usage:
//
//	cubegate -shard-map shards.json -addr :8081
//	cubegate -shard-map shards.json -validate        # check the map and exit
//
// The shard map is a JSON file, either a bare array of shard entries or
// an object with a "shards" key:
//
//	{
//	  "shards": [
//	    {
//	      "name": "g0",
//	      "primary": "http://10.0.0.1:8080",
//	      "replica": "http://10.0.0.2:8080",
//	      "datasets": ["http://example.org/dataset/shard/g0/D0", "..."]
//	    }
//	  ]
//	}
//
// The gate address serves the merged /v1 query API next to the usual
// observability endpoints (/metrics, /metrics.json, /debug/vars,
// /debug/pprof/) plus the gate-specific /v1/stats fleet-health view.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rdfcube/internal/gate"
	"rdfcube/internal/obsv"
)

func main() {
	os.Exit(run(context.Background(), os.Args[1:], os.Stdout, os.Stderr))
}

// run is the daemon body; ctx cancellation is treated like a
// termination signal (tests use it in place of SIGTERM).
func run(parent context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cubegate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		mapPath   = fs.String("shard-map", "", "JSON shard map file (required)")
		addr      = fs.String("addr", ":8081", "HTTP listen address (port 0 for ephemeral)")
		validate  = fs.Bool("validate", false, "load and validate the shard map, print a summary, and exit")
		timeout   = fs.Duration("timeout", 5*time.Second, "per-request budget")
		shardTO   = fs.Duration("shard-timeout", 2*time.Second, "per-upstream-call budget")
		reserve   = fs.Duration("merge-reserve", 100*time.Millisecond, "budget held back for merging and rendering")
		probe     = fs.Duration("probe-interval", 2*time.Second, "shard /readyz probe interval (0 default, negative disables)")
		brkN      = fs.Int("breaker-threshold", 3, "consecutive failures before a target's breaker opens")
		brkWait   = fs.Duration("breaker-backoff", 5*time.Second, "base backoff of an open breaker")
		hedgeQ    = fs.Float64("hedge-quantile", 0.9, "primary latency quantile after which the replica is hedged")
		hedgeMin  = fs.Duration("hedge-min", 5*time.Millisecond, "hedge delay floor")
		hedgeMax  = fs.Duration("hedge-max", 250*time.Millisecond, "hedge delay ceiling (and cold-start delay)")
		retries   = fs.Int("write-retries", 3, "max write re-sends after a retryable refusal")
		retryBase = fs.Duration("retry-base", 100*time.Millisecond, "write retry backoff base")
		retryMax  = fs.Duration("max-retry-wait", 2*time.Second, "cap on one honored Retry-After hint")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	logf := func(format string, a ...any) { fmt.Fprintf(stderr, "cubegate: "+format+"\n", a...) }

	if *mapPath == "" {
		logf("-shard-map is required")
		return 2
	}
	shards, err := loadShardMap(*mapPath)
	if err != nil {
		logf("%v", err)
		return 2
	}

	col := obsv.NewCollector()
	cfg := gate.Config{
		Shards:           shards,
		Recorder:         col,
		RequestTimeout:   *timeout,
		ShardTimeout:     *shardTO,
		MergeReserve:     *reserve,
		ProbeInterval:    *probe,
		BreakerThreshold: *brkN,
		BreakerBackoff:   *brkWait,
		HedgeQuantile:    *hedgeQ,
		HedgeMin:         *hedgeMin,
		HedgeMax:         *hedgeMax,
		WriteRetries:     *retries,
		WriteRetryBase:   *retryBase,
		MaxRetryWait:     *retryMax,
		Logf:             logf,
	}
	if *validate {
		cfg.ProbeInterval = -1 // a validation run must not probe live hosts
	}
	g, err := gate.New(cfg)
	if err != nil {
		logf("%v", err)
		return 2
	}
	defer g.Close()

	if *validate {
		datasets := 0
		for _, sc := range shards {
			datasets += len(sc.Datasets)
		}
		fmt.Fprintf(stdout, "shard map ok: %d shards, %d datasets\n", len(shards), datasets)
		return 0
	}

	ctx, stop := signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
	defer stop()

	mux := http.NewServeMux()
	mux.Handle("/", g.Handler())
	obsHandler := obsv.Handler(col)
	mux.Handle("/metrics", obsHandler)
	mux.Handle("/metrics.json", obsHandler)
	mux.Handle("/debug/", obsHandler)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logf("listen: %v", err)
		return 1
	}
	httpSrv := &http.Server{Handler: mux}
	go func() { _ = httpSrv.Serve(ln) }()
	logf("gate serving on %s (%d shards)", ln.Addr(), len(shards))

	<-ctx.Done()
	stop()
	logf("shutting down, draining in-flight requests")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		logf("shutdown: %v", err)
	}
	logf("bye")
	return 0
}

// loadShardMap reads a shard-map file: either a bare JSON array of
// shard entries or an object wrapping them under "shards".
func loadShardMap(path string) ([]gate.ShardConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading shard map: %w", err)
	}
	var wrapped struct {
		Shards []gate.ShardConfig `json:"shards"`
	}
	if err := json.Unmarshal(data, &wrapped); err == nil && len(wrapped.Shards) > 0 {
		return wrapped.Shards, nil
	}
	var bare []gate.ShardConfig
	if err := json.Unmarshal(data, &bare); err != nil {
		return nil, fmt.Errorf("shard map %s: want a JSON array of shards or {\"shards\": [...]}: %w", path, err)
	}
	return bare, nil
}
