// Command cubeload drives a relationship-serving server with
// deterministic, corpus-derived traffic and reports latency quantiles,
// goodput and shed rates. With -baseline-out / -compare it writes and
// gates against a committed LOAD_*.json, giving CI an end-to-end
// serving-path SLO check alongside cubebench's kernel gate.
//
// Usage:
//
//	cubeload                                   # in-process run, defaults
//	cubeload -gen realworld -n 2000 -mix mixed -requests 4000 -concurrency 8
//	cubeload -mix storm -rps 500               # open-loop pacing
//	cubeload -url http://127.0.0.1:8080        # drive a running cubed
//	cubeload -baseline-out LOAD_0.json         # record the baseline
//	cubeload -compare LOAD_0.json              # replay it; exit 1 on regression
//
// A -compare run rebuilds the workload from the baseline file (generator,
// seed, mix, request count, concurrency), so the flags cannot drift from
// what the baseline measured; the plan digest in the report proves both
// runs issued byte-identical request sequences.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"strings"

	"rdfcube/internal/core"
	"rdfcube/internal/gen"
	"rdfcube/internal/loadgen"
	"rdfcube/internal/obsv"
	"rdfcube/internal/qb"
	"rdfcube/internal/serve"
	"rdfcube/internal/sigctx"
	"rdfcube/internal/snapshot"
)

func main() {
	var (
		genName     = flag.String("gen", "realworld", "corpus generator: realworld or paper")
		n           = flag.Int("n", 2000, "realworld corpus observation count")
		seed        = flag.Int64("seed", 1, "corpus and plan seed")
		mix         = flag.String("mix", "mixed", "traffic mix: "+strings.Join(loadgen.Mixes(), ", "))
		requests    = flag.Int("requests", 4000, "plan length")
		concurrency = flag.Int("concurrency", 8, "closed-loop workers / open-loop in-flight cap")
		rps         = flag.Float64("rps", 0, "open-loop request rate (0 = closed loop)")
		url         = flag.String("url", "", "drive a running server instead of in-process; a comma-separated list round-robins reads across all targets and sends writes to the first (the leader)")
		baselineOut = flag.String("baseline-out", "", "write the run's LOAD_*.json report to this path")
		compare     = flag.String("compare", "", "compare against this committed LOAD_*.json (workload is taken from the file); exit 1 on regression")
		jsonOut     = flag.String("json", "", "also write the report JSON to this path")
		note        = flag.String("note", "", "provenance note recorded in the report")
		p99Frac     = flag.Float64("p99-tolerance", 0.75, "allowed fractional p99 increase for -compare, after calibration normalization")
		injectDelay = flag.Duration("inject-delay", 0, "artificial added delay per request (validates that the gate catches a slowdown)")
		retry       = flag.Bool("retry", false, "polite-client mode: retry 429/503 with backoff, honoring Retry-After; latency then covers the whole exchange")
	)
	flag.Parse()

	ctx, stop := sigctx.Install(context.Background(), nil, os.Exit)
	defer stop()

	cfg := loadgen.PlanConfig{Gen: *genName, N: *n, Seed: *seed, Mix: *mix, Requests: *requests}
	opts := loadgen.Options{Concurrency: *concurrency, RPS: *rps, InjectDelay: *injectDelay, Retry: *retry}

	var base *loadgen.LoadReport
	if *compare != "" {
		var err error
		base, err = loadgen.ReadReport(*compare)
		if err != nil {
			fatal("read baseline: %v", err)
		}
		// The baseline defines the workload; flags must not drift from it.
		cfg = base.Config
		opts.Concurrency = base.Concurrency
		opts.RPS = base.RPS
	}

	corpus := buildCorpus(cfg)
	plan, err := loadgen.BuildPlan(cfg, corpus)
	if err != nil {
		fatal("%v", err)
	}

	if *url != "" {
		opts.Transport = http.DefaultTransport
		var targets []string
		for _, t := range strings.Split(*url, ",") {
			if t = strings.TrimRight(strings.TrimSpace(t), "/"); t != "" {
				targets = append(targets, t)
			}
		}
		if len(targets) == 0 {
			fatal("-url has no usable targets: %q", *url)
		}
		opts.BaseURL = targets[0]
		if len(targets) > 1 {
			opts.BaseURLs = targets
		}
	} else {
		srv := buildServer(corpus, cfg)
		opts.Transport = loadgen.HandlerTransport{H: srv.Handler()}
		defer srv.BeginShutdown()
	}

	stats, err := loadgen.Run(ctx, plan, opts)
	if err != nil {
		fatal("%v", err)
	}
	rep := loadgen.NewReport(plan, opts, stats, *note)
	fmt.Print(rep.Text())

	for _, path := range []string{*baselineOut, *jsonOut} {
		if path == "" {
			continue
		}
		if err := rep.WriteFile(path); err != nil {
			fatal("write %s: %v", path, err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}

	if base != nil {
		regs := loadgen.Compare(base, rep, loadgen.Tolerance{P99Frac: *p99Frac})
		if len(regs) > 0 {
			fmt.Fprintf(os.Stderr, "\nLOAD REGRESSIONS vs %s:\n", *compare)
			for _, r := range regs {
				fmt.Fprintf(os.Stderr, "  %s\n", r)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "no regressions vs %s\n", *compare)
	}
}

// buildCorpus generates the workload corpus named by the config.
func buildCorpus(cfg loadgen.PlanConfig) *qb.Corpus {
	switch cfg.Gen {
	case "paper":
		return gen.PaperExample()
	case "realworld", "":
		return gen.RealWorld(gen.RealWorldConfig{TotalObs: cfg.N, Seed: cfg.Seed})
	default:
		fatal("unknown generator %q (use realworld or paper)", cfg.Gen)
		return nil
	}
}

// buildServer computes the relationship state over the corpus and wraps
// it in an in-process serve.Server with a Collector recorder, mirroring
// what cubed serves (minus the WAL: a load run's inserts are ephemeral).
func buildServer(corpus *qb.Corpus, cfg loadgen.PlanConfig) *serve.Server {
	s, err := core.NewSpace(corpus)
	if err != nil {
		fatal("NewSpace: %v", err)
	}
	res := core.NewResult()
	l := core.CubeMasking(s, core.TaskAll, res, core.CubeMaskOptions{})
	res.Sort()
	srv, err := serve.New(snapshot.New(s, res, l), serve.Config{
		Recorder: obsv.NewCollector(),
		Workers:  runtime.GOMAXPROCS(0),
	})
	if err != nil {
		fatal("serve.New: %v", err)
	}
	return srv
}

func fatal(format string, a ...any) {
	fmt.Fprintf(os.Stderr, "cubeload: "+format+"\n", a...)
	os.Exit(1)
}
