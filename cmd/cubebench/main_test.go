package main

import "testing"

func TestParseSizes(t *testing.T) {
	got := parseSizes("100, 200,300")
	if len(got) != 3 || got[0] != 100 || got[2] != 300 {
		t.Errorf("parseSizes: %v", got)
	}
	if parseSizes("") != nil {
		t.Errorf("empty input must be nil")
	}
}
