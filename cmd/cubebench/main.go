// Command cubebench regenerates the paper's evaluation artefacts: every
// series of Figure 5 (a–g), the Table 4 dataset manifest, and the
// extension ablations. Output is an aligned text table per figure, plus
// optional CSV dumps for plotting.
//
// Usage:
//
//	cubebench -fig all
//	cubebench -fig 5a,5f -sizes 2000,4000,8000 -seed 7
//	cubebench -fig 5e -synthetic-sizes 10000,100000,1000000 -baseline-cap 50000
//	cubebench -fig all -csv results/ -json results/
//	cubebench -fig ext -progress -metrics -debug-addr localhost:6060
//
// The defaults run at laptop scale; the paper's published scale is
// -sizes 2000,20000,40000,...,100000 -synthetic-sizes ...,2500000.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"rdfcube/internal/bench"
	"rdfcube/internal/core"
	"rdfcube/internal/obsv"
	"rdfcube/internal/sigctx"
)

func main() {
	var (
		figs      = flag.String("fig", "all", "comma-separated figures: 5a,5b,5c,5d,5e,5f,5g,ext,sparse,table4 or all")
		sizes     = flag.String("sizes", "", "real-world input sizes, e.g. 2000,4000,8000")
		synSizes  = flag.String("synthetic-sizes", "", "synthetic input sizes for 5e")
		seed      = flag.Int64("seed", 1, "generator and clustering seed")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-run comparator timeout")
		compCap   = flag.Int("comparator-cap", 4000, "largest size at which SPARQL/rules are attempted")
		oomCap    = flag.Int("rules-oom-cap", 4000, "size beyond which rules rows are marked o/m")
		baseCap   = flag.Int("baseline-cap", 50000, "largest synthetic size for the measured baseline in 5e")
		workers   = flag.Int("workers", 0, "parallel extension worker count (0 = GOMAXPROCS)")
		csvDir    = flag.String("csv", "", "directory to write per-figure CSV files into")
		jsonDir   = flag.String("json", "", "directory to write per-figure JSON files into (counters included in full)")
		table4Obs = flag.Int("table4-obs", 246500, "total observations for the Table 4 manifest")

		benchOut    = flag.String("baseline-out", "", "run the perf-regression suite and write its BENCH_*.json report to this path (skips the figure sweeps)")
		benchCmp    = flag.String("compare", "", "run the perf-regression suite and compare against this committed BENCH_*.json; exit 1 on regression")
		nsTolerance = flag.Float64("ns-tolerance", 0.15, "allowed fractional ns/op increase for -compare, after calibration normalization")
		minScaling  = flag.Float64("min-scaling", 2.5, "parallel pairs/sec scaling floor at full capacity for -compare (capacity-normalized; negative disables)")
		allowProcs  = flag.Bool("allow-procs-mismatch", false, "compare against a baseline recorded at a different GOMAXPROCS anyway (warns instead of refusing)")
		benchTime   = flag.Duration("bench-time", 500*time.Millisecond, "minimum measuring time per regression-suite entry")
		benchNote   = flag.String("bench-note", "", "provenance note recorded in the -baseline-out report")

		metrics   = flag.Bool("metrics", false, "print the suite-wide run report (phase tree + counter table) to stderr at the end")
		progress  = flag.Bool("progress", false, "stream phase transitions and counter digests to stderr while running")
		debugAddr = flag.String("debug-addr", "", "serve live /metrics, /metrics.json, /debug/vars and /debug/pprof/ on this address for the duration of the suite")
	)
	flag.Parse()

	if *benchOut != "" || *benchCmp != "" {
		runRegression(regressArgs{
			outPath: *benchOut, cmpPath: *benchCmp,
			nsTol: *nsTolerance, minScaling: *minScaling, allowProcs: *allowProcs,
			benchTime: *benchTime, note: *benchNote, seed: *seed, workers: *workers,
		})
		return
	}

	var col *obsv.Collector
	if *metrics || *debugAddr != "" {
		col = obsv.NewCollector()
	}
	var rec obsv.Recorder
	if col != nil {
		rec = col
	}
	if *progress {
		rec = obsv.Multi(rec, obsv.NewProgress(os.Stderr))
	}
	if *debugAddr != "" {
		srv, url, err := obsv.StartDebugServer(*debugAddr, col)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cubebench: debug server: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "cubebench: debug server listening at %s (metrics at %s/metrics, profiles at %s/debug/pprof/)\n", url, url, url)
	}

	// Two-stage interrupt: the first ^C cancels the sweep cooperatively
	// (completed figures stay printed, the in-flight run aborts at its
	// next pair-budget poll); a second ^C force-quits.
	ctx, stopSig := sigctx.Install(context.Background(), func(second bool) {
		if second {
			fmt.Fprintln(os.Stderr, "cubebench: second interrupt, exiting now")
			return
		}
		fmt.Fprintln(os.Stderr, "cubebench: interrupt: canceling the sweep after the current poll; interrupt again to force-quit")
	}, nil)
	defer stopSig()

	cfg := bench.Config{
		Sizes:          parseSizes(*sizes),
		SyntheticSizes: parseSizes(*synSizes),
		Seed:           *seed,
		Timeout:        *timeout,
		ComparatorCap:  *compCap,
		RulesOOMCap:    *oomCap,
		BaselineCap:    *baseCap,
		Workers:        *workers,
		Obs:            rec,
		Ctx:            ctx,
	}

	want := map[string]bool{}
	for _, f := range strings.Split(*figs, ",") {
		want[strings.TrimSpace(f)] = true
	}
	all := want["all"]

	type figure struct {
		id    string
		title string
		run   func(bench.Config) (bench.Series, error)
	}
	figures := []figure{
		{"5a", "Figure 5(a): execution time — complementarity", bench.Fig5a},
		{"5b", "Figure 5(b): execution time — full containment", bench.Fig5b},
		{"5c", "Figure 5(c): execution time — partial containment (SPARQL detects only)", bench.Fig5c},
		{"5d", "Figure 5(d): clustering recall (canopy / hierarchical / x-means)", bench.Fig5d},
		{"5e", "Figure 5(e): log-log scalability on the synthetic workload (* = projected)", bench.Fig5e},
		{"5f", "Figure 5(f): discovered cubes per input size", bench.Fig5f},
		{"5g", "Figure 5(g): children pre-fetching vs normal (full containment)", bench.Fig5g},
		{"ext", "Extensions: cubeMasking vs hybrid vs parallel (full containment)", bench.Extensions},
		{"sparse", "Ablation: packed vs sparse occurrence matrix (full containment)", bench.SparseAblation},
	}

	if all || want["table4"] {
		fmt.Println("Table 4: generated dataset manifest (replica of the published datasets)")
		fmt.Println(bench.TableFourManifest(*table4Obs, *seed))
	}

	for _, f := range figures {
		if !all && !want[f.id] {
			continue
		}
		series, err := f.run(cfg)
		if err != nil {
			if errors.Is(err, core.ErrCanceled) {
				fmt.Fprintf(os.Stderr, "cubebench: %s: canceled (%v); figures completed before the interrupt were printed above\n", f.id, err)
				os.Exit(sigctx.ExitCodeInterrupted)
			}
			fmt.Fprintf(os.Stderr, "cubebench: %s: %v\n", f.id, err)
			os.Exit(1)
		}
		fmt.Println(series.Table(f.title))
		if f.id == "5d" {
			fmt.Println(recallTable(series))
		}
		if f.id == "5f" {
			fmt.Println(cubeTable(series))
		}
		if f.id == "5g" {
			fmt.Println(ratioTable(series))
		}
		if f.id == "sparse" {
			fmt.Println(bytesTable(series))
		}
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "cubebench: %v\n", err)
				os.Exit(1)
			}
			path := filepath.Join(*csvDir, "fig"+f.id+".csv")
			if err := os.WriteFile(path, []byte(series.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "cubebench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
		if *jsonDir != "" {
			if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "cubebench: %v\n", err)
				os.Exit(1)
			}
			data, err := series.JSON()
			if err != nil {
				fmt.Fprintf(os.Stderr, "cubebench: %s: %v\n", f.id, err)
				os.Exit(1)
			}
			path := filepath.Join(*jsonDir, "fig"+f.id+".json")
			if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "cubebench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}

	if *metrics {
		fmt.Fprint(os.Stderr, col.Report())
	}
}

// regressArgs carries the -baseline-out/-compare flag set.
type regressArgs struct {
	outPath, cmpPath  string
	nsTol, minScaling float64
	allowProcs        bool
	benchTime         time.Duration
	note              string
	seed              int64
	workers           int
}

// runRegression drives the perf-regression harness: measure the suite,
// then write a fresh baseline (-baseline-out), diff against a committed
// one (-compare), or both. Regressions exit 1 with one line each. A
// baseline recorded at a different GOMAXPROCS is refused before any diff
// runs — its parallel entries measured a different configuration, so the
// comparison would gate noise — unless -allow-procs-mismatch downgrades
// the refusal to a warning.
func runRegression(a regressArgs) {
	cfg := bench.RegressConfig{Seed: a.seed, Workers: a.workers, BenchTime: a.benchTime, Note: a.note}
	rep, err := bench.RunRegression(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cubebench: regression suite: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(rep.Text())
	if a.outPath != "" {
		if err := rep.WriteFile(a.outPath); err != nil {
			fmt.Fprintf(os.Stderr, "cubebench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", a.outPath)
	}
	if a.cmpPath != "" {
		base, err := bench.ReadBenchReport(a.cmpPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cubebench: %v\n", err)
			os.Exit(1)
		}
		if err := bench.CheckProcs(base, rep); err != nil {
			if !a.allowProcs {
				fmt.Fprintf(os.Stderr, "cubebench: %v (pass -allow-procs-mismatch to compare anyway)\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "cubebench: warning: %v; comparing anyway (-allow-procs-mismatch)\n", err)
		}
		regs := bench.Compare(base, rep, bench.Tolerance{NsFrac: a.nsTol, MinScaling: a.minScaling})
		if len(regs) > 0 {
			fmt.Fprintf(os.Stderr, "cubebench: %d regression(s) against %s:\n", len(regs), a.cmpPath)
			for _, r := range regs {
				fmt.Fprintf(os.Stderr, "  %s\n", r)
			}
			os.Exit(1)
		}
		fmt.Printf("no regressions against %s (ns tolerance %.0f%%, allocs strict, scaling floor %.2fx at full capacity)\n",
			a.cmpPath, a.nsTol*100, a.minScaling)
	}
}

func parseSizes(s string) []int {
	if s == "" {
		return nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "cubebench: bad size %q\n", part)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}

func recallTable(s bench.Series) string {
	var b strings.Builder
	b.WriteString("recall by method and size:\n")
	fmt.Fprintf(&b, "%-14s %-10s %s\n", "method", "size", "recall")
	for _, m := range s {
		fmt.Fprintf(&b, "%-14s %-10d %.4f\n", m.Approach, m.Size, m.Extra["recall"])
	}
	return b.String()
}

func cubeTable(s bench.Series) string {
	var b strings.Builder
	b.WriteString("cubes and cubes/observation ratio:\n")
	fmt.Fprintf(&b, "%-10s %-10s %s\n", "size", "cubes", "ratio")
	for _, m := range s {
		fmt.Fprintf(&b, "%-10d %-10.0f %.5f\n", m.Size, m.Extra["cubes"], m.Extra["ratio"])
	}
	return b.String()
}

func bytesTable(s bench.Series) string {
	var b strings.Builder
	b.WriteString("occurrence-matrix row storage (bytes):\n")
	fmt.Fprintf(&b, "%-10s %-10s %s\n", "size", "variant", "rowBytes")
	for _, m := range s {
		fmt.Fprintf(&b, "%-10d %-10s %.0f\n", m.Size, m.Approach, m.Extra["rowBytes"])
	}
	return b.String()
}

func ratioTable(s bench.Series) string {
	var b strings.Builder
	b.WriteString("prefetch/normal execution-time ratio:\n")
	fmt.Fprintf(&b, "%-10s %s\n", "size", "ratio")
	for _, m := range s {
		if m.Approach == "prefetch" {
			fmt.Fprintf(&b, "%-10d %.3f\n", m.Size, m.Extra["ratio"])
		}
	}
	return b.String()
}
