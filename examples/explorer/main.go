// Explorer demonstrates online exploration over materialized relationships
// — the paper's §1 motivation that "materialization of these relationships
// helps speed up online exploration" and "quantif[ies] the degree of
// relatedness between data sources".
//
// It builds the Table-4 replica, materializes the relationship index, and
// then (a) navigates the containment DAG from a skyline point downwards,
// and (b) prints the dataset-pair relatedness ranking that tells the
// analyst which sources combine best.
//
// Run with: go run ./examples/explorer
package main

import (
	"fmt"
	"log"

	rdfcube "rdfcube"
	"rdfcube/internal/core"
)

func main() {
	corpus := rdfcube.GenerateRealWorld(2500, 7)
	space, err := rdfcube.Compile(corpus)
	if err != nil {
		log.Fatal(err)
	}
	ix, err := core.BuildIndex(space, core.AlgorithmCubeMasking, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	st := ix.Stats()
	fmt.Printf("index over %d observations: %d full, %d partial, %d complementary pairs; skyline %d\n\n",
		st.Observations, st.FullPairs, st.PartialPairs, st.ComplPairs, st.SkylineSize)

	describe := func(i int) string {
		o := space.Obs[i]
		out := fmt.Sprintf("%-14s", o.URI.Local())
		for _, d := range o.Dataset.Schema.Dimensions {
			out += " " + o.Value(d).Local()
		}
		return out
	}

	// (a) navigate: find a top-level observation with details below it and
	// drill down two levels.
	start := -1
	for _, i := range ix.TopLevel() {
		if len(ix.DrillDown(i)) > 0 {
			start = i
			break
		}
	}
	if start < 0 {
		fmt.Println("no navigable skyline point in this sample; rerun with another seed")
	} else {
		fmt.Println("drill-down from a skyline observation:")
		fmt.Println("  " + describe(start))
		for li, level := 0, ix.DrillDown(start); li < 2 && len(level) > 0; li++ {
			next := []int{}
			for n, j := range level {
				if n >= 3 {
					fmt.Printf("  %s ... (%d more)\n", indent(li+1), len(level)-n)
					break
				}
				fmt.Println("  " + indent(li+1) + describe(j))
				next = append(next, ix.DrillDown(j)...)
			}
			level = next
		}
	}

	// (b) source relatedness: which dataset pairs combine best?
	res := core.NewResult()
	core.CubeMasking(space, core.TaskAll, res, core.CubeMaskOptions{})
	rel := core.ComputeRelatedness(space, res)
	fmt.Println("\nmost related dataset pairs (normalized score):")
	for i, e := range rel.MostRelated() {
		if i >= 6 {
			break
		}
		fmt.Println("  " + e.String())
	}
	fmt.Println("\nrelatedness score matrix:")
	fmt.Print(rel.Table())
}

func indent(n int) string {
	out := ""
	for i := 0; i < n; i++ {
		out += "    "
	}
	return out
}
