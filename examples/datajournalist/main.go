// Datajournalist reproduces the paper's motivating scenario (§1, Figures
// 2 and 3): a journalist collects three multidimensional datasets from
// different sources — populations, unemployment+poverty, unemployment —
// and wants to know how their observations relate before combining them.
//
// The program computes the relationships over the paper's running example
// and prints the derived containment/complementarity table of Figure 3.
//
// Run with: go run ./examples/datajournalist
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	rdfcube "rdfcube"
)

func main() {
	corpus := rdfcube.ExampleCorpus()

	fmt.Println("Input: 3 datasets from different sources")
	for _, ds := range corpus.Datasets {
		var measures []string
		for _, m := range ds.Schema.Measures {
			measures = append(measures, m.Local())
		}
		fmt.Printf("  %s: %d observations, measures: %s\n",
			ds.URI.Local(), len(ds.Observations), strings.Join(measures, ", "))
	}

	comp, err := rdfcube.Compute(corpus, rdfcube.CubeMasking, rdfcube.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Rebuild Figure 3: per observation, the observations it fully
	// contains and the ones it complements.
	containedBy := map[int][]int{}
	for _, p := range comp.Result.FullSet {
		containedBy[p.A] = append(containedBy[p.A], p.B)
	}
	complements := map[int][]int{}
	for _, p := range comp.Result.ComplSet {
		complements[p.A] = append(complements[p.A], p.B)
		complements[p.B] = append(complements[p.B], p.A)
	}

	describe := func(i int) string {
		o := comp.Obs(i)
		var cells []string
		for _, d := range o.Dataset.Schema.Dimensions {
			cells = append(cells, fmt.Sprintf("%s=%s", d.Local(), o.Value(d).Local()))
		}
		for _, m := range o.Dataset.Schema.Measures {
			v := o.Measure(m)
			cells = append(cells, fmt.Sprintf("%s=%s", m.Local(), v.Value))
		}
		return fmt.Sprintf("%-4s %s", o.URI.Local(), strings.Join(cells, "  "))
	}

	fmt.Println("\nDerived relationships (the paper's Figure 3):")
	keys := make([]int, 0, len(containedBy))
	for k := range containedBy {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, a := range keys {
		fmt.Println(describe(a))
		fmt.Println("  contains:")
		for _, b := range containedBy[a] {
			fmt.Println("    " + describe(b))
		}
	}
	ckeys := make([]int, 0, len(complements))
	for k := range complements {
		ckeys = append(ckeys, k)
	}
	sort.Ints(ckeys)
	seen := map[int]bool{}
	for _, a := range ckeys {
		if seen[a] {
			continue
		}
		fmt.Println(describe(a))
		fmt.Println("  complements:")
		for _, b := range complements[a] {
			seen[b] = true
			fmt.Println("    " + describe(b))
		}
	}

	// The journalist's pay-off: combinable pairs can be merged into one
	// table row; containment tells which observations are roll-ups of
	// which, enabling drill-down navigation across sources.
	fmt.Println("\nInterpretation:")
	fmt.Println("  - complementary pairs measure different facts about the same point")
	fmt.Println("    and can be joined into a single row (e.g. population + unemployment).")
	fmt.Println("  - containment pairs relate aggregates to their details across sources,")
	fmt.Println("    so a roll-up on the detailed cube becomes comparable with the coarse one.")
}
