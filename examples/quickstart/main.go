// Quickstart: build two small statistical datasets over a shared
// geography hierarchy, compute all containment and complementarity
// relationships with cubeMasking, and print them.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	rdfcube "rdfcube"
)

func main() {
	// 1. A shared hierarchical code list for the geography dimension:
	//    World → Europe → {Greece → Athens, Italy → Rome}.
	geo := rdfcube.NewIRI("http://stats.example/dim/geo")
	year := rdfcube.NewIRI("http://stats.example/dim/year")

	code := func(s string) rdfcube.Term { return rdfcube.NewIRI("http://stats.example/code/" + s) }
	geoList := rdfcube.NewCodeList(geo, code("World"))
	geoList.Add(code("Europe"), code("World"))
	geoList.Add(code("Greece"), code("Europe"))
	geoList.Add(code("Italy"), code("Europe"))
	geoList.Add(code("Athens"), code("Greece"))
	geoList.Add(code("Rome"), code("Italy"))
	geoList.MustSeal()

	yearList := rdfcube.NewCodeList(year, code("AllYears"))
	yearList.Add(code("Y2014"), code("AllYears"))
	yearList.Add(code("Y2015"), code("AllYears"))
	yearList.MustSeal()

	reg := rdfcube.NewRegistry()
	reg.Register(geoList)
	reg.Register(yearList)

	// 2. Two datasets sharing the dimensions: one measures population,
	//    the other unemployment.
	pop := rdfcube.NewIRI("http://stats.example/measure/population")
	unemp := rdfcube.NewIRI("http://stats.example/measure/unemployment")

	corpus := rdfcube.NewCorpus(reg)
	popDS := &rdfcube.Dataset{
		URI:    rdfcube.NewIRI("http://stats.example/dataset/pop"),
		Schema: rdfcube.NewSchema([]rdfcube.Term{geo, year}, []rdfcube.Term{pop}),
	}
	unempDS := &rdfcube.Dataset{
		URI:    rdfcube.NewIRI("http://stats.example/dataset/unemp"),
		Schema: rdfcube.NewSchema([]rdfcube.Term{geo, year}, []rdfcube.Term{unemp}),
	}

	obs := func(ds *rdfcube.Dataset, name string, g, y rdfcube.Term, v int64) {
		_, err := ds.AddObservation(
			rdfcube.NewIRI("http://stats.example/obs/"+name),
			[]rdfcube.Term{g, y}, // aligned with the schema's sorted dimensions
			[]rdfcube.Term{rdfcube.NewInteger(v)},
		)
		if err != nil {
			log.Fatal(err)
		}
	}
	// Note: NewSchema sorts dimensions by IRI; here geo < year.
	obs(popDS, "popGreece2015", code("Greece"), code("Y2015"), 10_800_000)
	obs(popDS, "popAthens2015", code("Athens"), code("Y2015"), 3_090_000)
	obs(popDS, "popItaly2014", code("Italy"), code("Y2014"), 60_700_000)
	obs(unempDS, "unempGreece2015", code("Greece"), code("Y2015"), 24)
	obs(unempDS, "unempRome2014", code("Rome"), code("Y2014"), 11)
	corpus.AddDataset(popDS)
	corpus.AddDataset(unempDS)

	if err := corpus.Validate(); err != nil {
		log.Fatal(err)
	}

	// 3. Compute every relationship with the exact lattice-pruned
	//    algorithm and print the three sets.
	comp, err := rdfcube.Compute(corpus, rdfcube.CubeMasking, rdfcube.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Full containment (aggregate → detail):")
	for _, p := range comp.Result.FullSet {
		fmt.Printf("  %s contains %s\n", comp.Obs(p.A).URI.Local(), comp.Obs(p.B).URI.Local())
	}
	fmt.Println("Partial containment (containing dimensions / all dimensions):")
	for _, p := range comp.Result.PartialSet {
		fmt.Printf("  %s partially contains %s (degree %.2f)\n",
			comp.Obs(p.A).URI.Local(), comp.Obs(p.B).URI.Local(), comp.Result.PartialDegree[p])
	}
	fmt.Println("Complementarity (same point, combinable measures):")
	for _, p := range comp.Result.ComplSet {
		fmt.Printf("  %s complements %s\n", comp.Obs(p.A).URI.Local(), comp.Obs(p.B).URI.Local())
	}

	// 4. Export the relationships as RDF (qbr: vocabulary).
	fmt.Println("\nRDF export:")
	fmt.Print(rdfcube.ExportRelationships(comp))
}
