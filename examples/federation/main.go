// Federation demonstrates the full preprocessing pipeline of the paper's
// §4 setting: two statistical sources publish cubes whose geography code
// lists use different spellings of the same identifiers; the alignment
// step (the paper uses LIMES; this library ships a cosine/Levenshtein
// matcher) reconciles the codes onto the reference list, the sources are
// merged into one corpus, relationships are computed, and finally new
// observations arrive and are folded in incrementally (§6 future work).
//
// Run with: go run ./examples/federation
package main

import (
	"fmt"
	"log"

	rdfcube "rdfcube"
)

func code(s string) rdfcube.Term { return rdfcube.NewIRI("http://ref.example/code/" + s) }

func foreign(s string) rdfcube.Term { return rdfcube.NewIRI("http://other.example/geo/" + s) }

func main() {
	geo := rdfcube.NewIRI("http://ref.example/dim/geo")
	year := rdfcube.NewIRI("http://ref.example/dim/year")

	// Reference code lists (the journalist's "dimension bus").
	geoList := rdfcube.NewCodeList(geo, code("World"))
	geoList.Add(code("Europe"), code("World"))
	geoList.Add(code("Greece"), code("Europe"))
	geoList.Add(code("Athens"), code("Greece"))
	geoList.Add(code("Italy"), code("Europe"))
	geoList.Add(code("Rome"), code("Italy"))
	geoList.MustSeal()
	yearList := rdfcube.NewCodeList(year, code("AllYears"))
	yearList.Add(code("Y2015"), code("AllYears"))
	yearList.MustSeal()

	// Source B publishes its geography with different casing/suffixes.
	sourceBCodes := []rdfcube.Term{
		foreign("ATHENS"), foreign("greece"), foreign("Rome_IT"), foreign("italy"),
	}

	// 1. Alignment: match source B's codes to the reference list.
	links := rdfcube.AlignCodes(sourceBCodes, geoList.Codes(), rdfcube.AlignConfig{Threshold: 0.55})
	fmt.Println("alignment links (source → reference, score):")
	mapping := map[rdfcube.Term]rdfcube.Term{}
	for _, l := range links {
		fmt.Printf("  %-12s → %-10s %.2f\n", l.Source.Local(), l.Target.Local(), l.Score)
		mapping[l.Source] = l.Target
	}
	if len(mapping) != len(sourceBCodes) {
		log.Fatalf("alignment incomplete: %d/%d codes matched", len(mapping), len(sourceBCodes))
	}

	// 2. Build the merged corpus: source A already uses reference codes;
	//    source B's observations are rewritten through the mapping.
	reg := rdfcube.NewRegistry()
	reg.Register(geoList)
	reg.Register(yearList)
	corpus := rdfcube.NewCorpus(reg)

	pop := rdfcube.NewIRI("http://ref.example/measure/population")
	unemp := rdfcube.NewIRI("http://ref.example/measure/unemployment")

	dsA := &rdfcube.Dataset{
		URI:    rdfcube.NewIRI("http://ref.example/dataset/A"),
		Schema: rdfcube.NewSchema([]rdfcube.Term{geo, year}, []rdfcube.Term{pop}),
	}
	mustAdd(dsA, "A/popGreece", []rdfcube.Term{code("Greece"), code("Y2015")}, rdfcube.NewInteger(10_800_000))
	mustAdd(dsA, "A/popAthens", []rdfcube.Term{code("Athens"), code("Y2015")}, rdfcube.NewInteger(3_090_000))

	dsB := &rdfcube.Dataset{
		URI:    rdfcube.NewIRI("http://other.example/dataset/B"),
		Schema: rdfcube.NewSchema([]rdfcube.Term{geo, year}, []rdfcube.Term{unemp}),
	}
	// Raw source-B rows, pre-alignment:
	rawB := []struct {
		name string
		geo  rdfcube.Term
		v    int64
	}{
		{"B/unempGreece", foreign("greece"), 24},
		{"B/unempAthens", foreign("ATHENS"), 28},
		{"B/unempRome", foreign("Rome_IT"), 11},
	}
	for _, r := range rawB {
		mustAdd(dsB, r.name, []rdfcube.Term{mapping[r.geo], code("Y2015")}, rdfcube.NewInteger(r.v))
	}
	corpus.AddDataset(dsA)
	corpus.AddDataset(dsB)
	if err := corpus.Validate(); err != nil {
		log.Fatal(err)
	}

	// 3. Relationships over the merged corpus.
	comp, err := rdfcube.Compute(corpus, rdfcube.CubeMasking, rdfcube.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrelationships across the federated sources:")
	for _, p := range comp.Result.FullSet {
		fmt.Printf("  %s contains %s\n", comp.Obs(p.A).URI.Local(), comp.Obs(p.B).URI.Local())
	}
	for _, p := range comp.Result.ComplSet {
		fmt.Printf("  %s complements %s\n", comp.Obs(p.A).URI.Local(), comp.Obs(p.B).URI.Local())
	}

	// 4. Incremental maintenance: a new observation arrives from source A.
	space, err := rdfcube.Compile(corpus)
	if err != nil {
		log.Fatal(err)
	}
	inc := rdfcube.NewIncremental(space, rdfcube.TaskAll)
	before := len(inc.Res.ComplSet)

	newObs := &rdfcube.Observation{
		URI:           rdfcube.NewIRI("http://ref.example/obs/A/popRome"),
		Dataset:       dsA,
		DimValues:     []rdfcube.Term{code("Rome"), code("Y2015")},
		MeasureValues: []rdfcube.Term{rdfcube.NewInteger(2_870_000)},
	}
	if _, err := inc.Insert(newObs); err != nil {
		log.Fatal(err)
	}
	inc.Res.Sort()
	fmt.Printf("\nincremental insert of %s: complementarity pairs %d → %d\n",
		newObs.URI.Local(), before, len(inc.Res.ComplSet))
	for _, p := range inc.Res.ComplSet {
		a, b := inc.S.Obs[p.A].URI.Local(), inc.S.Obs[p.B].URI.Local()
		fmt.Printf("  %s complements %s\n", a, b)
	}
}

func mustAdd(ds *rdfcube.Dataset, name string, dims []rdfcube.Term, measure rdfcube.Term) {
	_, err := ds.AddObservation(rdfcube.NewIRI("http://ref.example/obs/"+name), dims, []rdfcube.Term{measure})
	if err != nil {
		log.Fatal(err)
	}
}
