// Skyline demonstrates the §1 application of containment computation:
// skylines and k-dominant skylines over web data. An observation is a
// skyline point when no other observation fully contains it — i.e. it is
// a top-level data point of the collection — and a k-dominant skyline
// point when no other observation contains it on at least k dimensions
// (with one strictly coarser), after Chan et al.
//
// The program generates a Table-4-replica corpus and reports skyline sizes
// for decreasing k, showing the k-dominance trade-off.
//
// Run with: go run ./examples/skyline
package main

import (
	"fmt"
	"log"

	rdfcube "rdfcube"
)

func main() {
	corpus := rdfcube.GenerateRealWorld(3000, 42)
	space, err := rdfcube.Compile(corpus)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d observations over %d dimensions\n\n", space.N(), space.NumDims())

	sky := rdfcube.Skyline(space)
	fmt.Printf("skyline (not fully contained by anyone): %d points (%.1f%%)\n",
		len(sky), 100*float64(len(sky))/float64(space.N()))

	p := space.NumDims()
	for k := p; k >= p-2 && k >= 1; k-- {
		pts := rdfcube.KDominantSkyline(space, k)
		fmt.Printf("%d-dominant skyline: %d points (%.1f%%)\n",
			k, len(pts), 100*float64(len(pts))/float64(space.N()))
	}

	fmt.Println("\nsample skyline points:")
	for i, idx := range sky {
		if i >= 5 {
			break
		}
		o := space.Obs[idx]
		fmt.Printf("  %s", o.URI.Local())
		for _, d := range o.Dataset.Schema.Dimensions {
			fmt.Printf("  %s", o.Value(d).Local())
		}
		fmt.Println()
	}

	fmt.Println("\nAs the paper notes (§1), materializing containment gives direct access")
	fmt.Println("to skyline and k-dominant skyline points in large observation collections:")
	fmt.Println("the skyline is exactly the set of pairs missing from S_F's right-hand side.")
}
