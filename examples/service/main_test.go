package main

// Example pins the demo's deterministic output, so the documented
// walkthrough doubles as a test (go test ./examples/service).
func Example() {
	main()
	// Output:
	// computed 4 full, 43 partial, 2 complementary pairs
	// o35: contains 0, contained by 0, complements 1
	// inserted o36 as observation 10 (1 new full pairs)
	// o35 after insert: contains 1
	// serving 11 observations after 1 live insert(s)
}
