// Service: the paper's batch computation turned into a live query
// service, in-process. Compute the running example's relationships once,
// snapshot them, serve them over HTTP on a random port, query one
// observation's fan-out, insert a new observation over the wire, and see
// it answer queries immediately — no recomputation, no restart.
//
// Run with: go run ./examples/service
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"strings"

	rdfcube "rdfcube"
)

func main() {
	if err := demo(); err != nil {
		log.Fatal(err)
	}
}

func demo() error {
	// 1. Pay the batch cost once: compute all relationships over the
	//    paper's Figure 2 corpus and capture the state as a snapshot.
	comp, err := rdfcube.Compute(rdfcube.ExampleCorpus(), rdfcube.CubeMasking, rdfcube.Options{})
	if err != nil {
		return err
	}
	f, p, c := comp.Result.Counts()
	fmt.Printf("computed %d full, %d partial, %d complementary pairs\n", f, p, c)

	// 2. Serve the snapshot. Port 0 picks a free port; the bound address
	//    comes back from StartServer.
	srv, err := rdfcube.NewServer(rdfcube.NewSnapshot(comp), rdfcube.ServerConfig{})
	if err != nil {
		return err
	}
	httpSrv, addr, err := rdfcube.StartServer("127.0.0.1:0", srv)
	if err != nil {
		return err
	}
	defer httpSrv.Close()
	base := "http://" + addr

	// 3. Query one observation's relationship fan-out.
	const o35 = "http://example.org/obs/o35"
	var rel struct {
		Contains    []any `json:"contains"`
		ContainedBy []any `json:"containedBy"`
		Complements []any `json:"complements"`
	}
	if err := getJSON(base+"/v1/related?obs="+o35, &rel); err != nil {
		return err
	}
	fmt.Printf("o35: contains %d, contained by %d, complements %d\n",
		len(rel.Contains), len(rel.ContainedBy), len(rel.Complements))

	// 4. Insert a new observation over the wire: Austin unemployment for
	//    Feb 2011 — a drill-down of o35's year-level coordinate.
	body := `{
	  "dataset": "http://example.org/dataset/D3",
	  "uri": "http://example.org/obs/o36",
	  "dimensions": {
	    "http://example.org/dim/refArea":   "http://example.org/code/area/Austin",
	    "http://example.org/dim/refPeriod": "http://example.org/code/time/Feb2011"
	  },
	  "measures": {"http://example.org/measure/unemployment": "0.04"}
	}`
	resp, err := http.Post(base+"/v1/observations", "application/json", strings.NewReader(body))
	if err != nil {
		return err
	}
	var created struct {
		Obs     int `json:"obs"`
		NewFull int `json:"newFull"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		resp.Body.Close()
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("insert failed with status %d", resp.StatusCode)
	}
	fmt.Printf("inserted o36 as observation %d (%d new full pairs)\n", created.Obs, created.NewFull)

	// 5. The insert is queryable immediately: o35 (Austin, 2011) now
	//    fully contains o36 (Austin, Feb 2011).
	if err := getJSON(base+"/v1/related?obs="+o35, &rel); err != nil {
		return err
	}
	fmt.Printf("o35 after insert: contains %d\n", len(rel.Contains))

	var stats struct {
		Observations int `json:"observations"`
		Inserts      int `json:"inserts"`
	}
	if err := getJSON(base+"/v1/stats", &stats); err != nil {
		return err
	}
	fmt.Printf("serving %d observations after %d live insert(s)\n", stats.Observations, stats.Inserts)
	return nil
}

func getJSON(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
