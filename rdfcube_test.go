package rdfcube_test

import (
	"net/http"
	"os"
	"strings"
	"testing"

	rdfcube "rdfcube"
)

func TestFacadeComputeOnExample(t *testing.T) {
	corpus := rdfcube.ExampleCorpus()
	for _, alg := range []rdfcube.Algorithm{rdfcube.Baseline, rdfcube.CubeMasking, rdfcube.CubeMaskingPrefetch, rdfcube.Parallel} {
		comp, err := rdfcube.Compute(corpus, alg, rdfcube.Options{})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if f, p, c := comp.Result.Counts(); f != 4 || p != 43 || c != 2 {
			t.Errorf("%s: counts (%d, %d, %d), want (4, 43, 2)", alg, f, p, c)
		}
	}
}

func TestFacadeTurtleRoundTrip(t *testing.T) {
	corpus := rdfcube.ExampleCorpus()
	ttl := rdfcube.ExportTurtle(corpus)
	corpus2, err := rdfcube.LoadTurtle(ttl)
	if err != nil {
		t.Fatalf("LoadTurtle: %v", err)
	}
	if corpus2.NumObservations() != corpus.NumObservations() {
		t.Errorf("observations %d → %d", corpus.NumObservations(), corpus2.NumObservations())
	}
	comp, err := rdfcube.Compute(corpus2, rdfcube.CubeMasking, rdfcube.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if f, _, c := comp.Result.Counts(); f != 4 || c != 2 {
		t.Errorf("relationships changed after round trip: %d full, %d compl", f, c)
	}
}

func TestFacadeExportRelationships(t *testing.T) {
	comp, err := rdfcube.Compute(rdfcube.ExampleCorpus(), rdfcube.CubeMasking, rdfcube.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ttl := rdfcube.ExportRelationships(comp)
	for _, want := range []string{
		"qbr:contains", "qbr:complements", "qbr:partiallyContains", "qbr:containmentDegree",
	} {
		if !strings.Contains(ttl, want) {
			t.Errorf("export misses %s:\n%s", want, ttl)
		}
	}
}

func TestFacadeQuery(t *testing.T) {
	res, err := rdfcube.Query(rdfcube.ExampleCorpus(), `
PREFIX qb: <http://purl.org/linked-data/cube#>
SELECT ?o WHERE { ?o a qb:Observation }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 10 {
		t.Errorf("query found %d observations, want 10", res.Len())
	}
}

func TestFacadeTasksFiltering(t *testing.T) {
	comp, err := rdfcube.Compute(rdfcube.ExampleCorpus(), rdfcube.Baseline,
		rdfcube.Options{Tasks: rdfcube.TaskCompl})
	if err != nil {
		t.Fatal(err)
	}
	if f, p, c := comp.Result.Counts(); f != 0 || p != 0 || c != 2 {
		t.Errorf("TaskCompl: counts (%d, %d, %d)", f, p, c)
	}
}

func TestFacadeSkylineAndGenerators(t *testing.T) {
	corpus := rdfcube.GenerateRealWorld(300, 1)
	space, err := rdfcube.Compile(corpus)
	if err != nil {
		t.Fatal(err)
	}
	sky := rdfcube.Skyline(space)
	if len(sky) == 0 || len(sky) > space.N() {
		t.Errorf("skyline size %d of %d", len(sky), space.N())
	}
	kd := rdfcube.KDominantSkyline(space, space.NumDims())
	if len(kd) > space.N() {
		t.Errorf("k-dominant skyline too large")
	}

	syn := rdfcube.GenerateSynthetic(300, 1)
	if syn.NumObservations() != 300 {
		t.Errorf("synthetic size %d", syn.NumObservations())
	}
}

func TestFacadeObsResolution(t *testing.T) {
	comp, err := rdfcube.Compute(rdfcube.ExampleCorpus(), rdfcube.CubeMasking, rdfcube.Options{})
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, p := range comp.Result.ComplSet {
		names[comp.Obs(p.A).URI.Local()+"~"+comp.Obs(p.B).URI.Local()] = true
	}
	if !names["o11~o31"] || !names["o13~o35"] {
		t.Errorf("complementary pairs wrong: %v", names)
	}
}

func TestFacadeUnknownAlgorithm(t *testing.T) {
	if _, err := rdfcube.Compute(rdfcube.ExampleCorpus(), rdfcube.Algorithm("nope"), rdfcube.Options{}); err == nil {
		t.Errorf("unknown algorithm must fail")
	}
}

func TestFacadeCSVPipeline(t *testing.T) {
	corpus := rdfcube.ExampleCorpus()
	hier := rdfcube.ExportTurtle(corpus)
	reg, err := rdfcube.LoadHierarchiesTurtle(hier)
	if err != nil {
		t.Fatalf("LoadHierarchiesTurtle: %v", err)
	}
	csv := "refArea,refPeriod,population\nGreece,Y2011,10800000\nAthens,Y2011,3090000\n"
	c2, err := rdfcube.LoadCSV(strings.NewReader(csv), reg, rdfcube.CSVOptions{})
	if err != nil {
		t.Fatalf("LoadCSV: %v", err)
	}
	comp, err := rdfcube.Compute(c2, rdfcube.CubeMasking, rdfcube.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if f, _, _ := comp.Result.Counts(); f != 1 {
		t.Errorf("expected 1 full containment pair from CSV pipeline, got %d", f)
	}
}

func TestFacadeIntegrity(t *testing.T) {
	vs, err := rdfcube.CheckIntegrity(rdfcube.ExampleCorpus())
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Errorf("example corpus must be well-formed: %v", vs)
	}
}

func TestFacadeVocabulary(t *testing.T) {
	ttl := rdfcube.QBRVocabularyTurtle()
	for _, want := range []string{"qbr:contains", "owl:TransitiveProperty", "qbr:complements"} {
		if !strings.Contains(ttl, want) {
			t.Errorf("vocabulary misses %s", want)
		}
	}
	// The emitted vocabulary must itself be valid Turtle.
	if _, err := rdfcube.LoadTurtle(ttl); err == nil {
		t.Log("vocabulary parses as QB input (no datasets, expected error)") // LoadTurtle requires datasets
	}
}

func TestFacadeExplorationIndex(t *testing.T) {
	ix, err := rdfcube.BuildExplorationIndex(rdfcube.ExampleCorpus())
	if err != nil {
		t.Fatal(err)
	}
	st := ix.Stats()
	if st.FullPairs != 4 || st.ComplPairs != 2 {
		t.Errorf("index stats: %+v", st)
	}
}

// TestEurostatSampleFixture loads the hand-written Eurostat-shaped Turtle
// fixture end to end: parse, validate, check integrity, compute
// relationships, and verify the expected cross-dataset structure.
func TestEurostatSampleFixture(t *testing.T) {
	data, err := os.ReadFile("testdata/eurostat_sample.ttl")
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := rdfcube.LoadTurtle(string(data))
	if err != nil {
		t.Fatalf("LoadTurtle: %v", err)
	}
	if len(corpus.Datasets) != 2 || corpus.NumObservations() != 8 {
		t.Fatalf("fixture shape: %d datasets, %d observations",
			len(corpus.Datasets), corpus.NumObservations())
	}
	if err := corpus.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	vs, err := rdfcube.CheckIntegrity(corpus)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Errorf("integrity violations: %v", vs)
	}

	comp, err := rdfcube.Compute(corpus, rdfcube.CubeMasking, rdfcube.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pairs := map[string]bool{}
	for _, p := range comp.Result.FullSet {
		pairs[comp.Obs(p.A).URI.Local()+"→"+comp.Obs(p.B).URI.Local()] = true
	}
	// Within each dataset, the country-level 2015 rows contain their
	// regional 2015 rows: pop1 ⊃ pop2 and un1 ⊃ {un2, un3}.
	for _, want := range []string{"pop1→pop2", "un1→un2", "un1→un3"} {
		if !pairs[want] {
			t.Errorf("missing containment %s in %v", want, pairs)
		}
	}
	// Greece 2015 appears in both datasets with different measures:
	// complementary.
	compl := map[string]bool{}
	for _, p := range comp.Result.ComplSet {
		compl[comp.Obs(p.A).URI.Local()+"~"+comp.Obs(p.B).URI.Local()] = true
	}
	for _, want := range []string{"pop1~un1", "pop2~un2"} {
		if !compl[want] {
			t.Errorf("missing complementarity %s in %v", want, compl)
		}
	}
	// pop4 (Lazio 2014) and un4 (Italy 2014): partial containment from
	// un4 over pop4 is impossible (no shared measure); check instead that
	// the merged Figure-3-style table joins Greece 2015.
	rows := rdfcube.MergeComplements(comp)
	if len(rows) < 2 {
		t.Errorf("merged rows = %d", len(rows))
	}
}

// TestFacadeExportRelationshipsDeterministic pins the export's ordering
// contract: the same computation serialized with its result sets in any
// order must yield byte-identical Turtle (the pcN blank labels used to
// leak the algorithm's emission order).
func TestFacadeExportRelationshipsDeterministic(t *testing.T) {
	comp, err := rdfcube.Compute(rdfcube.ExampleCorpus(), rdfcube.CubeMasking, rdfcube.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := rdfcube.ExportRelationships(comp)

	// Scramble every set in place (reverse + a deterministic swap walk).
	scramble := func(ps []rdfcube.Pair) {
		for i, j := 0, len(ps)-1; i < j; i, j = i+1, j-1 {
			ps[i], ps[j] = ps[j], ps[i]
		}
		for i := range ps {
			j := (i*7 + 3) % len(ps)
			ps[i], ps[j] = ps[j], ps[i]
		}
	}
	scramble(comp.Result.FullSet)
	scramble(comp.Result.PartialSet)
	scramble(comp.Result.ComplSet)

	if got := rdfcube.ExportRelationships(comp); got != want {
		t.Fatalf("export depends on result-set order:\n--- sorted ---\n%s\n--- scrambled ---\n%s", want, got)
	}

	// The export must not mutate the caller's slices as a side effect of
	// sorting: scrambled input stays scrambled.
	f0 := comp.Result.FullSet[0]
	if got := rdfcube.ExportRelationships(comp); got != want {
		t.Fatal("second export differs")
	}
	if comp.Result.FullSet[0] != f0 {
		t.Fatal("ExportRelationships mutated the result sets")
	}
}

// TestFacadeSnapshotServer drives the persistence + serving surface
// through the façade aliases only.
func TestFacadeSnapshotServer(t *testing.T) {
	comp, err := rdfcube.Compute(rdfcube.ExampleCorpus(), rdfcube.CubeMasking, rdfcube.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sn := rdfcube.NewSnapshot(comp)
	path := t.TempDir() + "/facade.snap"
	if err := sn.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	sn2, err := rdfcube.ReadSnapshotFile(path)
	if err != nil {
		t.Fatalf("ReadSnapshotFile: %v", err)
	}
	if sn2.Space.N() != comp.Space.N() {
		t.Fatalf("round trip lost observations: %d != %d", sn2.Space.N(), comp.Space.N())
	}
	srv, err := rdfcube.NewServer(sn2, rdfcube.ServerConfig{})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	httpSrv, addr, err := rdfcube.StartServer("127.0.0.1:0", srv)
	if err != nil {
		t.Fatalf("StartServer: %v", err)
	}
	defer httpSrv.Close()
	resp, err := http.Get("http://" + addr + "/v1/stats")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: status %d", resp.StatusCode)
	}
}
